//! # diode — targeted automatic integer overflow discovery
//!
//! A comprehensive Rust reproduction of *"Targeted Automatic Integer
//! Overflow Discovery Using Goal-Directed Conditional Branch Enforcement"*
//! (Sidiroglou-Douskos et al., ASPLOS 2015) — the DIODE system — together
//! with every substrate it runs on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`lang`] | the core imperative language of §3.1 (Figure 3) |
//! | [`symbolic`] | symbolic expressions over input bytes + `overflow(B)` |
//! | [`interp`] | concrete/taint/symbolic interpreter (Figures 4–6) + memcheck |
//! | [`solver`] | bit-blasting CDCL bitvector solver (the Z3 substitute) |
//! | [`format`](mod@crate::format) | Hachoir-style field maps + Peach-style input reconstruction |
//! | [`apps`] | the five benchmark applications of §5 |
//! | [`core`] | the DIODE engine: goal-directed branch enforcement (Figure 7) |
//! | [`fuzz`] | random and taint-directed fuzzing baselines |
//! | [`engine`] | campaign-scale orchestration: work-stealing parallel scheduler + shared solver-query cache |
//! | [`synth`] | ground-truth scenario forge: synthesized benchmark suites + recall/precision oracle |
//! | [`corpus`] | persistent on-disk corpus store: save, replay, diff, and incremental growth |
//! | [`obs`] | structured tracing + metrics: per-phase spans, JSONL traces, campaign profiling |
//! | [`serve`] | resident campaign daemon: warm-cache job queue over line-delimited JSON TCP |
//!
//! Start with the `quickstart` example (or `campaign` for batch
//! analysis), or regenerate the paper's tables — analyses fan out over
//! the [`engine`] scheduler by default; add `--sequential` for the
//! single-threaded path and `--json` for machine-readable output:
//!
//! ```text
//! cargo run --release -p diode-bench --bin table1 [-- --json | --sequential | --threads N]
//! cargo run --release -p diode-bench --bin table2
//! cargo run --release -p diode-bench --bin ablation
//! cargo run --release -p diode-bench --bin fuzz_compare
//! ```
//!
//! ## One-minute tour
//!
//! ```
//! use diode::core::{analyze_program, DiodeConfig, SiteOutcome};
//! use diode::format::FormatDesc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A program with a sanity check guarding an overflowable allocation.
//! let program = diode::lang::parse(r#"
//!     fn main() {
//!         n = zext32(in[0]) << 8 | zext32(in[1]);
//!         if n > 50000 { error("implausible"); }
//!         buf = alloc("demo@4", n * 100000);
//!         t = zext64(n) * 100000u64;
//!         p = 0u64;
//!         while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
//!     }
//! "#)?;
//! let analysis = analyze_program(
//!     &program, &[0x00, 0x08], &FormatDesc::new("demo"), &DiodeConfig::default(),
//! );
//! assert!(matches!(
//!     analysis.site("demo@4").unwrap().outcome,
//!     SiteOutcome::Exposed(_)
//! ));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use diode_apps as apps;
pub use diode_core as core;
pub use diode_corpus as corpus;
pub use diode_engine as engine;
pub use diode_format as format;
pub use diode_fuzz as fuzz;
pub use diode_interp as interp;
pub use diode_lang as lang;
pub use diode_obs as obs;
pub use diode_serve as serve;
pub use diode_solver as solver;
pub use diode_symbolic as symbolic;
pub use diode_synth as synth;
