//! Quickstart: the whole DIODE pipeline (paper Figure 1) on a miniature
//! application, narrated stage by stage.
//!
//! Run with: `cargo run --release --example quickstart`

use diode::core::{analyze_site, extract, identify_target_sites, DiodeConfig, SiteOutcome};
use diode::format::FormatDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little image-like parser: a 16-bit length field, one sanity check,
    // and an allocation whose size arithmetic can overflow 32 bits.
    let program = diode::lang::parse(
        r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            flags = in[2];
            if n > 50000 { error("field out of range"); }   // sanity check
            buf = alloc("demo.c@5", n * 100000);             // target site
            t = zext64(n) * 100000u64;
            p = 0u64;
            while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
        }
    "#,
    )?;
    let seed = vec![0x00, 0x08, 0x01]; // n = 8: processed correctly
    let format = FormatDesc::new("demo");
    let config = DiodeConfig::default();

    println!("== Stage 1: target site identification (taint analysis) ==");
    let sites = identify_target_sites(&program, &seed, &config.machine);
    for s in &sites {
        println!(
            "  site {:<10} relevant input bytes {:?} seed size {}",
            s.site, s.relevant_bytes, s.seed_size
        );
    }
    let site = &sites[0];

    println!("\n== Stage 2: target & branch constraint extraction ==");
    let extraction = extract(&program, &seed, site, &config.machine).expect("extraction");
    println!("  target expression B = {}", extraction.target_expr);
    println!("  target constraint β = {}", extraction.beta);
    println!(
        "  φ: {} relevant compressed condition(s), {} relevant branch occurrence(s) on the path",
        extraction.phi.len(),
        extraction.total_relevant
    );
    for c in &extraction.phi {
        println!("    {} (×{}): {}", c.label, c.occurrences, c.constraint);
    }

    println!("\n== Stages 3-5: solve β, generate inputs, enforce flipped branches ==");
    let report = analyze_site(&program, &seed, &format, site, &config);
    match &report.outcome {
        SiteOutcome::Exposed(bug) => {
            let n = u32::from(bug.input[0]) << 8 | u32::from(bug.input[1]);
            println!("  EXPOSED after enforcing {} branch(es)", bug.enforced);
            println!("  triggering input bytes: {:02x?}", bug.input);
            println!(
                "  field n = {n} (passes the n ≤ 50000 check; n × 100000 = {} ≥ 2^32)",
                u64::from(n) * 100_000
            );
            println!("  observed error: {}", bug.error_type);
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    println!("\n== Campaign scale: the same analysis through diode-engine ==");
    // Production runs batch many programs × seeds through the engine's
    // work-stealing scheduler with a shared solver-query cache; site
    // outcomes are byte-identical to the sequential stages above.
    let spec = diode::engine::CampaignSpec::new(vec![diode::engine::CampaignApp::new(
        "quickstart-demo",
        program,
        format,
        seed,
    )]);
    let campaign = spec.run();
    let (total, exposed, _, _) = campaign.counts();
    println!(
        "  {} site(s) analyzed on {} worker thread(s): {} exposed, bug re-validated: {:?}",
        total, campaign.threads, exposed, campaign.units[0].sites[0].verified
    );
    if let Some(cache) = campaign.cache {
        println!(
            "  solver cache: {} hits / {} misses ({:.0}% hit rate)",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0
        );
    }
    Ok(())
}
