//! Bring your own application: write a parser in the core language, build
//! a seed + field map with `SeedBuilder`, and point DIODE at it.
//!
//! The example models a little "font" format with a checksummed header, a
//! glyph count behind a sanity check, and a glyph-cache allocation whose
//! size arithmetic overflows — then shows DIODE finding it while the
//! checksum stays valid thanks to Peach-style reconstruction.
//!
//! Run with: `cargo run --release --example custom_app`

use diode::core::{analyze_program, DiodeConfig, SiteOutcome};
use diode::format::SeedBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application under test.
    let program = diode::lang::parse(
        r#"
        fn be16at(p) {
            return zext32(in[p]) << 8 | zext32(in[p + 1]);
        }

        fn main() {
            if in[0] != 0x46u8 || in[1] != 0x4Eu8 { error("not a FNT file"); }
            // Structural integrity: checksum over the header fields.
            if !crc32_ok(2, 6, 8) { error("header checksum mismatch"); }

            glyphs = be16at(2);
            glyph_w = be16at(4);
            glyph_h = be16at(6);

            if glyphs == 0 { error("empty font"); }
            if glyphs > 20000 { error("too many glyphs"); }       // sanity check
            if glyph_w > 1024 || glyph_h > 1024 { error("glyph too large"); }

            cache = alloc("glyphcache.c@31", glyphs * glyph_w * glyph_h * 4);

            t = zext64(glyphs) * zext64(glyph_w) * zext64(glyph_h) * 4u64;
            p = 0u64;
            while p < 32u64 { cache[t * p / 32u64] = 0u8; p = p + 1u64; }
        }
    "#,
    )?;

    // 2. Seed input + field map (the Hachoir/Peach layer).
    let mut b = SeedBuilder::new();
    b.name("mini-font");
    b.raw(b"FN");
    b.be16("/font/glyphs", 96);
    b.be16("/font/glyph_w", 8);
    b.be16("/font/glyph_h", 12);
    let crc_at = b.reserve_crc32(2, 6);
    let (seed, format) = b.finish();
    println!("seed: {seed:02x?} (checksum at offset {crc_at})");

    // 3. Run the full DIODE analysis.
    let analysis = analyze_program(&program, &seed, &format, &DiodeConfig::default());
    let report = analysis.site("glyphcache.c@31").expect("target site");
    println!(
        "\nsite glyphcache.c@31: relevant fields {}",
        format.describe_bytes(&report.relevant_bytes).join(", ")
    );

    match &report.outcome {
        SiteOutcome::Exposed(bug) => {
            let g = u32::from(bug.input[2]) << 8 | u32::from(bug.input[3]);
            let w = u32::from(bug.input[4]) << 8 | u32::from(bug.input[5]);
            let h = u32::from(bug.input[6]) << 8 | u32::from(bug.input[7]);
            println!(
                "EXPOSED after {} enforcement(s): glyphs={g} w={w} h={h}",
                bug.enforced
            );
            println!(
                "  size = {g} * {w} * {h} * 4 = {} (> 2^32: overflows)",
                u64::from(g) * u64::from(w) * u64::from(h) * 4
            );
            println!("  error: {}", bug.error_type);
            // The generated file still passes the structural checksum —
            // the reconstruction layer repaired it.
            let stored = u32::from_be_bytes(bug.input[8..12].try_into().unwrap());
            assert_eq!(stored, diode::lang::checksum::crc32(&bug.input[2..8]));
            println!("  header checksum still valid ✓ (repaired during generation)");
            assert!(
                g <= 20000 && w <= 1024 && h <= 1024,
                "all sanity checks satisfied"
            );
        }
        other => println!("outcome: {other:?}"),
    }
    Ok(())
}
