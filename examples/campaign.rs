//! Campaign-scale batch analysis: all five §5 benchmark applications in
//! one `diode-engine` run, with live per-site progress events, the shared
//! solver-query cache, and automatic re-validation of every exposed bug.
//!
//! Run with: `cargo run --release --example campaign`

use std::sync::Mutex;

use diode::core::SiteOutcome;
use diode::engine::{CampaignApp, CampaignEvent, CampaignSpec, ProgressSink};

/// Prints events as workers report them (order reflects scheduling; the
/// final report is deterministic regardless).
struct Console {
    lines: Mutex<u32>,
}

impl ProgressSink for Console {
    fn on_event(&self, event: CampaignEvent<'_>) {
        let mut n = self.lines.lock().unwrap();
        *n += 1;
        match event {
            CampaignEvent::UnitStarted { app, .. } => println!("[{n:>3}] start      {app}"),
            CampaignEvent::SitesIdentified { app, sites, .. } => {
                println!("[{n:>3}] identified {app}: {sites} target site(s)");
            }
            CampaignEvent::SiteFinished {
                app,
                site,
                outcome,
                discovery_time,
                cache,
                ..
            } => {
                let class = match outcome {
                    SiteOutcome::Exposed(b) => format!("EXPOSED ({} enforced)", b.enforced),
                    SiteOutcome::TargetUnsat => "unsat".into(),
                    SiteOutcome::Prevented(_) => "prevented".into(),
                    SiteOutcome::Unknown => "unknown".into(),
                };
                // Live shared-cache counters ride along on every event.
                let live = cache
                    .map(|c| format!(" [cache {:.0}% hit]", c.hit_rate() * 100.0))
                    .unwrap_or_default();
                println!("[{n:>3}] site       {app}/{site}: {class} in {discovery_time:?}{live}");
            }
            CampaignEvent::Finished { wall_time } => {
                println!("[{n:>3}] campaign finished in {wall_time:?}");
            }
        }
    }
}

fn main() {
    let apps: Vec<CampaignApp> = diode::apps::all_apps()
        .into_iter()
        .map(|a| CampaignApp::new(a.name, a.program, a.format, a.seed))
        .collect();
    let spec = CampaignSpec::new(apps);
    let report = spec.run_with_progress(&Console {
        lines: Mutex::new(0),
    });

    println!("\n== Campaign report ==");
    let (total, exposed, unsat, prevented) = report.counts();
    println!(
        "{} jobs on {} worker thread(s): {total} sites -> {exposed} exposed, {unsat} unsat, {prevented} prevented (paper: 40/14/17/9)",
        report.jobs, report.threads
    );
    for unit in &report.units {
        let verified = unit
            .sites
            .iter()
            .filter(|s| s.verified == Some(true))
            .count();
        let (t, e, ..) = unit.counts();
        println!(
            "  {:<18} {t:>2} sites, {e} exposed ({verified} re-validated), stage 1 in {:?}",
            unit.app, unit.identify_time
        );
    }
    if let Some(cache) = report.cache {
        println!(
            "shared solver cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.entries
        );
    }
}
