//! The paper's §2 walkthrough, reproduced end to end: DIODE discovers the
//! Dillo 2.1 `png.c@203` overflow (Figure 2's `rowbytes * height`) by
//! navigating the five sanity checks — including Dillo's own overflowing
//! image-size check — while leaving the `png_memset` blocking loop free.
//!
//! Run with: `cargo run --release --example dillo_walkthrough`

use diode::apps::dillo;
use diode::core::{analyze_site, identify_target_sites, DiodeConfig, SiteOutcome};
use diode::interp::{run, Concrete, MachineConfig, Outcome};

fn main() {
    let app = dillo::app();
    let config = DiodeConfig::default();

    println!("== Dillo 2.1 + libpng (Figure 2) ==");
    println!(
        "seed: {}x{} bit-depth {} mini-PNG, {} bytes\n",
        dillo::SEED_WIDTH,
        dillo::SEED_HEIGHT,
        dillo::SEED_BIT_DEPTH,
        app.seed.len()
    );

    // The seed is processed correctly — the paper's starting condition.
    let seed_run = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
    assert_eq!(seed_run.outcome, Outcome::Completed);
    println!(
        "seed run: {:?}, {} allocation sites exercised, no memory errors\n",
        seed_run.outcome,
        seed_run.allocs.len()
    );

    // Target site identification: the Figure 2 site and its relevant bytes.
    let sites = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = sites
        .iter()
        .find(|s| &*s.site == "png.c@203")
        .expect("site");
    println!(
        "target site png.c@203 (dMalloc(rowbytes * height))\nrelevant input fields: {}",
        app.format.describe_bytes(&fig2.relevant_bytes).join(", ")
    );

    // The full goal-directed enforcement loop.
    let report = analyze_site(&app.program, &app.seed, &app.format, fig2, &config);
    let SiteOutcome::Exposed(bug) = &report.outcome else {
        panic!(
            "expected the Figure 2 site to be exposed, got {:?}",
            report.outcome
        );
    };

    println!(
        "\nDIODE exposed the overflow after enforcing {} conditional branches",
        bug.enforced
    );
    println!("(the paper's §2 walkthrough needed 4: uint31-height, height ≤ 1M,");
    println!(" width ≤ 1M, and Dillo's own overflowing image-size check)");
    println!(
        "\ntotal relevant branch occurrences on the path: {} — the png_memset",
        report.total_relevant
    );
    println!("blocking loop among them is never enforced: the input stays free to");
    println!("take a different path through it (§2 \"Blocking Checks\").");

    let width = u32::from_be_bytes(bug.input[16..20].try_into().unwrap());
    let height = u32::from_be_bytes(bug.input[20..24].try_into().unwrap());
    let bit_depth = bug.input[24];
    let rowbytes = (u64::from(width) * u64::from(bit_depth) * 4) >> 3;
    println!("\ngenerated input: width={width} height={height} bit_depth={bit_depth}");
    println!(
        "  rowbytes = (width * 4 * bit_depth) >> 3 = {rowbytes}\n  rowbytes * height = {} = {:#x} (wraps mod 2^32 to {:#x})",
        rowbytes * u64::from(height),
        rowbytes * u64::from(height),
        (rowbytes * u64::from(height)) as u32,
    );
    println!("  observed error: {} (paper: SIGSEGV)", bug.error_type);

    // Cross-check every §2 claim on the final input:
    assert!(width <= 1_000_000 && height <= 1_000_000, "checks 3-4");
    assert!(width < 1 << 31 && height < 1 << 31, "checks 1-2");
    let wrapped = width.wrapping_mul(height) as i32;
    assert!(
        wrapped.unsigned_abs() <= 36_000_000,
        "check 5 evaded by overflow"
    );
    assert!(
        rowbytes * u64::from(height) > u64::from(u32::MAX),
        "target overflows"
    );
    println!("\nall five Figure 2 sanity checks verified satisfied/evaded ✓");
}
