//! The corpus workflow, end to end: forge a suite into an on-disk store,
//! reload it as a fresh object, replay it byte-identically, record
//! witnesses, detect a simulated regression with `diff`, and grow the
//! suite without re-forging what exists.
//!
//! Run with: `cargo run --release --example corpus`

use diode::corpus::{CorpusDiff, CorpusStore};
use diode::engine::ExecutionMode;
use diode::synth::SynthConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("diode-corpus-example-{}", std::process::id()));
    let store = CorpusStore::open(&root)?;
    println!("corpus root: {}\n", root.display());

    // Forge and persist a small suite. The directory name is the suite's
    // content hash, so re-saving identical content is a no-op.
    let cfg = SynthConfig {
        apps: 3,
        ..SynthConfig::default()
    };
    let saved = store.forge_and_save(&cfg)?;
    println!(
        "saved   {} ({} apps, {} sites)",
        saved.id(),
        cfg.apps,
        saved.suite.total_sites()
    );

    // Replay it (this could be a different process — only the directory
    // contents matter) and record the findings as the baseline.
    let (report, card) = saved.replay(ExecutionMode::default());
    println!("replay  {card}");
    store.record_witnesses(&saved.witnesses("baseline", &report))?;

    // A later rerun diffs clean against the recorded baseline...
    let loaded = store.load(saved.id())?;
    let (rerun, _) = loaded.replay(ExecutionMode::default());
    let baseline = store.load_witnesses(saved.id(), "baseline")?;
    let diff = CorpusDiff::between(&baseline, &loaded.witnesses("rerun", &rerun));
    println!(
        "diff    baseline vs rerun: {}",
        if diff.is_clean() { "clean" } else { "DRIFT" }
    );

    // ...and the suite grows incrementally: only the new apps are forged,
    // the stored ones are reused byte-for-byte.
    let grown = store.grow(saved.id(), 2)?;
    let (_, grown_card) = grown.replay(ExecutionMode::default());
    println!(
        "grown   {} ({} apps, {} sites): {grown_card}",
        grown.id(),
        grown.suite.apps.len(),
        grown.suite.total_sites()
    );

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
