//! DIODE vs fuzzing on a deep, sanity-checked overflow — the §6 claim:
//! "random fuzzing has been relatively ineffective at generating inputs
//! that trigger errors deep inside applications", and taint-directed
//! fuzzing "is unlikely to find inputs that trigger an overflow even when
//! such inputs exist".
//!
//! Run with: `cargo run --release --example fuzz_comparison`

use diode::core::{analyze_site, identify_target_sites, DiodeConfig, SiteOutcome};
use diode::fuzz::{RandomFuzzer, TaintFuzzer};

fn main() {
    let app = diode::apps::dillo::app();
    let config = DiodeConfig::default();
    let sites = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = sites
        .iter()
        .find(|s| &*s.site == "png.c@203")
        .expect("site");

    println!("target: Dillo 2.1 png.c@203 (five sanity checks on the path)\n");

    let trials = 200;
    let random = RandomFuzzer {
        trials,
        ..RandomFuzzer::default()
    }
    .run(
        &app.program,
        &app.seed,
        &app.format,
        fig2.label,
        &config.machine,
    );
    println!(
        "random fuzzing:          {random}  ({} of {trials} inputs never reached the site)",
        random.rejected_early
    );

    let taint = TaintFuzzer {
        trials,
        ..TaintFuzzer::default()
    }
    .run(
        &app.program,
        &app.seed,
        &app.format,
        fig2.label,
        &fig2.relevant_bytes,
        &config.machine,
    );
    println!(
        "taint-directed fuzzing:  {taint}  ({} of {trials} inputs never reached the site)",
        taint.rejected_early
    );

    let report = analyze_site(&app.program, &app.seed, &app.format, fig2, &config);
    match &report.outcome {
        SiteOutcome::Exposed(bug) => println!(
            "DIODE:                   exposed with {} solver queries' worth of enforcement ({} branches) in {:?}",
            bug.enforced, bug.enforced, report.discovery_time
        ),
        other => println!("DIODE: {other:?}"),
    }
    println!(
        "\nThe fuzzers must hit a ~10^-10 value corridor by luck; DIODE derives it from β ∧ φ'."
    );
}
