//! CVE-2008-2430 (VLC 0.8.6h `wav.c@147`): the paper's `x + 2` target
//! expression with exactly two overflowing inputs (§5.5).
//!
//! DIODE's solver *enumerates* the solution space and proves there are
//! only two triggering values; both produce the paper's non-crashing
//! InvalidRead/Write memcheck reports.
//!
//! Run with: `cargo run --release --example vlc_cve_2008_2430`

use diode::apps::vlc;
use diode::core::{extract, identify_target_sites, test_candidate, DiodeConfig};
use diode::solver::{enumerate, SolverConfig};

fn main() {
    let app = vlc::app();
    let config = DiodeConfig::default();

    let sites = identify_target_sites(&app.program, &app.seed, &config.machine);
    let cve = sites
        .iter()
        .find(|s| &*s.site == "wav.c@147")
        .expect("site");
    println!("target site wav.c@147: p_wf = malloc(fmt_size + 2)   [CVE-2008-2430]");
    println!(
        "relevant input field: {}\n",
        app.format.describe_bytes(&cve.relevant_bytes).join(", ")
    );

    let extraction = extract(&app.program, &app.seed, cve, &config.machine).unwrap();
    println!("target expression: {}", extraction.target_expr);
    println!("target constraint: {}\n", extraction.beta);

    // Exhaustive enumeration: the constraint has exactly two models.
    let e = enumerate(&extraction.beta, 16, &SolverConfig::default());
    assert!(e.complete, "enumeration must be exhaustive");
    println!(
        "solver enumeration: {} solution(s), exhaustive = {}",
        e.models.len(),
        e.complete
    );
    let mut values: Vec<u32> = e
        .models
        .iter()
        .map(|m| {
            u32::from_le_bytes([
                m.byte(16).unwrap(),
                m.byte(17).unwrap(),
                m.byte(18).unwrap(),
                m.byte(19).unwrap(),
            ])
        })
        .collect();
    values.sort_unstable();
    println!("fmt_size values: {values:#x?} (paper: the only two solutions)\n");
    assert_eq!(values, vec![0xffff_fffe, 0xffff_ffff]);

    // Both inputs trigger the overflow with memcheck-style reports.
    for m in &e.models {
        let input = app
            .format
            .reconstruct(&app.seed, m.bytes().iter().map(|(&o, &v)| (o, v)));
        let res = test_candidate(&app.program, &input, cve.label, &config.machine);
        println!(
            "candidate fmt_size={:#x}: triggered={} error={:?} outcome={:?}",
            u32::from_le_bytes([input[16], input[17], input[18], input[19]]),
            res.triggered,
            res.error_type,
            res.outcome
        );
        assert!(res.triggered);
        assert_eq!(res.error_type.as_deref(), Some("InvalidRead/Write"));
    }
    println!(
        "\nboth solutions trigger InvalidRead/Write without crashing — Table 2's CVE row (2/2)."
    );
}
