//! Forge a small ground-truth benchmark suite, run it as one campaign,
//! and grade the report against the by-construction oracle.
//!
//! Run with: `cargo run --release --example forge`

use diode::engine::CampaignSpec;
use diode::synth::{forge, score, SynthConfig};

fn main() {
    let cfg = SynthConfig {
        apps: 8,
        branch_depth: 4,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    println!(
        "Forged {} applications with {} planted sites (oracle: {:?})\n",
        suite.apps.len(),
        suite.total_sites(),
        suite.oracle.expected_counts(),
    );

    // Show one forged program: every scenario is a readable, re-parseable
    // source file, not an opaque blob.
    let sample = &suite.apps[0];
    println!(
        "=== {} (seed: {} bytes) ===",
        sample.name,
        sample.seeds[0].len()
    );
    println!("{}", diode::lang::pretty::program(&sample.program));

    let report = CampaignSpec::new(suite.campaign_apps()).run();
    println!(
        "Campaign: {} sites in {:?} on {} thread(s)",
        report.counts().0,
        report.wall_time,
        report.threads
    );
    if let Some(stats) = &report.cache {
        println!(
            "Solver cache: {} hits / {} misses ({:.0}% hit rate)",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }

    let card = score(&report, &suite.oracle);
    println!("Grade vs oracle: {card}");
    for m in &card.mismatches {
        println!("  MISMATCH {m}");
    }
    assert!(card.is_perfect(), "forged campaigns must grade perfectly");
    println!(
        "All {} sites classified exactly as constructed.",
        card.graded
    );
}
