//! The daemon's wire protocol: one flat-JSON request line per
//! operation, one JSON response line back (plus a telemetry stream for
//! `watch`). The codec is `diode-corpus`'s round-tripping [`Json`] —
//! the same one every `BENCH_*` artifact uses — so `u64` payloads (RNG
//! seeds, byte counters) survive exactly.
//!
//! Requests:
//!
//! ```text
//! {"op":"submit","spec":{"apps":10,"depth":3,"rng_seed":123},"wait":true}
//! {"op":"submit","suite":"suite-00a1b2c3d4e5f607"}
//! {"op":"status"}
//! {"op":"status","job":"job-2"}
//! {"op":"watch","job":"job-2"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok"`. Failures add an HTTP-flavoured
//! `"code"` plus a stable `"error"` token — `400 bad_request`,
//! `404 not_found`, `429 queue_full`, `500 job_failed`,
//! `503 shutting_down` — so clients can branch on semantics without
//! string-matching free-text detail.

use diode_synth::SynthConfig;

pub use diode_corpus::{Json, JsonError};

/// Version stamped into `status` responses; bump on wire changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a campaign job.
    Submit {
        /// What to run.
        source: JobSource,
        /// Block until the job finishes and reply with its full report
        /// (instead of replying immediately with the job id).
        wait: bool,
        /// Pin the campaign's worker-thread count (`None`: all cores).
        threads: Option<usize>,
    },
    /// Daemon-wide counters, or one job's state when `job` is set.
    Status {
        /// Job id to inspect, or `None` for the daemon summary.
        job: Option<String>,
    },
    /// Stream a job's live telemetry JSONL until its `finished` record.
    Watch {
        /// Job id to stream.
        job: String,
        /// Subscriber ring capacity; a slow reader drops events beyond
        /// this instead of slowing the campaign.
        ring: usize,
    },
    /// Drain queued jobs, then stop accepting and exit.
    Shutdown,
}

/// What a submitted job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// Forge a fresh synthetic suite from this config, then run it.
    Forge(SynthConfig),
    /// Load a suite from the daemon's corpus root by id (or unique id
    /// prefix), then run it.
    Suite(String),
}

/// Default `watch` subscriber ring capacity.
pub const DEFAULT_WATCH_RING: usize = 4096;

/// Parses one request line. The error is a ready-to-send `400` response.
pub fn parse_request(line: &str) -> Result<Request, Json> {
    let obj = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return Err(reject(400, "bad_request", &format!("malformed JSON: {e}"))),
    };
    let op = match obj.get("op").and_then(Json::as_str) {
        Some(op) => op.to_string(),
        None => return Err(reject(400, "bad_request", "missing string field \"op\"")),
    };
    match op.as_str() {
        "submit" => {
            let source = match (obj.get("spec"), obj.get("suite").and_then(Json::as_str)) {
                (Some(_), Some(_)) => {
                    return Err(reject(
                        400,
                        "bad_request",
                        "submit takes \"spec\" or \"suite\", not both",
                    ))
                }
                (Some(spec), None) => JobSource::Forge(parse_spec(spec)?),
                (None, Some(suite)) => JobSource::Suite(suite.to_string()),
                (None, None) => {
                    return Err(reject(
                        400,
                        "bad_request",
                        "submit needs a \"spec\" object or a \"suite\" id",
                    ))
                }
            };
            Ok(Request::Submit {
                source,
                wait: obj.get("wait").and_then(Json::as_bool).unwrap_or(false),
                threads: obj
                    .get("threads")
                    .and_then(Json::as_u64)
                    .map(|t| (t as usize).max(1)),
            })
        }
        "status" => Ok(Request::Status {
            job: obj.get("job").and_then(Json::as_str).map(str::to_string),
        }),
        "watch" => match obj.get("job").and_then(Json::as_str) {
            Some(job) => Ok(Request::Watch {
                job: job.to_string(),
                ring: obj
                    .get("ring")
                    .and_then(Json::as_u64)
                    .map_or(DEFAULT_WATCH_RING, |r| (r as usize).max(2)),
            }),
            None => Err(reject(400, "bad_request", "watch needs a \"job\" id")),
        },
        "shutdown" => Ok(Request::Shutdown),
        other => Err(reject(400, "bad_request", &format!("unknown op {other:?}"))),
    }
}

/// A forge spec as sent on the wire (every field optional, defaulting
/// to [`SynthConfig::default`] — the same knobs `synth_campaign`
/// exposes as flags).
fn parse_spec(spec: &Json) -> Result<SynthConfig, Json> {
    let num = |key: &str| -> Result<Option<u64>, Json> {
        match spec.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                reject(
                    400,
                    "bad_request",
                    &format!("spec field {key:?} must be a non-negative integer"),
                )
            }),
        }
    };
    let mut cfg = SynthConfig::default();
    if let Some(apps) = num("apps")? {
        if apps == 0 {
            return Err(reject(400, "bad_request", "spec.apps must be at least 1"));
        }
        cfg.apps = apps as usize;
    }
    if let Some(depth) = num("depth")? {
        cfg.branch_depth = depth as usize;
    }
    if let Some(sites) = num("sites")? {
        let sites = (sites as usize).max(1);
        cfg.min_sites = sites;
        cfg.max_sites = sites;
    }
    if let Some(k) = num("seeds_per_app")? {
        cfg.seeds_per_app = (k as usize).max(1);
    }
    if let Some(w) = num("site_work")? {
        cfg.site_work = w as u32;
    }
    if let Some(seed) = num("rng_seed")? {
        cfg.rng_seed = seed;
    }
    Ok(cfg)
}

/// Serialises a forge spec for the wire (only the protocol-visible
/// knobs; the structural fields everything else derives from).
#[must_use]
pub fn spec_json(cfg: &SynthConfig) -> Json {
    Json::obj()
        .field("apps", cfg.apps)
        .field("depth", cfg.branch_depth)
        .field("sites", cfg.min_sites)
        .field("seeds_per_app", cfg.seeds_per_app)
        .field("site_work", cfg.site_work)
        .field("rng_seed", cfg.rng_seed)
}

/// A typed rejection line: `{"ok":false,"code":...,"error":...,...}`.
#[must_use]
pub fn reject(code: u64, error: &str, detail: &str) -> Json {
    Json::obj()
        .field("ok", false)
        .field("code", code)
        .field("error", error)
        .field("detail", detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_spec_round_trips_defaults() {
        let req = parse_request(r#"{"op":"submit","spec":{},"wait":true}"#).unwrap();
        let Request::Submit {
            source: JobSource::Forge(cfg),
            wait,
            threads,
        } = req
        else {
            panic!("expected forge submit");
        };
        assert_eq!(cfg, SynthConfig::default());
        assert!(wait);
        assert_eq!(threads, None);
    }

    #[test]
    fn submit_spec_applies_knobs() {
        let line = r#"{"op":"submit","spec":{"apps":12,"depth":2,"sites":3,
            "seeds_per_app":2,"site_work":40,"rng_seed":18446744073709551615},"threads":4}"#;
        let Request::Submit {
            source: JobSource::Forge(cfg),
            wait,
            threads,
        } = parse_request(line).unwrap()
        else {
            panic!("expected forge submit");
        };
        assert_eq!(
            (cfg.apps, cfg.branch_depth, cfg.min_sites, cfg.max_sites),
            (12, 2, 3, 3)
        );
        assert_eq!((cfg.seeds_per_app, cfg.site_work), (2, 40));
        assert_eq!(cfg.rng_seed, u64::MAX, "u64 seeds survive exactly");
        assert!(!wait);
        assert_eq!(threads, Some(4));
    }

    #[test]
    fn submit_suite_and_watch_and_status() {
        assert_eq!(
            parse_request(r#"{"op":"submit","suite":"suite-0011223344556677"}"#).unwrap(),
            Request::Submit {
                source: JobSource::Suite("suite-0011223344556677".into()),
                wait: false,
                threads: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"watch","job":"job-3","ring":16}"#).unwrap(),
            Request::Watch {
                job: "job-3".into(),
                ring: 16
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status { job: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejections_are_typed() {
        for (line, want) in [
            ("not json", "bad_request"),
            (r#"{"op":"submit"}"#, "bad_request"),
            (r#"{"op":"submit","spec":{},"suite":"s"}"#, "bad_request"),
            (r#"{"op":"submit","spec":{"apps":0}}"#, "bad_request"),
            (r#"{"op":"submit","spec":{"apps":-1}}"#, "bad_request"),
            (r#"{"op":"watch"}"#, "bad_request"),
            (r#"{"op":"frobnicate"}"#, "bad_request"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(err.get("code").and_then(Json::as_u64), Some(400));
            assert_eq!(err.get("error").and_then(Json::as_str), Some(want));
        }
    }
}
