//! The daemon's wire protocol: one flat-JSON request line per
//! operation, one JSON response line back (plus a telemetry stream for
//! `watch`). The codec is `diode-corpus`'s round-tripping [`Json`] —
//! the same one every `BENCH_*` artifact uses — so `u64` payloads (RNG
//! seeds, byte counters) survive exactly.
//!
//! Requests:
//!
//! ```text
//! {"op":"submit","spec":{"apps":10,"depth":3,"rng_seed":123},"wait":true}
//! {"op":"submit","suite":"suite-00a1b2c3d4e5f607"}
//! {"op":"submit","spec":{"apps":5},"watchdog":{"slow_floor_ms":0},"wait":true}
//! {"op":"status"}
//! {"op":"status","job":"job-2"}
//! {"op":"watch","job":"job-2"}
//! {"op":"metrics"}
//! {"op":"metrics","format":"prometheus"}
//! {"op":"health"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok"` (except `metrics` in Prometheus
//! format, which streams the raw text exposition and closes). Failures
//! add an HTTP-flavoured `"code"` plus a stable `"error"` token —
//! `400 bad_request`, `404 not_found`, `429 queue_full`,
//! `500 job_failed`, `503 shutting_down` — so clients can branch on
//! semantics without string-matching free-text detail.
//!
//! A submit may carry `"watchdog"` (`true` for library defaults, or an
//! object tuning `slow_factor`, `slow_floor_ms`, `min_sites`,
//! `idle_heartbeats` — `0` disables the idle detector — and
//! `cache_ceiling` bytes): the daemon runs the job under those
//! thresholds and the job report gains an `"anomalies"` digest, which
//! also triggers the flight recorder. A forge spec may carry
//! `"stall_work"` to plant one extra single-site app with that much
//! per-site work — the operational fire drill for the slow-site
//! detector (plants lie outside the forge oracle, so `"recall"` is
//! null for such jobs).

use diode_obs::WatchdogConfig;
use diode_synth::SynthConfig;

pub use diode_corpus::{Json, JsonError};

/// Version stamped into `status` responses; bump on wire changes.
pub const PROTOCOL_VERSION: u64 = 2;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a campaign job.
    Submit {
        /// What to run.
        source: JobSource,
        /// Block until the job finishes and reply with its full report
        /// (instead of replying immediately with the job id).
        wait: bool,
        /// Pin the campaign's worker-thread count (`None`: all cores).
        threads: Option<usize>,
        /// Run the job under these watchdog thresholds and report the
        /// anomaly digest (`None`: the daemon's default, if any).
        watchdog: Option<WatchdogConfig>,
    },
    /// Daemon-wide counters, or one job's state when `job` is set.
    Status {
        /// Job id to inspect, or `None` for the daemon summary.
        job: Option<String>,
    },
    /// Stream a job's live telemetry JSONL until its `finished` record.
    Watch {
        /// Job id to stream.
        job: String,
        /// Subscriber ring capacity; a slow reader drops events beyond
        /// this instead of slowing the campaign.
        ring: usize,
    },
    /// Scrape the service metrics registry.
    Metrics {
        /// Stream the Prometheus text exposition instead of the
        /// one-line JSON reply.
        prometheus: bool,
    },
    /// Typed readiness/liveness probe with queue headroom and worker
    /// states.
    Health,
    /// Drain queued jobs, then stop accepting and exit.
    Shutdown,
}

/// What a submitted job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// Forge a fresh synthetic suite from this config, then run it.
    /// `stall_work > 0` plants one extra single-site app with that much
    /// per-site busy work (the flight-recorder fire drill).
    Forge {
        /// The forge knobs.
        cfg: SynthConfig,
        /// Per-site busy work for the planted stall app (0: no plant).
        stall_work: u32,
    },
    /// Load a suite from the daemon's corpus root by id (or unique id
    /// prefix), then run it.
    Suite(String),
}

/// Default `watch` subscriber ring capacity.
pub const DEFAULT_WATCH_RING: usize = 4096;

/// Parses one request line. The error is a ready-to-send `400` response.
pub fn parse_request(line: &str) -> Result<Request, Json> {
    let obj = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return Err(reject(400, "bad_request", &format!("malformed JSON: {e}"))),
    };
    let op = match obj.get("op").and_then(Json::as_str) {
        Some(op) => op.to_string(),
        None => return Err(reject(400, "bad_request", "missing string field \"op\"")),
    };
    match op.as_str() {
        "submit" => {
            let source = match (obj.get("spec"), obj.get("suite").and_then(Json::as_str)) {
                (Some(_), Some(_)) => {
                    return Err(reject(
                        400,
                        "bad_request",
                        "submit takes \"spec\" or \"suite\", not both",
                    ))
                }
                (Some(spec), None) => {
                    let (cfg, stall_work) = parse_spec(spec)?;
                    JobSource::Forge { cfg, stall_work }
                }
                (None, Some(suite)) => JobSource::Suite(suite.to_string()),
                (None, None) => {
                    return Err(reject(
                        400,
                        "bad_request",
                        "submit needs a \"spec\" object or a \"suite\" id",
                    ))
                }
            };
            Ok(Request::Submit {
                source,
                wait: obj.get("wait").and_then(Json::as_bool).unwrap_or(false),
                threads: obj
                    .get("threads")
                    .and_then(Json::as_u64)
                    .map(|t| (t as usize).max(1)),
                watchdog: match obj.get("watchdog") {
                    None => None,
                    Some(v) => parse_watchdog(v)?,
                },
            })
        }
        "status" => Ok(Request::Status {
            job: obj.get("job").and_then(Json::as_str).map(str::to_string),
        }),
        "metrics" => match obj.get("format").map(|f| f.as_str()) {
            None => Ok(Request::Metrics { prometheus: false }),
            Some(Some("json")) => Ok(Request::Metrics { prometheus: false }),
            Some(Some("prometheus")) => Ok(Request::Metrics { prometheus: true }),
            Some(other) => Err(reject(
                400,
                "bad_request",
                &format!("metrics format must be \"json\" or \"prometheus\", got {other:?}"),
            )),
        },
        "health" => Ok(Request::Health),
        "watch" => match obj.get("job").and_then(Json::as_str) {
            Some(job) => Ok(Request::Watch {
                job: job.to_string(),
                ring: obj
                    .get("ring")
                    .and_then(Json::as_u64)
                    .map_or(DEFAULT_WATCH_RING, |r| (r as usize).max(2)),
            }),
            None => Err(reject(400, "bad_request", "watch needs a \"job\" id")),
        },
        "shutdown" => Ok(Request::Shutdown),
        other => Err(reject(400, "bad_request", &format!("unknown op {other:?}"))),
    }
}

/// The submit-level watchdog field: `true` for library defaults, or an
/// object tuning individual thresholds (`false`/`null` mean "none").
fn parse_watchdog(v: &Json) -> Result<Option<WatchdogConfig>, Json> {
    let bad = |detail: &str| reject(400, "bad_request", detail);
    match v {
        Json::Bool(true) => Ok(Some(WatchdogConfig::default())),
        Json::Bool(false) | Json::Null => Ok(None),
        Json::Obj(fields) => {
            let mut cfg = WatchdogConfig::default();
            for (key, value) in fields {
                match key.as_str() {
                    "slow_factor" => {
                        cfg.slow_site_factor = value
                            .as_f64()
                            .ok_or_else(|| bad("watchdog.slow_factor must be a number"))?;
                    }
                    "slow_floor_ms" => {
                        let ms = value
                            .as_u64()
                            .ok_or_else(|| bad("watchdog.slow_floor_ms must be an integer"))?;
                        cfg.slow_site_floor_ns = ms.saturating_mul(1_000_000);
                    }
                    "min_sites" => {
                        cfg.min_sites_for_median = value
                            .as_u64()
                            .ok_or_else(|| bad("watchdog.min_sites must be an integer"))?
                            as usize;
                    }
                    "idle_heartbeats" => {
                        // 0 disables the detector (a streak can never
                        // reach u32::MAX heartbeats).
                        let n = value
                            .as_u64()
                            .ok_or_else(|| bad("watchdog.idle_heartbeats must be an integer"))?;
                        cfg.idle_heartbeats = if n == 0 {
                            u32::MAX
                        } else {
                            n.min(u64::from(u32::MAX)) as u32
                        };
                    }
                    "cache_ceiling" => {
                        cfg.cache_ceiling_bytes = Some(
                            value
                                .as_u64()
                                .ok_or_else(|| bad("watchdog.cache_ceiling must be an integer"))?,
                        );
                    }
                    other => {
                        return Err(bad(&format!("unknown watchdog field {other:?}")));
                    }
                }
            }
            Ok(Some(cfg))
        }
        _ => Err(bad(
            "\"watchdog\" must be a boolean or an object of thresholds",
        )),
    }
}

/// A forge spec as sent on the wire (every field optional, defaulting
/// to [`SynthConfig::default`] — the same knobs `synth_campaign`
/// exposes as flags, plus the `stall_work` plant).
fn parse_spec(spec: &Json) -> Result<(SynthConfig, u32), Json> {
    let num = |key: &str| -> Result<Option<u64>, Json> {
        match spec.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                reject(
                    400,
                    "bad_request",
                    &format!("spec field {key:?} must be a non-negative integer"),
                )
            }),
        }
    };
    let mut cfg = SynthConfig::default();
    if let Some(apps) = num("apps")? {
        if apps == 0 {
            return Err(reject(400, "bad_request", "spec.apps must be at least 1"));
        }
        cfg.apps = apps as usize;
    }
    if let Some(depth) = num("depth")? {
        cfg.branch_depth = depth as usize;
    }
    if let Some(sites) = num("sites")? {
        let sites = (sites as usize).max(1);
        cfg.min_sites = sites;
        cfg.max_sites = sites;
    }
    if let Some(k) = num("seeds_per_app")? {
        cfg.seeds_per_app = (k as usize).max(1);
    }
    if let Some(w) = num("site_work")? {
        cfg.site_work = w as u32;
    }
    if let Some(seed) = num("rng_seed")? {
        cfg.rng_seed = seed;
    }
    let stall_work = num("stall_work")?.unwrap_or(0) as u32;
    Ok((cfg, stall_work))
}

/// Serialises a forge spec for the wire (only the protocol-visible
/// knobs; the structural fields everything else derives from).
#[must_use]
pub fn spec_json(cfg: &SynthConfig) -> Json {
    Json::obj()
        .field("apps", cfg.apps)
        .field("depth", cfg.branch_depth)
        .field("sites", cfg.min_sites)
        .field("seeds_per_app", cfg.seeds_per_app)
        .field("site_work", cfg.site_work)
        .field("rng_seed", cfg.rng_seed)
}

/// A typed rejection line: `{"ok":false,"code":...,"error":...,...}`.
#[must_use]
pub fn reject(code: u64, error: &str, detail: &str) -> Json {
    Json::obj()
        .field("ok", false)
        .field("code", code)
        .field("error", error)
        .field("detail", detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_spec_round_trips_defaults() {
        let req = parse_request(r#"{"op":"submit","spec":{},"wait":true}"#).unwrap();
        let Request::Submit {
            source: JobSource::Forge { cfg, stall_work },
            wait,
            threads,
            watchdog,
        } = req
        else {
            panic!("expected forge submit");
        };
        assert_eq!(cfg, SynthConfig::default());
        assert_eq!(stall_work, 0);
        assert!(wait);
        assert_eq!(threads, None);
        assert_eq!(watchdog, None);
    }

    #[test]
    fn submit_spec_applies_knobs() {
        let line = r#"{"op":"submit","spec":{"apps":12,"depth":2,"sites":3,
            "seeds_per_app":2,"site_work":40,"rng_seed":18446744073709551615,
            "stall_work":2000000},"threads":4}"#;
        let Request::Submit {
            source: JobSource::Forge { cfg, stall_work },
            wait,
            threads,
            watchdog,
        } = parse_request(line).unwrap()
        else {
            panic!("expected forge submit");
        };
        assert_eq!(
            (cfg.apps, cfg.branch_depth, cfg.min_sites, cfg.max_sites),
            (12, 2, 3, 3)
        );
        assert_eq!((cfg.seeds_per_app, cfg.site_work), (2, 40));
        assert_eq!(cfg.rng_seed, u64::MAX, "u64 seeds survive exactly");
        assert_eq!(stall_work, 2_000_000);
        assert!(!wait);
        assert_eq!(threads, Some(4));
        assert_eq!(watchdog, None);
    }

    #[test]
    fn submit_watchdog_defaults_and_overrides() {
        let Request::Submit { watchdog, .. } =
            parse_request(r#"{"op":"submit","spec":{},"watchdog":true}"#).unwrap()
        else {
            panic!("expected submit");
        };
        assert_eq!(watchdog, Some(WatchdogConfig::default()));

        let line = r#"{"op":"submit","spec":{},"watchdog":{"slow_factor":4.5,
            "slow_floor_ms":0,"min_sites":4,"idle_heartbeats":0,"cache_ceiling":1024}}"#;
        let Request::Submit { watchdog, .. } = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        let cfg = watchdog.expect("thresholds parsed");
        assert_eq!(cfg.slow_site_factor, 4.5);
        assert_eq!(cfg.slow_site_floor_ns, 0);
        assert_eq!(cfg.min_sites_for_median, 4);
        assert_eq!(cfg.idle_heartbeats, u32::MAX, "0 disables the detector");
        assert_eq!(cfg.cache_ceiling_bytes, Some(1024));

        let Request::Submit { watchdog, .. } =
            parse_request(r#"{"op":"submit","spec":{},"watchdog":false}"#).unwrap()
        else {
            panic!("expected submit");
        };
        assert_eq!(watchdog, None);
    }

    #[test]
    fn submit_suite_and_watch_and_status() {
        assert_eq!(
            parse_request(r#"{"op":"submit","suite":"suite-0011223344556677"}"#).unwrap(),
            Request::Submit {
                source: JobSource::Suite("suite-0011223344556677".into()),
                wait: false,
                threads: None,
                watchdog: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"watch","job":"job-3","ring":16}"#).unwrap(),
            Request::Watch {
                job: "job-3".into(),
                ring: 16
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status { job: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn metrics_and_health_parse() {
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"json"}"#).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics { prometheus: true }
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
    }

    #[test]
    fn rejections_are_typed() {
        for (line, want) in [
            ("not json", "bad_request"),
            (r#"{"op":"submit"}"#, "bad_request"),
            (r#"{"op":"submit","spec":{},"suite":"s"}"#, "bad_request"),
            (r#"{"op":"submit","spec":{"apps":0}}"#, "bad_request"),
            (r#"{"op":"submit","spec":{"apps":-1}}"#, "bad_request"),
            (
                r#"{"op":"submit","spec":{},"watchdog":"yes"}"#,
                "bad_request",
            ),
            (
                r#"{"op":"submit","spec":{},"watchdog":{"gremlin":1}}"#,
                "bad_request",
            ),
            (r#"{"op":"metrics","format":"xml"}"#, "bad_request"),
            (r#"{"op":"watch"}"#, "bad_request"),
            (r#"{"op":"frobnicate"}"#, "bad_request"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(err.get("code").and_then(Json::as_u64), Some(400));
            assert_eq!(err.get("error").and_then(Json::as_str), Some(want));
        }
    }
}
