//! # diode-serve — a resident campaign daemon with a warm-cache job queue
//!
//! Every other entry point in this workspace is one-shot: forge, run,
//! exit — throwing away the solver-query and prefix-snapshot caches a
//! campaign spent its wall time filling. This crate keeps them. The
//! `diode-serve` daemon accepts campaign jobs over a line-delimited
//! JSON protocol on a TCP socket ([`protocol`]), runs them through the
//! unchanged `CampaignSpec → CampaignReport` engine on a bounded worker
//! pool ([`server`]), and shares one process-lifetime [`SolverCache`]
//! and [`SnapshotCache`] across every job — so a second campaign over
//! an overlapping suite is mostly cache hits, and each job's report
//! states its marginal hit rates so the warm-vs-cold delta is
//! measurable.
//!
//! Three invariants carry over from the rest of the workspace:
//!
//! * **Determinism** — warm caches change wall time, never outcomes. A
//!   daemon-run report's outcome fingerprint is byte-identical to a
//!   cold one-shot `synth_campaign` run of the same spec (enforced by
//!   this crate's integration tests).
//! * **Soundness of sharing** — the solver cache is content-addressed
//!   and inherently shareable; the snapshot cache is re-keyed per job
//!   with `SnapshotKeys::Content` so units from different suites can
//!   never collide positionally.
//! * **Backpressure, never blocking** — admission beyond the bounded
//!   queue is a typed `429`; slow `watch` clients drop telemetry events
//!   from their own ring rather than slowing the campaign.
//!
//! Start a daemon with [`serve`], talk to it with the `serve` client in
//! `diode-bench` (see `docs/OPERATIONS.md` at the repo root).
//!
//! [`SolverCache`]: diode_engine::SolverCache
//! [`SnapshotCache`]: diode_engine::SnapshotCache

#![deny(missing_docs)]

pub mod protocol;
pub mod server;

pub use protocol::{parse_request, reject, JobSource, Json, Request, PROTOCOL_VERSION};
pub use server::{serve, ServeConfig, ServerHandle};
