//! The resident daemon: a bounded per-worker job queue in front of the
//! campaign engine, with process-lifetime solver and snapshot caches
//! shared across every job.
//!
//! ## Cache-sharing discipline
//!
//! The solver cache is content-addressed (structural constraint
//! fingerprints), so sharing one [`SolverCache`] across jobs is always
//! sound. The snapshot cache is keyed per `(app, seed)` unit, so daemon
//! jobs run with [`SnapshotKeys::Content`]: units are keyed by a
//! fingerprint of their program text and seed bytes, and two different
//! suites can never collide the way positional keys would. Outcomes
//! stay byte-identical to a cold one-shot run either way — warm caches
//! change wall time, never classification.
//!
//! ## Backpressure
//!
//! Admission is bounded per worker: a submit that lands on a worker
//! whose queue is full is rejected with a typed `429 queue_full` line
//! instead of queueing unboundedly. Watch subscribers ride the pulse
//! bus's bounded rings — a slow client drops events, never stalls the
//! campaign (the `diode-obs` invariant).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use diode_corpus::CorpusStore;
use diode_engine::{
    scheduler, CacheStats, CampaignApp, CampaignReport, CampaignSpec, ExecutionMode, PulseBus,
    PulseConfig, PulseEvent, SnapshotCache, SnapshotKeys, SnapshotStats, SolverCache,
};
use diode_obs::{fnv64_hex, TelemetryStream};
use diode_synth::{forge, score, Fnv64, SynthConfig, SynthOracle};

use crate::protocol::{
    parse_request, reject, spec_json, JobSource, Json, Request, PROTOCOL_VERSION,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size: campaigns running concurrently.
    pub workers: usize,
    /// Bounded per-worker queue depth; admission beyond it is a `429`.
    pub queue_depth: usize,
    /// Corpus root for `{"suite": ...}` jobs (`None`: forge-only).
    pub corpus_root: Option<PathBuf>,
    /// Telemetry JSONL file, truncated and rewritten per job (the
    /// rotation `watch --follow` must survive).
    pub telemetry_file: Option<PathBuf>,
    /// Heartbeat sampling interval for per-job pulse telemetry.
    pub heartbeat: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 16,
            corpus_root: None,
            telemetry_file: None,
            heartbeat: Duration::from_millis(50),
        }
    }
}

enum JobState {
    Queued,
    Running,
    Done(Json),
    Failed(String),
}

impl JobState {
    fn token(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn finished(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

struct JobEntry {
    id: String,
    suite: String,
    source: JobSource,
    threads: Option<usize>,
    worker: usize,
    bus: Arc<PulseBus>,
    state: Mutex<JobState>,
    cv: Condvar,
    /// Full telemetry stream so far, for watch replay after the fact.
    archive: Mutex<String>,
}

impl JobEntry {
    fn set_state(&self, next: JobState) {
        *self.state.lock().expect("job state lock poisoned") = next;
        self.cv.notify_all();
    }

    fn wait_finished(&self) {
        let mut state = self.state.lock().expect("job state lock poisoned");
        while !state.finished() {
            state = self.cv.wait(state).expect("job state lock poisoned");
        }
    }
}

struct WorkerQueue {
    jobs: Mutex<VecDeque<Arc<JobEntry>>>,
    cv: Condvar,
}

struct Daemon {
    cfg: ServeConfig,
    solver_cache: Arc<SolverCache>,
    snapshots: Arc<SnapshotCache>,
    queues: Vec<WorkerQueue>,
    jobs: Mutex<Vec<Arc<JobEntry>>>,
    next_job: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    rejected: AtomicU64,
    shutting_down: AtomicBool,
    started: Instant,
}

impl Daemon {
    fn lookup(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.jobs
            .lock()
            .expect("job registry lock poisoned")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }
}

/// A running daemon: its bound address plus join handles.
pub struct ServerHandle {
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `shutdown` request drains the queue and every
    /// worker exits.
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Starts the daemon: binds the listener, spawns the worker pool and
/// the accept loop, and returns immediately.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let daemon = Arc::new(Daemon {
        solver_cache: Arc::new(SolverCache::new()),
        snapshots: Arc::new(SnapshotCache::new()),
        queues: (0..workers)
            .map(|_| WorkerQueue {
                jobs: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
        jobs: Mutex::new(Vec::new()),
        next_job: AtomicU64::new(1),
        jobs_done: AtomicU64::new(0),
        jobs_failed: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        shutting_down: AtomicBool::new(false),
        started: Instant::now(),
        cfg,
    });
    let worker_handles = (0..workers)
        .map(|i| {
            let daemon = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&daemon, i))
                .expect("spawn worker thread")
        })
        .collect();
    let accept = {
        let daemon = Arc::clone(&daemon);
        std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &daemon, addr))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        accept,
        workers: worker_handles,
    })
}

fn accept_loop(listener: &TcpListener, daemon: &Arc<Daemon>, addr: SocketAddr) {
    for stream in listener.incoming() {
        if daemon.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let daemon = Arc::clone(daemon);
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_connection(stream, &daemon, addr));
    }
}

/// Reads one request line, dispatches, writes the response line(s).
/// I/O errors mean the client went away — nothing to do but stop.
fn handle_connection(stream: TcpStream, daemon: &Arc<Daemon>, addr: SocketAddr) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let mut out = stream;
    match parse_request(line.trim()) {
        Err(err) => {
            let _ = writeln!(out, "{err}");
        }
        Ok(Request::Submit {
            source,
            wait,
            threads,
        }) => {
            let reply = submit(daemon, source, wait, threads);
            let _ = writeln!(out, "{reply}");
        }
        Ok(Request::Status { job }) => {
            let reply = status(daemon, job.as_deref());
            let _ = writeln!(out, "{reply}");
        }
        Ok(Request::Watch { job, ring }) => watch(daemon, &job, ring, &mut out),
        Ok(Request::Shutdown) => {
            let queued: usize = daemon
                .queues
                .iter()
                .map(|q| q.jobs.lock().expect("queue lock poisoned").len())
                .sum();
            let _ = writeln!(
                out,
                "{}",
                Json::obj().field("ok", true).field("draining", queued)
            );
            daemon.shutting_down.store(true, Ordering::SeqCst);
            for q in &daemon.queues {
                q.cv.notify_all();
            }
            // Wake the blocking accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Maps a suite id (or spec label) to its worker: the id's leading hex
/// prefix, folded, modulo the pool — so resubmissions of the same suite
/// always land on the same worker.
fn shard(label: &str, workers: usize) -> usize {
    let hex = label.split('-').nth(1).unwrap_or(label);
    let prefix = &hex[..hex.len().min(8)];
    let v = u64::from_str_radix(prefix, 16).unwrap_or_else(|_| {
        let mut f = Fnv64::new();
        f.str(label);
        u64::from_str_radix(&f.hex(), 16).unwrap_or(0)
    });
    (v % workers as u64) as usize
}

/// A stable content label for a forge spec (same role as a suite id:
/// sharding affinity plus report provenance).
fn spec_label(cfg: &SynthConfig) -> String {
    let mut f = Fnv64::new();
    f.str(&spec_json(cfg).to_string());
    format!("spec-{}", f.hex())
}

fn submit(daemon: &Arc<Daemon>, source: JobSource, wait: bool, threads: Option<usize>) -> Json {
    if daemon.shutting_down.load(Ordering::SeqCst) {
        return reject(
            503,
            "shutting_down",
            "daemon is draining; resubmit elsewhere",
        );
    }
    let suite = match &source {
        JobSource::Forge(cfg) => spec_label(cfg),
        JobSource::Suite(id) => {
            let Some(root) = &daemon.cfg.corpus_root else {
                return reject(
                    400,
                    "bad_request",
                    "daemon has no corpus root (start with --corpus)",
                );
            };
            match CorpusStore::open(root).and_then(|s| s.resolve(id)) {
                Ok(full) => full,
                Err(e) => return reject(404, "not_found", &format!("suite {id:?}: {e}")),
            }
        }
    };
    let worker = shard(&suite, daemon.queues.len());
    let id = format!("job-{}", daemon.next_job.fetch_add(1, Ordering::SeqCst));
    let entry = Arc::new(JobEntry {
        id: id.clone(),
        suite: suite.clone(),
        source,
        threads,
        worker,
        bus: Arc::new(PulseBus::new()),
        state: Mutex::new(JobState::Queued),
        cv: Condvar::new(),
        archive: Mutex::new(String::new()),
    });
    let queued = {
        let queue = &daemon.queues[worker];
        let mut jobs = queue.jobs.lock().expect("queue lock poisoned");
        if jobs.len() >= daemon.cfg.queue_depth {
            daemon.rejected.fetch_add(1, Ordering::Relaxed);
            return reject(
                429,
                "queue_full",
                &format!(
                    "worker {worker} queue is at its depth limit ({})",
                    daemon.cfg.queue_depth
                ),
            );
        }
        daemon
            .jobs
            .lock()
            .expect("job registry lock poisoned")
            .push(Arc::clone(&entry));
        jobs.push_back(Arc::clone(&entry));
        queue.cv.notify_one();
        jobs.len()
    };
    if wait {
        entry.wait_finished();
        match &*entry.state.lock().expect("job state lock poisoned") {
            JobState::Done(report) => report.clone(),
            JobState::Failed(e) => reject(500, "job_failed", e),
            _ => unreachable!("wait_finished returns only on a terminal state"),
        }
    } else {
        Json::obj()
            .field("ok", true)
            .field("job", id)
            .field("suite", suite)
            .field("worker", worker)
            .field("queued", queued)
    }
}

fn status(daemon: &Arc<Daemon>, job: Option<&str>) -> Json {
    if let Some(id) = job {
        let Some(entry) = daemon.lookup(id) else {
            return reject(404, "not_found", &format!("unknown job {id:?}"));
        };
        let state = entry.state.lock().expect("job state lock poisoned");
        let mut out = Json::obj()
            .field("ok", true)
            .field("job", entry.id.clone())
            .field("suite", entry.suite.clone())
            .field("worker", entry.worker)
            .field("state", state.token());
        match &*state {
            JobState::Done(report) => out = out.field("report", report.clone()),
            JobState::Failed(e) => out = out.field("detail", e.clone()),
            _ => {}
        }
        return out;
    }
    let queued: usize = daemon
        .queues
        .iter()
        .map(|q| q.jobs.lock().expect("queue lock poisoned").len())
        .sum();
    let running = daemon
        .jobs
        .lock()
        .expect("job registry lock poisoned")
        .iter()
        .filter(|j| {
            matches!(
                &*j.state.lock().expect("job state lock poisoned"),
                JobState::Running
            )
        })
        .count();
    Json::obj()
        .field("ok", true)
        .field("protocol", PROTOCOL_VERSION)
        .field("uptime_ms", daemon.started.elapsed().as_secs_f64() * 1e3)
        .field("workers", daemon.queues.len())
        .field("queue_depth", daemon.cfg.queue_depth)
        .field("queued", queued)
        .field("running", running)
        .field("done", daemon.jobs_done.load(Ordering::Relaxed))
        .field("failed", daemon.jobs_failed.load(Ordering::Relaxed))
        .field("rejected", daemon.rejected.load(Ordering::Relaxed))
        .field("shutting_down", daemon.shutting_down.load(Ordering::SeqCst))
        .field("cache", cache_stats_json(&daemon.solver_cache.stats()))
        .field("snapshots", snapshot_stats_json(&daemon.snapshots.stats()))
}

/// Streams a job's telemetry to `out`: live via a fresh bus subscriber
/// (bounded ring — a slow reader self-limits through drops), or the
/// archived stream when the job already finished. Subscribe-then-check
/// ordering makes the handoff race-free: a job finishing between the
/// two steps is served from the archive.
fn watch(daemon: &Arc<Daemon>, job: &str, ring: usize, out: &mut TcpStream) {
    let Some(entry) = daemon.lookup(job) else {
        let _ = writeln!(
            out,
            "{}",
            reject(404, "not_found", &format!("unknown job {job:?}"))
        );
        return;
    };
    let threads = entry
        .threads
        .unwrap_or_else(scheduler::default_threads)
        .max(1) as u32;
    let mut stream = TelemetryStream::new(entry.bus.subscribe(ring), threads);
    if entry
        .state
        .lock()
        .expect("job state lock poisoned")
        .finished()
    {
        let archive = entry.archive.lock().expect("archive lock poisoned");
        let _ = out.write_all(archive.as_bytes());
        return;
    }
    let header = diode_obs::telemetry_header(threads);
    let mut saw_events = false;
    let mut first_chunk = true;
    loop {
        let chunk = stream.drain();
        if !chunk.is_empty() {
            let events = if first_chunk {
                chunk.strip_prefix(header.as_str()).unwrap_or(&chunk)
            } else {
                &chunk
            };
            saw_events |= !events.is_empty();
            first_chunk = false;
            if out.write_all(chunk.as_bytes()).is_err() {
                return; // client went away
            }
        }
        if stream.finished() {
            return;
        }
        if entry
            .state
            .lock()
            .expect("job state lock poisoned")
            .finished()
        {
            // The job terminated without a finished event reaching this
            // subscriber. If we subscribed too late to see anything
            // (the campaign ended between submit and watch), replay the
            // archive's event lines behind the header already sent;
            // otherwise flush the partial tail and stop.
            let chunk = stream.drain();
            saw_events |= !chunk.is_empty();
            if !chunk.is_empty() && out.write_all(chunk.as_bytes()).is_err() {
                return;
            }
            if !saw_events {
                let archive = entry.archive.lock().expect("archive lock poisoned");
                if let Some((_, events)) = archive.split_once('\n') {
                    let _ = out.write_all(events.as_bytes());
                }
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn worker_loop(daemon: &Arc<Daemon>, index: usize) {
    let queue = &daemon.queues[index];
    loop {
        let entry = {
            let mut jobs = queue.jobs.lock().expect("queue lock poisoned");
            loop {
                if let Some(e) = jobs.pop_front() {
                    break e;
                }
                if daemon.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                jobs = queue.cv.wait(jobs).expect("queue lock poisoned");
            }
        };
        run_job(daemon, &entry);
    }
}

/// Builds the job's workloads (forging or loading from the corpus
/// root), or explains why it can't.
fn build_apps(
    daemon: &Daemon,
    source: &JobSource,
) -> Result<(Vec<CampaignApp>, Option<SynthOracle>), String> {
    match source {
        JobSource::Forge(cfg) => {
            let suite = forge(cfg);
            Ok((suite.campaign_apps(), Some(suite.oracle.clone())))
        }
        JobSource::Suite(id) => {
            let root = daemon
                .cfg
                .corpus_root
                .as_ref()
                .ok_or_else(|| "no corpus root configured".to_string())?;
            let store = CorpusStore::open(root).map_err(|e| e.to_string())?;
            let suite = store.load(id).map_err(|e| e.to_string())?;
            Ok((
                suite.suite.campaign_apps(),
                Some(suite.suite.oracle.clone()),
            ))
        }
    }
}

fn run_job(daemon: &Arc<Daemon>, entry: &Arc<JobEntry>) {
    entry.set_state(JobState::Running);
    let (apps, oracle) = match build_apps(daemon, &entry.source) {
        Ok(built) => built,
        Err(e) => {
            daemon.jobs_failed.fetch_add(1, Ordering::Relaxed);
            entry.set_state(JobState::Failed(e));
            return;
        }
    };
    let threads = entry
        .threads
        .unwrap_or_else(scheduler::default_threads)
        .max(1) as u32;

    // The archive pump: one subscriber draining the job's bus into the
    // in-memory archive (for watch replay) and the rotating telemetry
    // file, until the campaign's terminal event.
    let mut stream = TelemetryStream::new(entry.bus.subscribe(1 << 14), threads);
    let mut tfile = daemon.cfg.telemetry_file.as_ref().and_then(|p| {
        std::fs::File::create(p)
            .map_err(|e| eprintln!("diode-serve: cannot rotate {}: {e}", p.display()))
            .ok()
    });
    let pump_entry = Arc::clone(entry);
    let pump = std::thread::Builder::new()
        .name("serve-pump".to_string())
        .spawn(move || loop {
            let chunk = stream.drain();
            if !chunk.is_empty() {
                pump_entry
                    .archive
                    .lock()
                    .expect("archive lock poisoned")
                    .push_str(&chunk);
                if let Some(f) = &mut tfile {
                    let _ = f.write_all(chunk.as_bytes());
                    let _ = f.flush();
                }
            }
            if stream.finished() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        })
        .expect("spawn pump thread");

    let cache_before = daemon.solver_cache.stats();
    let snap_before = daemon.snapshots.stats();
    let mut spec = CampaignSpec::new(apps);
    spec.mode = ExecutionMode::Parallel {
        threads: entry.threads,
    };
    spec.config.query_cache = Some(Arc::clone(&daemon.solver_cache));
    spec.snapshot_cache = Some(Arc::clone(&daemon.snapshots));
    spec.snapshot_keys = SnapshotKeys::Content;
    spec.pulse = Some(PulseConfig {
        bus: Arc::clone(&entry.bus),
        heartbeat: daemon.cfg.heartbeat,
    });
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.run()));
    let report = match outcome {
        Ok(report) => report,
        Err(_) => {
            // Unblock the pump and any watchers with a terminal event,
            // then record the failure.
            entry.bus.publish(&PulseEvent::Finished {
                wall_ns: 0,
                sites: 0,
                exposed: 0,
            });
            let _ = pump.join();
            daemon.jobs_failed.fetch_add(1, Ordering::Relaxed);
            entry.set_state(JobState::Failed("campaign panicked".to_string()));
            return;
        }
    };
    let _ = pump.join();
    let report_json = job_report(
        entry,
        &report,
        oracle.as_ref(),
        &cache_before,
        &daemon.solver_cache.stats(),
        &snap_before,
        &daemon.snapshots.stats(),
    );
    daemon.jobs_done.fetch_add(1, Ordering::Relaxed);
    entry.set_state(JobState::Done(report_json));
}

/// The per-job report line: outcome counts, the determinism
/// fingerprint, and this job's *marginal* cache traffic (stats deltas
/// against the process-lifetime caches — exact while jobs serialise on
/// one worker, approximate when campaigns overlap).
fn job_report(
    entry: &JobEntry,
    report: &CampaignReport,
    oracle: Option<&SynthOracle>,
    cache_before: &CacheStats,
    cache_after: &CacheStats,
    snap_before: &SnapshotStats,
    snap_after: &SnapshotStats,
) -> Json {
    let counts = report.counts();
    let recall = oracle.map(|o| score(report, o).recall());
    let hits = cache_after.hits.saturating_sub(cache_before.hits);
    let misses = cache_after.misses.saturating_sub(cache_before.misses);
    let resumes = snap_after.resumes.saturating_sub(snap_before.resumes);
    let snap_hits = snap_after.hits.saturating_sub(snap_before.hits);
    let snap_misses = snap_after.misses.saturating_sub(snap_before.misses);
    Json::obj()
        .field("ok", true)
        .field("table", "serve_job")
        .field("job", entry.id.clone())
        .field("suite", entry.suite.clone())
        .field("wall_ms", report.wall_time.as_secs_f64() * 1e3)
        .field("threads", report.threads)
        .field("jobs", report.jobs)
        .field(
            "counts",
            Json::obj()
                .field("total", counts.0)
                .field("exposed", counts.1)
                .field("unsat", counts.2)
                .field("prevented", counts.3),
        )
        .field("recall", recall.map_or(Json::Null, Json::from))
        .field(
            "fingerprint",
            fnv64_hex(report.outcome_fingerprint().as_bytes()),
        )
        .field(
            "cache",
            Json::obj()
                .field("hits", hits)
                .field("misses", misses)
                .field("hit_rate", rate(hits, misses)),
        )
        .field(
            "snapshots",
            Json::obj()
                .field("hits", snap_hits)
                .field("misses", snap_misses)
                .field("resumes", resumes)
                .field("resume_rate", rate(snap_hits, snap_misses)),
        )
        .field("cache_total", cache_stats_json(cache_after))
        .field("snapshots_total", snapshot_stats_json(snap_after))
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj()
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("entries", s.entries)
        .field("bytes", s.bytes)
        .field("peak_bytes", s.peak_bytes)
        .field("hit_rate", s.hit_rate())
}

fn snapshot_stats_json(s: &SnapshotStats) -> Json {
    Json::obj()
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("resumes", s.resumes)
        .field("captures", s.captures)
        .field("extract_resumes", s.extract_resumes)
        .field("entries", s.entries)
        .field("bytes", s.bytes)
        .field("peak_bytes", s.peak_bytes)
        .field("resume_rate", s.resume_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_prefix_driven() {
        let a = shard("suite-00000000aaaaaaaa", 4);
        assert_eq!(a, shard("suite-00000000bbbbbbbb", 4), "prefix decides");
        assert_eq!(shard("suite-00000003deadbeef", 4), 3);
        assert_eq!(shard("spec-0000000200000000", 2), 0);
        // Degenerate labels still land somewhere in range.
        assert!(shard("nonsense", 3) < 3);
        assert!(shard("", 1) < 1);
    }

    #[test]
    fn spec_labels_follow_content() {
        let a = SynthConfig::default();
        let b = SynthConfig::default().with_apps(a.apps + 1);
        assert_eq!(spec_label(&a), spec_label(&a));
        assert_ne!(spec_label(&a), spec_label(&b));
        assert!(spec_label(&a).starts_with("spec-"));
    }

    #[test]
    fn rates_handle_zero() {
        assert_eq!(rate(0, 0), 0.0);
        assert_eq!(rate(3, 1), 0.75);
    }
}
