//! The resident daemon: a bounded per-worker job queue in front of the
//! campaign engine, with process-lifetime solver and snapshot caches
//! shared across every job.
//!
//! ## Cache-sharing discipline
//!
//! The solver cache is content-addressed (structural constraint
//! fingerprints), so sharing one [`SolverCache`] across jobs is always
//! sound. The snapshot cache is keyed per `(app, seed)` unit, so daemon
//! jobs run with [`SnapshotKeys::Content`]: units are keyed by a
//! fingerprint of their program text and seed bytes, and two different
//! suites can never collide the way positional keys would. Outcomes
//! stay byte-identical to a cold one-shot run either way — warm caches
//! change wall time, never classification.
//!
//! ## Backpressure
//!
//! Admission is bounded per worker: a submit that lands on a worker
//! whose queue is full is rejected with a typed `429 queue_full` line
//! instead of queueing unboundedly. Watch subscribers ride the pulse
//! bus's bounded rings — a slow client drops events, never stalls the
//! campaign (the `diode-obs` invariant).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use diode_corpus::CorpusStore;
use diode_engine::{
    scheduler, CacheStats, CampaignApp, CampaignReport, CampaignSpec, ExecutionMode, PulseBus,
    PulseConfig, PulseEvent, SnapshotCache, SnapshotKeys, SnapshotStats, SolverCache,
};
use diode_obs::{
    fnv64_hex, AnomalyReport, Counter, FlightRecorder, Histogram, MetricsRegistry, Phase,
    PhaseBreakdown, Recorder, TelemetryStream, Watchdog, WatchdogConfig, ANOMALY_SCHEMA_VERSION,
    FLIGHT_SCHEMA_VERSION, METRICS_SCHEMA_VERSION, TELEMETRY_SCHEMA_VERSION,
};
use diode_synth::{forge, forge_range, score, Fnv64, SynthConfig, SynthOracle};

use crate::protocol::{
    parse_request, reject, spec_json, JobSource, Json, Request, PROTOCOL_VERSION,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size: campaigns running concurrently.
    pub workers: usize,
    /// Bounded per-worker queue depth; admission beyond it is a `429`.
    pub queue_depth: usize,
    /// Corpus root for `{"suite": ...}` jobs (`None`: forge-only).
    pub corpus_root: Option<PathBuf>,
    /// Telemetry JSONL file, truncated and rewritten per job (the
    /// rotation `watch --follow` must survive).
    pub telemetry_file: Option<PathBuf>,
    /// Heartbeat sampling interval for per-job pulse telemetry.
    pub heartbeat: Duration,
    /// Service-level metrics registry (the `metrics` op). Strictly
    /// passive: campaign outcomes are byte-identical either way.
    pub metrics: bool,
    /// Directory for flight dumps (`<dir>/<job-id>.jsonl`, written when
    /// a watchdog anomaly fires or a job ends abnormally). `None`
    /// disables the flight recorder.
    pub flight_dir: Option<PathBuf>,
    /// Events the per-job flight ring retains.
    pub flight_capacity: usize,
    /// Default watchdog thresholds applied to every job that doesn't
    /// carry its own (`None`: jobs run unwatched unless they ask).
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 16,
            corpus_root: None,
            telemetry_file: None,
            heartbeat: Duration::from_millis(50),
            metrics: true,
            flight_dir: None,
            flight_capacity: 256,
            watchdog: None,
        }
    }
}

enum JobState {
    Queued,
    Running,
    Done(Json),
    Failed(String),
}

impl JobState {
    fn token(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn finished(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

struct JobEntry {
    id: String,
    suite: String,
    source: JobSource,
    threads: Option<usize>,
    worker: usize,
    bus: Arc<PulseBus>,
    state: Mutex<JobState>,
    cv: Condvar,
    /// Full telemetry stream so far, for watch replay after the fact.
    archive: Mutex<String>,
    /// Watchdog thresholds this job runs under (submission override or
    /// the daemon default).
    watchdog: Option<WatchdogConfig>,
    /// Admission time, for the admission-wait histogram.
    submitted: Instant,
}

impl JobEntry {
    fn set_state(&self, next: JobState) {
        *self.state.lock().expect("job state lock poisoned") = next;
        self.cv.notify_all();
    }

    fn wait_finished(&self) {
        let mut state = self.state.lock().expect("job state lock poisoned");
        while !state.finished() {
            state = self.cv.wait(state).expect("job state lock poisoned");
        }
    }
}

struct WorkerQueue {
    jobs: Mutex<VecDeque<Arc<JobEntry>>>,
    cv: Condvar,
}

/// Per-worker health state, outside the queue lock.
struct WorkerStat {
    /// Jobs this worker has finished (done or failed).
    completed: AtomicU64,
    /// False once the worker thread has exited.
    alive: AtomicBool,
    /// The job currently running on this worker, if any.
    current: Mutex<Option<String>>,
}

impl WorkerStat {
    fn new() -> WorkerStat {
        WorkerStat {
            completed: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            current: Mutex::new(None),
        }
    }
}

/// The always-on service metrics: handles registered once at startup,
/// hot-path updates are atomic adds or a short histogram lock. Never
/// consulted by the campaign itself — strictly passive.
struct Ops {
    registry: MetricsRegistry,
    jobs_submitted: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    flight_dumps: Counter,
    admission_wait: Histogram,
    job_wall: Histogram,
}

impl Ops {
    fn new() -> Ops {
        let registry = MetricsRegistry::new();
        let jobs_submitted = registry.counter(
            "diode_jobs_submitted_total",
            "Jobs accepted into a worker queue.",
            &[],
        );
        let jobs_completed = registry.counter(
            "diode_jobs_completed_total",
            "Jobs that ran to a report.",
            &[],
        );
        let jobs_failed = registry.counter(
            "diode_jobs_failed_total",
            "Jobs that failed to build or panicked.",
            &[],
        );
        let flight_dumps = registry.counter(
            "diode_flight_dumps_total",
            "Flight recordings written to disk.",
            &[],
        );
        let admission_wait = registry.histogram(
            "diode_admission_wait_ns",
            "Queue time between submit and a worker picking the job up.",
            &[],
        );
        let job_wall = registry.histogram(
            "diode_job_wall_ns",
            "Campaign wall time per completed job.",
            &[],
        );
        Ops {
            registry,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            flight_dumps,
            admission_wait,
            job_wall,
        }
    }

    /// The per-rejection-code counter (registered on first use).
    fn rejected(&self, code: u64) -> Counter {
        self.registry.counter(
            "diode_jobs_rejected_total",
            "Typed submit rejections by wire code.",
            &[("code", &code.to_string())],
        )
    }

    /// The per-phase latency histogram (registered on first use).
    fn phase_total(&self, phase: Phase) -> Histogram {
        self.registry.histogram(
            "diode_phase_total_ns",
            "Per-job total time in each pipeline phase, from the recorder.",
            &[("phase", phase.as_str())],
        )
    }

    /// The per-worker completed-jobs counter.
    fn worker_jobs(&self, worker: usize) -> Counter {
        self.registry.counter(
            "diode_worker_jobs_total",
            "Jobs finished per worker.",
            &[("worker", &worker.to_string())],
        )
    }

    /// The per-kind anomaly counter.
    fn anomalies(&self, kind: &str) -> Counter {
        self.registry.counter(
            "diode_anomalies_total",
            "Watchdog anomalies raised, by kind.",
            &[("kind", kind)],
        )
    }
}

struct Daemon {
    cfg: ServeConfig,
    solver_cache: Arc<SolverCache>,
    snapshots: Arc<SnapshotCache>,
    queues: Vec<WorkerQueue>,
    worker_stats: Vec<WorkerStat>,
    jobs: Mutex<Vec<Arc<JobEntry>>>,
    next_job: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    rejected: AtomicU64,
    shutting_down: AtomicBool,
    started: Instant,
    ops: Option<Ops>,
}

impl Daemon {
    fn lookup(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.jobs
            .lock()
            .expect("job registry lock poisoned")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    fn queued_total(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.jobs.lock().expect("queue lock poisoned").len())
            .sum()
    }
}

/// A running daemon: its bound address plus join handles.
pub struct ServerHandle {
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `shutdown` request drains the queue and every
    /// worker exits.
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Starts the daemon: binds the listener, spawns the worker pool and
/// the accept loop, and returns immediately.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let daemon = Arc::new(Daemon {
        solver_cache: Arc::new(SolverCache::new()),
        snapshots: Arc::new(SnapshotCache::new()),
        queues: (0..workers)
            .map(|_| WorkerQueue {
                jobs: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
        worker_stats: (0..workers).map(|_| WorkerStat::new()).collect(),
        jobs: Mutex::new(Vec::new()),
        next_job: AtomicU64::new(1),
        jobs_done: AtomicU64::new(0),
        jobs_failed: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        shutting_down: AtomicBool::new(false),
        started: Instant::now(),
        ops: cfg.metrics.then(Ops::new),
        cfg,
    });
    let worker_handles = (0..workers)
        .map(|i| {
            let daemon = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&daemon, i))
                .expect("spawn worker thread")
        })
        .collect();
    let accept = {
        let daemon = Arc::clone(&daemon);
        std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &daemon, addr))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        accept,
        workers: worker_handles,
    })
}

fn accept_loop(listener: &TcpListener, daemon: &Arc<Daemon>, addr: SocketAddr) {
    for stream in listener.incoming() {
        if daemon.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let daemon = Arc::clone(daemon);
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_connection(stream, &daemon, addr));
    }
}

/// Reads one request line, dispatches, writes the response line(s).
/// I/O errors mean the client went away — nothing to do but stop.
fn handle_connection(stream: TcpStream, daemon: &Arc<Daemon>, addr: SocketAddr) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let mut out = stream;
    match parse_request(line.trim()) {
        Err(err) => {
            let _ = writeln!(out, "{err}");
        }
        Ok(Request::Submit {
            source,
            wait,
            threads,
            watchdog,
        }) => {
            let reply = submit(daemon, source, wait, threads, watchdog);
            let _ = writeln!(out, "{reply}");
        }
        Ok(Request::Status { job }) => {
            let reply = status(daemon, job.as_deref());
            let _ = writeln!(out, "{reply}");
        }
        Ok(Request::Watch { job, ring }) => watch(daemon, &job, ring, &mut out),
        Ok(Request::Metrics { prometheus }) => match (&daemon.ops, prometheus) {
            (None, _) => {
                let _ = writeln!(
                    out,
                    "{}",
                    reject(400, "bad_request", "metrics are disabled (--no-metrics)")
                );
            }
            (Some(ops), true) => {
                let _ = out.write_all(scrape(daemon, ops).to_prometheus().as_bytes());
            }
            (Some(ops), false) => {
                let _ = writeln!(out, "{}", metrics_json(daemon, ops));
            }
        },
        Ok(Request::Health) => {
            let _ = writeln!(out, "{}", health(daemon));
        }
        Ok(Request::Shutdown) => {
            let queued: usize = daemon
                .queues
                .iter()
                .map(|q| q.jobs.lock().expect("queue lock poisoned").len())
                .sum();
            let _ = writeln!(
                out,
                "{}",
                Json::obj().field("ok", true).field("draining", queued)
            );
            daemon.shutting_down.store(true, Ordering::SeqCst);
            for q in &daemon.queues {
                q.cv.notify_all();
            }
            // Wake the blocking accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Maps a suite id (or spec label) to its worker: the id's leading hex
/// prefix, folded, modulo the pool — so resubmissions of the same suite
/// always land on the same worker.
fn shard(label: &str, workers: usize) -> usize {
    let hex = label.split('-').nth(1).unwrap_or(label);
    let prefix = &hex[..hex.len().min(8)];
    let v = u64::from_str_radix(prefix, 16).unwrap_or_else(|_| {
        let mut f = Fnv64::new();
        f.str(label);
        u64::from_str_radix(&f.hex(), 16).unwrap_or(0)
    });
    (v % workers as u64) as usize
}

/// A stable content label for a forge spec (same role as a suite id:
/// sharding affinity plus report provenance). A planted stall changes
/// the suite's content, so it changes the label.
fn spec_label(cfg: &SynthConfig, stall_work: u32) -> String {
    let mut f = Fnv64::new();
    f.str(&spec_json(cfg).to_string());
    if stall_work > 0 {
        f.str(&format!("+stall:{stall_work}"));
    }
    format!("spec-{}", f.hex())
}

/// Count one typed submit rejection, both in the legacy status counter
/// and the per-code metrics series.
fn count_rejection(daemon: &Daemon, reply: Json) -> Json {
    daemon.rejected.fetch_add(1, Ordering::Relaxed);
    if let (Some(ops), Some(code)) = (&daemon.ops, reply.get("code").and_then(Json::as_u64)) {
        ops.rejected(code).inc();
    }
    reply
}

fn submit(
    daemon: &Arc<Daemon>,
    source: JobSource,
    wait: bool,
    threads: Option<usize>,
    watchdog: Option<WatchdogConfig>,
) -> Json {
    if daemon.shutting_down.load(Ordering::SeqCst) {
        return count_rejection(
            daemon,
            reject(
                503,
                "shutting_down",
                "daemon is draining; resubmit elsewhere",
            ),
        );
    }
    let suite = match &source {
        JobSource::Forge { cfg, stall_work } => spec_label(cfg, *stall_work),
        JobSource::Suite(id) => {
            let Some(root) = &daemon.cfg.corpus_root else {
                return count_rejection(
                    daemon,
                    reject(
                        400,
                        "bad_request",
                        "daemon has no corpus root (start with --corpus)",
                    ),
                );
            };
            match CorpusStore::open(root).and_then(|s| s.resolve(id)) {
                Ok(full) => full,
                Err(e) => {
                    return count_rejection(
                        daemon,
                        reject(404, "not_found", &format!("suite {id:?}: {e}")),
                    )
                }
            }
        }
    };
    let worker = shard(&suite, daemon.queues.len());
    let id = format!("job-{}", daemon.next_job.fetch_add(1, Ordering::SeqCst));
    let entry = Arc::new(JobEntry {
        id: id.clone(),
        suite: suite.clone(),
        source,
        threads,
        worker,
        bus: Arc::new(PulseBus::new()),
        state: Mutex::new(JobState::Queued),
        cv: Condvar::new(),
        archive: Mutex::new(String::new()),
        watchdog: watchdog.or_else(|| daemon.cfg.watchdog.clone()),
        submitted: Instant::now(),
    });
    let queued = {
        let queue = &daemon.queues[worker];
        let mut jobs = queue.jobs.lock().expect("queue lock poisoned");
        if jobs.len() >= daemon.cfg.queue_depth {
            drop(jobs);
            return count_rejection(
                daemon,
                reject(
                    429,
                    "queue_full",
                    &format!(
                        "worker {worker} queue is at its depth limit ({})",
                        daemon.cfg.queue_depth
                    ),
                ),
            );
        }
        daemon
            .jobs
            .lock()
            .expect("job registry lock poisoned")
            .push(Arc::clone(&entry));
        jobs.push_back(Arc::clone(&entry));
        queue.cv.notify_one();
        jobs.len()
    };
    if let Some(ops) = &daemon.ops {
        ops.jobs_submitted.inc();
    }
    if wait {
        entry.wait_finished();
        match &*entry.state.lock().expect("job state lock poisoned") {
            JobState::Done(report) => report.clone(),
            JobState::Failed(e) => reject(500, "job_failed", e),
            _ => unreachable!("wait_finished returns only on a terminal state"),
        }
    } else {
        Json::obj()
            .field("ok", true)
            .field("job", id)
            .field("suite", suite)
            .field("worker", worker)
            .field("queued", queued)
    }
}

fn status(daemon: &Arc<Daemon>, job: Option<&str>) -> Json {
    if let Some(id) = job {
        let Some(entry) = daemon.lookup(id) else {
            return reject(404, "not_found", &format!("unknown job {id:?}"));
        };
        let state = entry.state.lock().expect("job state lock poisoned");
        let mut out = Json::obj()
            .field("ok", true)
            .field("job", entry.id.clone())
            .field("suite", entry.suite.clone())
            .field("worker", entry.worker)
            .field("state", state.token());
        match &*state {
            JobState::Done(report) => out = out.field("report", report.clone()),
            JobState::Failed(e) => out = out.field("detail", e.clone()),
            _ => {}
        }
        return out;
    }
    let queued: usize = daemon
        .queues
        .iter()
        .map(|q| q.jobs.lock().expect("queue lock poisoned").len())
        .sum();
    let running = daemon
        .jobs
        .lock()
        .expect("job registry lock poisoned")
        .iter()
        .filter(|j| {
            matches!(
                &*j.state.lock().expect("job state lock poisoned"),
                JobState::Running
            )
        })
        .count();
    Json::obj()
        .field("ok", true)
        .field("protocol", PROTOCOL_VERSION)
        .field("versions", versions_json())
        .field("uptime_ms", daemon.started.elapsed().as_secs_f64() * 1e3)
        .field("workers", daemon.queues.len())
        .field("worker_stats", worker_stats_json(daemon))
        .field("queue_depth", daemon.cfg.queue_depth)
        .field("queued", queued)
        .field("running", running)
        .field("done", daemon.jobs_done.load(Ordering::Relaxed))
        .field("failed", daemon.jobs_failed.load(Ordering::Relaxed))
        .field("rejected", daemon.rejected.load(Ordering::Relaxed))
        .field("metrics", daemon.ops.is_some())
        .field("shutting_down", daemon.shutting_down.load(Ordering::SeqCst))
        .field("cache", cache_stats_json(&daemon.solver_cache.stats()))
        .field("snapshots", snapshot_stats_json(&daemon.snapshots.stats()))
}

/// Every schema version a client may need to speak to this daemon:
/// the wire protocol plus the formats its replies and artifacts embed.
fn versions_json() -> Json {
    Json::obj()
        .field("protocol", PROTOCOL_VERSION)
        .field("telemetry", TELEMETRY_SCHEMA_VERSION)
        .field("anomalies", ANOMALY_SCHEMA_VERSION)
        .field("metrics", METRICS_SCHEMA_VERSION)
        .field("flight", FLIGHT_SCHEMA_VERSION)
}

/// One row per worker: liveness, what it's doing, and how much it has
/// done.
fn worker_stats_json(daemon: &Daemon) -> Json {
    Json::Arr(
        daemon
            .worker_stats
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let alive = w.alive.load(Ordering::Relaxed);
                let current = w.current.lock().expect("worker stat lock poisoned").clone();
                let queued = daemon.queues[i]
                    .jobs
                    .lock()
                    .expect("queue lock poisoned")
                    .len();
                let state = if !alive {
                    "exited"
                } else if current.is_some() {
                    "busy"
                } else {
                    "idle"
                };
                let mut row = Json::obj()
                    .field("worker", i)
                    .field("alive", alive)
                    .field("state", state)
                    .field("queued", queued)
                    .field("completed", w.completed.load(Ordering::Relaxed));
                if let Some(job) = current {
                    row = row.field("job", job);
                }
                row
            })
            .collect(),
    )
}

/// The typed health probe: liveness (worker threads running) and
/// readiness (accepting work with queue headroom), with per-worker
/// detail for the operator.
fn health(daemon: &Arc<Daemon>) -> Json {
    let live = daemon
        .worker_stats
        .iter()
        .all(|w| w.alive.load(Ordering::Relaxed));
    let queued = daemon.queued_total();
    let capacity = daemon.queues.len() * daemon.cfg.queue_depth;
    let headroom = capacity.saturating_sub(queued);
    let shutting_down = daemon.shutting_down.load(Ordering::SeqCst);
    let ready = live && !shutting_down && headroom > 0;
    Json::obj()
        .field("ok", true)
        .field("healthy", ready)
        .field("live", live)
        .field("ready", ready)
        .field("shutting_down", shutting_down)
        .field("queued", queued)
        .field("queue_capacity", capacity)
        .field("queue_headroom", headroom)
        .field("uptime_ms", daemon.started.elapsed().as_secs_f64() * 1e3)
        .field("workers", worker_stats_json(daemon))
}

/// Refreshes the point-in-time gauges and snapshots the registry.
/// Counters and histograms accumulate on the hot paths; gauges are
/// re-read from the daemon here, at scrape time.
fn scrape(daemon: &Arc<Daemon>, ops: &Ops) -> diode_obs::MetricsSnapshot {
    let gauge = |name: &str, help: &str, v: f64| ops.registry.gauge(name, help, &[]).set(v);
    gauge(
        "diode_uptime_seconds",
        "Seconds since the daemon started.",
        daemon.started.elapsed().as_secs_f64(),
    );
    let queued = daemon.queued_total();
    let capacity = daemon.queues.len() * daemon.cfg.queue_depth;
    gauge(
        "diode_queue_depth",
        "Jobs currently queued across all workers.",
        queued as f64,
    );
    gauge(
        "diode_queue_headroom",
        "Remaining admission capacity across all worker queues.",
        capacity.saturating_sub(queued) as f64,
    );
    let cache = daemon.solver_cache.stats();
    gauge(
        "diode_solver_cache_bytes",
        "Resident bytes in the shared solver cache.",
        cache.bytes as f64,
    );
    gauge(
        "diode_solver_cache_entries",
        "Entries in the shared solver cache.",
        cache.entries as f64,
    );
    gauge(
        "diode_solver_cache_hit_rate",
        "Lifetime hit rate of the shared solver cache.",
        cache.hit_rate(),
    );
    let snap = daemon.snapshots.stats();
    gauge(
        "diode_snapshot_cache_bytes",
        "Resident bytes in the shared snapshot cache.",
        snap.bytes as f64,
    );
    gauge(
        "diode_snapshot_cache_entries",
        "Entries in the shared snapshot cache.",
        snap.entries as f64,
    );
    gauge(
        "diode_snapshot_resume_rate",
        "Lifetime resume rate of the shared snapshot cache.",
        snap.resume_rate(),
    );
    ops.registry.snapshot()
}

/// The JSON metrics reply: the registry snapshot behind an `ok` line.
fn metrics_json(daemon: &Arc<Daemon>, ops: &Ops) -> Json {
    let snapshot = scrape(daemon, ops);
    let metrics = Json::parse(&snapshot.to_json()).unwrap_or(Json::Null);
    Json::obj()
        .field("ok", true)
        .field("schema", METRICS_SCHEMA_VERSION)
        .field("uptime_ms", daemon.started.elapsed().as_secs_f64() * 1e3)
        .field("metrics", metrics)
}

/// Streams a job's telemetry to `out`: live via a fresh bus subscriber
/// (bounded ring — a slow reader self-limits through drops), or the
/// archived stream when the job already finished. Subscribe-then-check
/// ordering makes the handoff race-free: a job finishing between the
/// two steps is served from the archive.
fn watch(daemon: &Arc<Daemon>, job: &str, ring: usize, out: &mut TcpStream) {
    let Some(entry) = daemon.lookup(job) else {
        let _ = writeln!(
            out,
            "{}",
            reject(404, "not_found", &format!("unknown job {job:?}"))
        );
        return;
    };
    let threads = entry
        .threads
        .unwrap_or_else(scheduler::default_threads)
        .max(1) as u32;
    let mut stream = TelemetryStream::new(entry.bus.subscribe(ring), threads);
    if entry
        .state
        .lock()
        .expect("job state lock poisoned")
        .finished()
    {
        let archive = entry.archive.lock().expect("archive lock poisoned");
        let _ = out.write_all(archive.as_bytes());
        return;
    }
    let header = diode_obs::telemetry_header(threads);
    let mut saw_events = false;
    let mut first_chunk = true;
    loop {
        let chunk = stream.drain();
        if !chunk.is_empty() {
            let events = if first_chunk {
                chunk.strip_prefix(header.as_str()).unwrap_or(&chunk)
            } else {
                &chunk
            };
            saw_events |= !events.is_empty();
            first_chunk = false;
            if out.write_all(chunk.as_bytes()).is_err() {
                return; // client went away
            }
        }
        if stream.finished() {
            return;
        }
        if entry
            .state
            .lock()
            .expect("job state lock poisoned")
            .finished()
        {
            // The job terminated without a finished event reaching this
            // subscriber. If we subscribed too late to see anything
            // (the campaign ended between submit and watch), replay the
            // archive's event lines behind the header already sent;
            // otherwise flush the partial tail and stop.
            let chunk = stream.drain();
            saw_events |= !chunk.is_empty();
            if !chunk.is_empty() && out.write_all(chunk.as_bytes()).is_err() {
                return;
            }
            if !saw_events {
                let archive = entry.archive.lock().expect("archive lock poisoned");
                if let Some((_, events)) = archive.split_once('\n') {
                    let _ = out.write_all(events.as_bytes());
                }
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn worker_loop(daemon: &Arc<Daemon>, index: usize) {
    let queue = &daemon.queues[index];
    let stat = &daemon.worker_stats[index];
    loop {
        let entry = {
            let mut jobs = queue.jobs.lock().expect("queue lock poisoned");
            loop {
                if let Some(e) = jobs.pop_front() {
                    break e;
                }
                if daemon.shutting_down.load(Ordering::SeqCst) {
                    stat.alive.store(false, Ordering::Relaxed);
                    return;
                }
                jobs = queue.cv.wait(jobs).expect("queue lock poisoned");
            }
        };
        *stat.current.lock().expect("worker stat lock poisoned") = Some(entry.id.clone());
        run_job(daemon, &entry);
        *stat.current.lock().expect("worker stat lock poisoned") = None;
        stat.completed.fetch_add(1, Ordering::Relaxed);
        if let Some(ops) = &daemon.ops {
            ops.worker_jobs(index).inc();
        }
    }
}

/// Builds the job's workloads (forging or loading from the corpus
/// root), or explains why it can't.
///
/// A nonzero `stall_work` plants one extra single-site app (forged at
/// offset 100, outside the spec's own range) whose per-site busy loop
/// dwarfs the rest of the suite — the deliberate `slow_site` trigger.
/// The plant lies outside the forge oracle, so recall is not scored
/// for stall jobs (`recall: null` in the report).
fn build_apps(
    daemon: &Daemon,
    source: &JobSource,
) -> Result<(Vec<CampaignApp>, Option<SynthOracle>), String> {
    match source {
        JobSource::Forge { cfg, stall_work } => {
            let suite = forge(cfg);
            if *stall_work == 0 {
                return Ok((suite.campaign_apps(), Some(suite.oracle.clone())));
            }
            let stall_cfg = SynthConfig {
                apps: 1,
                min_sites: 1,
                max_sites: 1,
                site_work: *stall_work,
                rng_seed: cfg.rng_seed,
                ..SynthConfig::default()
            };
            let mut apps = suite.campaign_apps();
            apps.extend(forge_range(&stall_cfg, 100, 1).campaign_apps());
            Ok((apps, None))
        }
        JobSource::Suite(id) => {
            let root = daemon
                .cfg
                .corpus_root
                .as_ref()
                .ok_or_else(|| "no corpus root configured".to_string())?;
            let store = CorpusStore::open(root).map_err(|e| e.to_string())?;
            let suite = store.load(id).map_err(|e| e.to_string())?;
            Ok((
                suite.suite.campaign_apps(),
                Some(suite.suite.oracle.clone()),
            ))
        }
    }
}

/// Writes one flight dump next to the other per-job telemetry and
/// counts it. Returns the path on success.
fn write_flight(
    daemon: &Daemon,
    dir: &std::path::Path,
    job: &str,
    flight: &FlightRecorder,
    reason: &str,
    threads: u32,
    anomalies: &[AnomalyReport],
) -> Option<PathBuf> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("diode-serve: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{job}.jsonl"));
    match std::fs::write(&path, flight.dump(job, reason, threads, anomalies)) {
        Ok(()) => {
            if let Some(ops) = &daemon.ops {
                ops.flight_dumps.inc();
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("diode-serve: cannot write {}: {e}", path.display());
            None
        }
    }
}

fn run_job(daemon: &Arc<Daemon>, entry: &Arc<JobEntry>) {
    entry.set_state(JobState::Running);
    if let Some(ops) = &daemon.ops {
        let waited = entry.submitted.elapsed().as_nanos();
        ops.admission_wait
            .observe(u64::try_from(waited).unwrap_or(u64::MAX));
    }
    let (apps, oracle) = match build_apps(daemon, &entry.source) {
        Ok(built) => built,
        Err(e) => {
            daemon.jobs_failed.fetch_add(1, Ordering::Relaxed);
            if let Some(ops) = &daemon.ops {
                ops.jobs_failed.inc();
            }
            entry.set_state(JobState::Failed(e));
            return;
        }
    };
    let threads = entry
        .threads
        .unwrap_or_else(scheduler::default_threads)
        .max(1) as u32;

    // The archive pump: one subscriber draining the job's bus into the
    // in-memory archive (for watch replay) and the rotating telemetry
    // file, until the campaign's terminal event. A second raw tap on
    // the same bus feeds the watchdog and the flight ring — both pure
    // consumers on this side thread, never in the campaign's path.
    let mut stream = TelemetryStream::new(entry.bus.subscribe(1 << 14), threads);
    let mut tfile = daemon.cfg.telemetry_file.as_ref().and_then(|p| {
        std::fs::File::create(p)
            .map_err(|e| eprintln!("diode-serve: cannot rotate {}: {e}", p.display()))
            .ok()
    });
    let mut flight = daemon
        .cfg
        .flight_dir
        .as_ref()
        .map(|_| FlightRecorder::new(daemon.cfg.flight_capacity));
    let mut watchdog = entry.watchdog.clone().map(Watchdog::new);
    let tap = (flight.is_some() || watchdog.is_some()).then(|| entry.bus.subscribe(1 << 14));
    let pump_entry = Arc::clone(entry);
    let pump = std::thread::Builder::new()
        .name("serve-pump".to_string())
        .spawn(move || {
            let drain_tap = |flight: &mut Option<FlightRecorder>,
                             watchdog: &mut Option<Watchdog>| {
                if let Some(tap) = &tap {
                    for event in tap.drain() {
                        if let Some(w) = watchdog {
                            w.feed(&event);
                        }
                        if let Some(f) = flight {
                            f.record(&event);
                        }
                    }
                }
            };
            loop {
                let chunk = stream.drain();
                if !chunk.is_empty() {
                    pump_entry
                        .archive
                        .lock()
                        .expect("archive lock poisoned")
                        .push_str(&chunk);
                    if let Some(f) = &mut tfile {
                        let _ = f.write_all(chunk.as_bytes());
                        let _ = f.flush();
                    }
                }
                drain_tap(&mut flight, &mut watchdog);
                if stream.finished() {
                    // The tap rides the same bus, so the terminal event
                    // already reached its ring — one last drain empties it.
                    drain_tap(&mut flight, &mut watchdog);
                    return (flight, watchdog);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
        .expect("spawn pump thread");

    let cache_before = daemon.solver_cache.stats();
    let snap_before = daemon.snapshots.stats();
    let recorder = daemon.ops.as_ref().map(|_| Arc::new(Recorder::new()));
    let mut spec = CampaignSpec::new(apps);
    spec.mode = ExecutionMode::Parallel {
        threads: entry.threads,
    };
    spec.config.query_cache = Some(Arc::clone(&daemon.solver_cache));
    spec.snapshot_cache = Some(Arc::clone(&daemon.snapshots));
    spec.snapshot_keys = SnapshotKeys::Content;
    spec.recorder = recorder.clone();
    spec.pulse = Some(PulseConfig {
        bus: Arc::clone(&entry.bus),
        heartbeat: daemon.cfg.heartbeat,
    });
    if let JobSource::Forge { stall_work, .. } = &entry.source {
        if *stall_work > 0 {
            // A planted stall burns fuel by design; raise the bound so
            // it runs to completion instead of dying mid-loop.
            spec.config.machine.fuel = spec.config.machine.fuel.max(200_000_000);
        }
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.run()));
    let report = match outcome {
        Ok(report) => report,
        Err(_) => {
            // Unblock the pump and any watchers with a terminal event,
            // then record the failure — with a flight dump of the
            // window leading up to it, when the recorder is on.
            entry.bus.publish(&PulseEvent::Finished {
                wall_ns: 0,
                sites: 0,
                exposed: 0,
            });
            let (flight, watchdog) = pump.join().unwrap_or((None, None));
            let anomalies = watchdog.map(Watchdog::finish).unwrap_or_default();
            if let (Some(dir), Some(f)) = (&daemon.cfg.flight_dir, &flight) {
                write_flight(daemon, dir, &entry.id, f, "job_failed", threads, &anomalies);
            }
            daemon.jobs_failed.fetch_add(1, Ordering::Relaxed);
            if let Some(ops) = &daemon.ops {
                ops.jobs_failed.inc();
                for a in &anomalies {
                    ops.anomalies(a.kind.as_str()).inc();
                }
            }
            entry.set_state(JobState::Failed("campaign panicked".to_string()));
            return;
        }
    };
    let (flight, watchdog) = pump.join().unwrap_or((None, None));
    let watched = watchdog.is_some();
    let anomalies = watchdog.map(Watchdog::finish).unwrap_or_default();
    let mut flight_path = None;
    if !anomalies.is_empty() {
        if let (Some(dir), Some(f)) = (&daemon.cfg.flight_dir, &flight) {
            let reason = format!("anomaly:{}", anomalies[0].kind.as_str());
            flight_path = write_flight(daemon, dir, &entry.id, f, &reason, threads, &anomalies);
        }
    }
    if let Some(ops) = &daemon.ops {
        ops.jobs_completed.inc();
        ops.job_wall
            .observe(u64::try_from(report.wall_time.as_nanos()).unwrap_or(u64::MAX));
        for a in &anomalies {
            ops.anomalies(a.kind.as_str()).inc();
        }
        if let Some(rec) = &recorder {
            for row in &PhaseBreakdown::from_trace(&rec.trace()).phases {
                ops.phase_total(row.phase).observe(row.total_ns);
            }
        }
    }
    let report_json = job_report(
        entry,
        &report,
        oracle.as_ref(),
        &cache_before,
        &daemon.solver_cache.stats(),
        &snap_before,
        &daemon.snapshots.stats(),
        watched.then_some(anomalies.as_slice()),
        flight_path.as_deref(),
    );
    daemon.jobs_done.fetch_add(1, Ordering::Relaxed);
    entry.set_state(JobState::Done(report_json));
}

/// The per-job report line: outcome counts, the determinism
/// fingerprint, and this job's *marginal* cache traffic (stats deltas
/// against the process-lifetime caches — exact while jobs serialise on
/// one worker, approximate when campaigns overlap).
#[allow(clippy::too_many_arguments)]
fn job_report(
    entry: &JobEntry,
    report: &CampaignReport,
    oracle: Option<&SynthOracle>,
    cache_before: &CacheStats,
    cache_after: &CacheStats,
    snap_before: &SnapshotStats,
    snap_after: &SnapshotStats,
    anomalies: Option<&[AnomalyReport]>,
    flight: Option<&std::path::Path>,
) -> Json {
    let counts = report.counts();
    let recall = oracle.map(|o| score(report, o).recall());
    let hits = cache_after.hits.saturating_sub(cache_before.hits);
    let misses = cache_after.misses.saturating_sub(cache_before.misses);
    let resumes = snap_after.resumes.saturating_sub(snap_before.resumes);
    let snap_hits = snap_after.hits.saturating_sub(snap_before.hits);
    let snap_misses = snap_after.misses.saturating_sub(snap_before.misses);
    let mut out = Json::obj()
        .field("ok", true)
        .field("table", "serve_job")
        .field("job", entry.id.clone())
        .field("suite", entry.suite.clone())
        .field("wall_ms", report.wall_time.as_secs_f64() * 1e3)
        .field("threads", report.threads)
        .field("jobs", report.jobs)
        .field(
            "counts",
            Json::obj()
                .field("total", counts.0)
                .field("exposed", counts.1)
                .field("unsat", counts.2)
                .field("prevented", counts.3),
        )
        .field("recall", recall.map_or(Json::Null, Json::from))
        .field(
            "fingerprint",
            fnv64_hex(report.outcome_fingerprint().as_bytes()),
        )
        .field(
            "cache",
            Json::obj()
                .field("hits", hits)
                .field("misses", misses)
                .field("hit_rate", rate(hits, misses)),
        )
        .field(
            "snapshots",
            Json::obj()
                .field("hits", snap_hits)
                .field("misses", snap_misses)
                .field("resumes", resumes)
                .field("resume_rate", rate(snap_hits, snap_misses)),
        )
        .field("cache_total", cache_stats_json(cache_after))
        .field("snapshots_total", snapshot_stats_json(snap_after));
    if let Some(anomalies) = anomalies {
        out = out.field(
            "anomalies",
            Json::Arr(anomalies.iter().map(anomaly_json).collect()),
        );
    }
    if let Some(path) = flight {
        out = out.field("flight", path.display().to_string());
    }
    out
}

fn anomaly_json(a: &AnomalyReport) -> Json {
    Json::obj()
        .field("kind", a.kind.as_str())
        .field("subject", a.subject.clone())
        .field("detail", a.detail.clone())
        .field("value", a.value)
        .field("threshold", a.threshold)
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj()
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("entries", s.entries)
        .field("bytes", s.bytes)
        .field("peak_bytes", s.peak_bytes)
        .field("hit_rate", s.hit_rate())
}

fn snapshot_stats_json(s: &SnapshotStats) -> Json {
    Json::obj()
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("resumes", s.resumes)
        .field("captures", s.captures)
        .field("extract_resumes", s.extract_resumes)
        .field("entries", s.entries)
        .field("bytes", s.bytes)
        .field("peak_bytes", s.peak_bytes)
        .field("resume_rate", s.resume_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_prefix_driven() {
        let a = shard("suite-00000000aaaaaaaa", 4);
        assert_eq!(a, shard("suite-00000000bbbbbbbb", 4), "prefix decides");
        assert_eq!(shard("suite-00000003deadbeef", 4), 3);
        assert_eq!(shard("spec-0000000200000000", 2), 0);
        // Degenerate labels still land somewhere in range.
        assert!(shard("nonsense", 3) < 3);
        assert!(shard("", 1) < 1);
    }

    #[test]
    fn spec_labels_follow_content() {
        let a = SynthConfig::default();
        let b = SynthConfig::default().with_apps(a.apps + 1);
        assert_eq!(spec_label(&a, 0), spec_label(&a, 0));
        assert_ne!(spec_label(&a, 0), spec_label(&b, 0));
        assert_ne!(
            spec_label(&a, 0),
            spec_label(&a, 2_000_000),
            "a planted stall changes the suite's content"
        );
        assert!(spec_label(&a, 0).starts_with("spec-"));
    }

    #[test]
    fn rates_handle_zero() {
        assert_eq!(rate(0, 0), 0.0);
        assert_eq!(rate(3, 1), 0.75);
    }
}
