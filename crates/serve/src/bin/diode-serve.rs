//! The `diode-serve` daemon binary.
//!
//! Usage: `cargo run --release -p diode-serve [-- FLAGS]`
//!
//! * `--addr A`           bind address (default `127.0.0.1:7070`;
//!   port `0` picks an ephemeral port — the chosen address is printed)
//! * `--workers N`        concurrent campaign jobs (default 1)
//! * `--queue-depth N`    per-worker admission bound (default 16)
//! * `--corpus PATH`      corpus root for `{"suite": ...}` jobs
//! * `--telemetry-file P` write each running job's telemetry JSONL to
//!   P, truncating per job (tail it with `watch --follow`)
//! * `--heartbeat-ms N`   pulse heartbeat interval (default 50)
//! * `--no-metrics`       disable the service-level metrics registry
//!   (the `metrics` op answers `400`; campaigns are unaffected)
//! * `--flight-dir DIR`   directory for flight dumps (default
//!   `flight`; one `<job-id>.jsonl` per anomalous or failed job)
//! * `--no-flight`        disable the flight recorder entirely
//! * `--flight-cap N`     events the per-job flight ring retains
//!   (default 256)
//! * `--watchdog`         run every job under the default watchdog
//!   thresholds (per-job submissions can still override)
//! * `--slow-factor F`, `--slow-floor-ms N`, `--min-sites N`,
//!   `--idle-heartbeats N`, `--cache-ceiling BYTES` — tune the default
//!   watchdog (each implies `--watchdog`; same knobs as the `watch`
//!   bin)
//!
//! The daemon prints one `listening on ADDR` line to stdout once bound,
//! then serves until a `shutdown` request drains the queue. See
//! `docs/OPERATIONS.md` for the wire protocol and example sessions.

use std::time::Duration;

use diode_obs::WatchdogConfig;
use diode_serve::{serve, ServeConfig};

fn flag_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num(args: &[String], name: &str) -> Option<u64> {
    flag_str(args, name).and_then(|v| v.parse().ok())
}

fn flag_f64(args: &[String], name: &str) -> Option<f64> {
    flag_str(args, name).and_then(|v| v.parse().ok())
}

/// The daemon-default watchdog: `--watchdog` opts in with stock
/// thresholds; any threshold flag opts in with that knob turned.
fn watchdog_config(args: &[String]) -> Option<WatchdogConfig> {
    let mut cfg = WatchdogConfig::default();
    let mut enabled = args.iter().any(|a| a == "--watchdog");
    if let Some(f) = flag_f64(args, "--slow-factor") {
        cfg.slow_site_factor = f;
        enabled = true;
    }
    if let Some(ms) = flag_num(args, "--slow-floor-ms") {
        cfg.slow_site_floor_ns = ms.saturating_mul(1_000_000);
        enabled = true;
    }
    if let Some(n) = flag_num(args, "--min-sites") {
        cfg.min_sites_for_median = n as usize;
        enabled = true;
    }
    if let Some(n) = flag_num(args, "--idle-heartbeats") {
        cfg.idle_heartbeats = if n == 0 { u32::MAX } else { n as u32 };
        enabled = true;
    }
    if let Some(bytes) = flag_num(args, "--cache-ceiling") {
        cfg.cache_ceiling_bytes = Some(bytes);
        enabled = true;
    }
    enabled.then_some(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flight_dir = if args.iter().any(|a| a == "--no-flight") {
        None
    } else {
        Some(
            flag_str(&args, "--flight-dir")
                .unwrap_or_else(|| "flight".to_string())
                .into(),
        )
    };
    let cfg = ServeConfig {
        addr: flag_str(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        workers: flag_num(&args, "--workers").unwrap_or(1).max(1) as usize,
        queue_depth: flag_num(&args, "--queue-depth").unwrap_or(16).max(1) as usize,
        corpus_root: flag_str(&args, "--corpus").map(Into::into),
        telemetry_file: flag_str(&args, "--telemetry-file").map(Into::into),
        heartbeat: Duration::from_millis(flag_num(&args, "--heartbeat-ms").unwrap_or(50).max(1)),
        metrics: !args.iter().any(|a| a == "--no-metrics"),
        flight_dir,
        flight_capacity: flag_num(&args, "--flight-cap").unwrap_or(256).max(1) as usize,
        watchdog: watchdog_config(&args),
    };
    let handle = match serve(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("diode-serve: cannot start: {e}");
            std::process::exit(2);
        }
    };
    // The one line supervisors and scripts parse to find the port.
    println!("listening on {}", handle.addr());
    handle.join();
    println!("diode-serve: drained and stopped");
}
