//! The `diode-serve` daemon binary.
//!
//! Usage: `cargo run --release -p diode-serve [-- FLAGS]`
//!
//! * `--addr A`           bind address (default `127.0.0.1:7070`;
//!   port `0` picks an ephemeral port — the chosen address is printed)
//! * `--workers N`        concurrent campaign jobs (default 1)
//! * `--queue-depth N`    per-worker admission bound (default 16)
//! * `--corpus PATH`      corpus root for `{"suite": ...}` jobs
//! * `--telemetry-file P` write each running job's telemetry JSONL to
//!   P, truncating per job (tail it with `watch --follow`)
//! * `--heartbeat-ms N`   pulse heartbeat interval (default 50)
//!
//! The daemon prints one `listening on ADDR` line to stdout once bound,
//! then serves until a `shutdown` request drains the queue. See
//! `docs/OPERATIONS.md` for the wire protocol and example sessions.

use std::time::Duration;

use diode_serve::{serve, ServeConfig};

fn flag_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num(args: &[String], name: &str) -> Option<u64> {
    flag_str(args, name).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ServeConfig {
        addr: flag_str(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        workers: flag_num(&args, "--workers").unwrap_or(1).max(1) as usize,
        queue_depth: flag_num(&args, "--queue-depth").unwrap_or(16).max(1) as usize,
        corpus_root: flag_str(&args, "--corpus").map(Into::into),
        telemetry_file: flag_str(&args, "--telemetry-file").map(Into::into),
        heartbeat: Duration::from_millis(flag_num(&args, "--heartbeat-ms").unwrap_or(50).max(1)),
    };
    let handle = match serve(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("diode-serve: cannot start: {e}");
            std::process::exit(2);
        }
    };
    // The one line supervisors and scripts parse to find the port.
    println!("listening on {}", handle.addr());
    handle.join();
    println!("diode-serve: drained and stopped");
}
