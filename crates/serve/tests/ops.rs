//! Service-level observability end-to-end: passivity of the metrics
//! registry and flight recorder, the planted-stall anomaly drill, and
//! the metrics/health wire surface.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use diode_corpus::Json;
use diode_obs::{parse_prometheus, FlightDump, PulseEvent, WatchdogConfig};
use diode_serve::{serve, ServeConfig, ServerHandle};
use diode_synth::{forge_range, SynthConfig};

/// Sends one request line and reads one response line.
fn request(addr: std::net::SocketAddr, line: &str) -> Json {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    writeln!(conn, "{line}").expect("send request");
    let mut reply = String::new();
    BufReader::new(conn)
        .read_line(&mut reply)
        .expect("read response");
    Json::parse(reply.trim()).expect("response is JSON")
}

/// Sends one request line and reads the whole (multi-line) response.
fn request_text(addr: std::net::SocketAddr, line: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    writeln!(conn, "{line}").expect("send request");
    let mut text = String::new();
    BufReader::new(conn)
        .read_to_string(&mut text)
        .expect("read response");
    text
}

fn shutdown(handle: ServerHandle) {
    let reply = request(handle.addr(), r#"{"op":"shutdown"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    handle.join();
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diode-serve-ops-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn fingerprint(reply: &Json) -> String {
    reply
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("reply carries a fingerprint: {reply}"))
        .to_string()
}

#[test]
fn metrics_flight_and_watchdog_are_passive_across_thread_counts() {
    let dir = temp_dir("passive");
    // Fully instrumented daemon: registry, recorder, flight ring, and
    // an attached-but-silent watchdog (thresholds that cannot fire, so
    // the comparison isn't muddied by flight dumps).
    let instrumented = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        heartbeat: Duration::from_millis(10),
        metrics: true,
        flight_dir: Some(dir.clone()),
        watchdog: Some(WatchdogConfig {
            slow_site_floor_ns: u64::MAX,
            idle_heartbeats: u32::MAX,
            ..WatchdogConfig::default()
        }),
        ..ServeConfig::default()
    })
    .expect("instrumented daemon starts");
    // Bare daemon: no registry, no recorder, no flight, no watchdog.
    let bare = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        heartbeat: Duration::from_millis(10),
        metrics: false,
        flight_dir: None,
        watchdog: None,
        ..ServeConfig::default()
    })
    .expect("bare daemon starts");

    let mut first: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        let line = format!(
            r#"{{"op":"submit","spec":{{"apps":3,"depth":2}},"wait":true,"threads":{threads}}}"#
        );
        let on = request(instrumented.addr(), &line);
        let off = request(bare.addr(), &line);
        assert_eq!(on.get("ok").and_then(Json::as_bool), Some(true), "{on}");
        assert_eq!(off.get("ok").and_then(Json::as_bool), Some(true), "{off}");
        assert_eq!(
            fingerprint(&on),
            fingerprint(&off),
            "observability must be passive at {threads} thread(s)"
        );
        let fp = fingerprint(&on);
        assert_eq!(
            *first.get_or_insert_with(|| fp.clone()),
            fp,
            "outcomes must not depend on the thread count"
        );
    }

    // A silent watchdog cuts no flight dumps.
    let dumps = std::fs::read_dir(&dir).expect("flight dir").count();
    assert_eq!(dumps, 0, "no anomaly fired, so no dump may exist");

    // The bare daemon rejects scrapes with a typed 400.
    let r = request(bare.addr(), r#"{"op":"metrics"}"#);
    assert_eq!(r.get("code").and_then(Json::as_u64), Some(400), "{r}");

    shutdown(instrumented);
    shutdown(bare);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn planted_stall_fires_the_watchdog_and_cuts_exactly_one_flight_dump() {
    let dir = temp_dir("flight");
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        heartbeat: Duration::from_millis(1),
        flight_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr();

    // A healthy 5-app suite plus one planted stall, under the pulse
    // test's thresholds (idle detection off: single-core CI).
    let reply = request(
        addr,
        r#"{"op":"submit","spec":{"apps":5,"stall_work":2000000},"wait":true,
            "watchdog":{"slow_factor":8,"slow_floor_ms":0,"min_sites":8,"idle_heartbeats":0}}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    // The plant lies outside the forge oracle, so recall is unscored.
    assert!(
        matches!(reply.get("recall"), Some(Json::Null)),
        "stall jobs must not be recall-scored: {reply}"
    );
    // The plant must fire. On an oversubscribed box the near-zero
    // campaign median can flag a healthy site too, so assert on the
    // invariants: at least one anomaly, all of them slow_site.
    let anomalies = reply
        .get("anomalies")
        .and_then(Json::as_arr)
        .expect("watched job reports its anomalies");
    assert!(!anomalies.is_empty(), "the plant fires: {reply}");
    for a in anomalies {
        assert_eq!(a.get("kind").and_then(Json::as_str), Some("slow_site"));
    }

    // Exactly one dump, named after the job, parseable, and holding
    // the stall app's events.
    let stall_app = forge_range(
        &SynthConfig {
            apps: 1,
            min_sites: 1,
            max_sites: 1,
            site_work: 2_000_000,
            ..SynthConfig::default()
        },
        100,
        1,
    )
    .campaign_apps()[0]
        .name
        .clone();
    let job = reply.get("job").and_then(Json::as_str).expect("job id");
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("flight dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(files.len(), 1, "exactly one flight dump: {files:?}");
    assert_eq!(
        files[0].file_name().and_then(|n| n.to_str()),
        Some(format!("{job}.jsonl").as_str())
    );
    let flight_field = reply.get("flight").and_then(Json::as_str).expect("path");
    assert_eq!(PathBuf::from(flight_field), files[0]);
    let dump = FlightDump::from_jsonl(&std::fs::read_to_string(&files[0]).expect("read dump"))
        .expect("dump parses");
    assert_eq!(dump.job, job);
    assert_eq!(dump.reason, "anomaly:slow_site");
    assert_eq!(dump.anomalies.len(), anomalies.len());
    assert!(
        dump.anomalies
            .iter()
            .any(|a| a.subject.contains(&stall_app)),
        "one anomaly must point at {stall_app}: {:?}",
        dump.anomalies
            .iter()
            .map(|a| &a.subject)
            .collect::<Vec<_>>()
    );
    assert!(
        dump.events.iter().any(
            |e| matches!(e, PulseEvent::SiteFinished { app, .. } if app.as_str() == stall_app)
        ),
        "the retained window must hold the stall site's events"
    );

    // A healthy watched job adds no second dump — and says so.
    let healthy = request(
        addr,
        r#"{"op":"submit","spec":{"apps":2},"wait":true,"watchdog":{"slow_floor_ms":60000,"idle_heartbeats":0}}"#,
    );
    assert_eq!(
        healthy.get("ok").and_then(Json::as_bool),
        Some(true),
        "{healthy}"
    );
    assert_eq!(
        healthy
            .get("anomalies")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    assert!(healthy.get("flight").is_none());
    assert_eq!(std::fs::read_dir(&dir).expect("flight dir").count(), 1);

    // The scrape agrees: one dump, and every fired anomaly counted.
    let metrics = request(addr, r#"{"op":"metrics"}"#);
    let counter = |name: &str| {
        metrics
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
    };
    assert_eq!(counter("diode_flight_dumps_total"), Some(1), "{metrics}");
    assert_eq!(
        counter(r#"diode_anomalies_total{kind="slow_site"}"#),
        Some(anomalies.len() as u64)
    );

    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_health_and_status_expose_service_state() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        heartbeat: Duration::from_millis(10),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr();

    // Ready from the start: all workers alive, full headroom.
    let h = request(addr, r#"{"op":"health"}"#);
    assert_eq!(h.get("healthy").and_then(Json::as_bool), Some(true), "{h}");
    assert_eq!(h.get("live").and_then(Json::as_bool), Some(true));
    assert_eq!(h.get("queue_headroom").and_then(Json::as_u64), Some(8));
    let workers = h.get("workers").and_then(Json::as_arr).expect("workers");
    assert_eq!(workers.len(), 2);
    assert!(workers
        .iter()
        .all(|w| w.get("alive").and_then(Json::as_bool) == Some(true)));

    // Two jobs and one typed rejection to move the counters.
    for _ in 0..2 {
        let r = request(
            addr,
            r#"{"op":"submit","spec":{"apps":2,"depth":2},"wait":true}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    }
    let r = request(addr, r#"{"op":"submit","suite":"suite-0011223344556677"}"#);
    assert_eq!(r.get("code").and_then(Json::as_u64), Some(400));

    // JSON exposition: job counters, the wall histogram, live gauges.
    let m = request(addr, r#"{"op":"metrics"}"#);
    assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true), "{m}");
    let metrics = m.get("metrics").expect("metrics body");
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
    };
    assert_eq!(counter("diode_jobs_submitted_total"), Some(2));
    assert_eq!(counter("diode_jobs_completed_total"), Some(2));
    assert_eq!(counter(r#"diode_jobs_rejected_total{code="400"}"#), Some(1));
    assert_eq!(
        metrics
            .get("histograms")
            .and_then(|h| h.get("diode_job_wall_ns"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(2),
        "{m}"
    );
    assert!(
        metrics
            .get("gauges")
            .and_then(|g| g.get("diode_uptime_seconds"))
            .and_then(Json::as_f64)
            .expect("uptime gauge")
            > 0.0
    );

    // Prometheus exposition: parses, and agrees with the JSON view.
    let text = request_text(addr, r#"{"op":"metrics","format":"prometheus"}"#);
    let samples = parse_prometheus(&text).expect("exposition parses");
    let series = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("series {name} missing from scrape"))
            .value
    };
    assert_eq!(series("diode_jobs_completed_total"), 2.0);
    assert_eq!(series("diode_job_wall_ns_count"), 2.0);
    assert!(samples.iter().any(|s| s.name == "diode_job_wall_ns_bucket"
        && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
        && s.value == 2.0));

    // Status carries the version surface and per-worker tallies.
    let s = request(addr, r#"{"op":"status"}"#);
    let versions = s.get("versions").expect("versions object");
    assert!(versions.get("protocol").and_then(Json::as_u64).is_some());
    assert_eq!(versions.get("metrics").and_then(Json::as_u64), Some(1));
    assert_eq!(versions.get("flight").and_then(Json::as_u64), Some(1));
    let stats = s.get("worker_stats").and_then(Json::as_arr).expect("stats");
    let completed: u64 = stats
        .iter()
        .map(|w| w.get("completed").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(completed, 2, "{s}");
    assert_eq!(s.get("metrics").and_then(Json::as_bool), Some(true));

    shutdown(handle);
}
