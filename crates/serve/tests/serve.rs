//! End-to-end daemon tests over a real TCP socket: determinism against
//! the one-shot path, warm-cache amortisation, typed backpressure, and
//! telemetry streaming.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use diode_corpus::Json;
use diode_engine::CampaignSpec;
use diode_obs::{fnv64_hex, TelemetryLog};
use diode_serve::{serve, ServeConfig};
use diode_synth::{forge, SynthConfig};

/// Sends one request line and reads one response line.
fn request(addr: std::net::SocketAddr, line: &str) -> Json {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    writeln!(conn, "{line}").expect("send request");
    let mut reader = BufReader::new(conn);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read response");
    Json::parse(reply.trim()).expect("response is JSON")
}

/// Sends a watch request and collects the entire stream until EOF.
fn watch_stream(addr: std::net::SocketAddr, job: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    writeln!(conn, r#"{{"op":"watch","job":"{job}"}}"#).expect("send watch");
    let mut out = String::new();
    BufReader::new(conn)
        .read_to_string(&mut out)
        .expect("read stream");
    out
}

use std::io::Read as _;

fn start(workers: usize, queue_depth: usize) -> diode_serve::ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        heartbeat: Duration::from_millis(10),
        ..ServeConfig::default()
    })
    .expect("daemon starts")
}

fn shutdown(handle: diode_serve::ServerHandle) {
    let reply = request(handle.addr(), r#"{"op":"shutdown"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    handle.join();
}

#[test]
fn daemon_reports_match_one_shot_runs_and_warm_beats_cold() {
    let handle = start(1, 16);
    let addr = handle.addr();

    // Cold job, synchronously.
    let submit = r#"{"op":"submit","spec":{"apps":3,"depth":2},"wait":true}"#;
    let cold = request(addr, submit);
    assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true), "{cold}");
    assert_eq!(cold.get("recall").and_then(Json::as_f64), Some(1.0));

    // The same spec through the one-shot path (cold caches, default
    // policy — exactly what `synth_campaign` runs): byte-identical
    // outcomes, fingerprint included.
    let cfg = SynthConfig::default().with_apps(3).with_depth(2);
    let report = CampaignSpec::from_corpus(&forge(&cfg)).run();
    assert_eq!(
        cold.get("fingerprint").and_then(Json::as_str),
        Some(fnv64_hex(report.outcome_fingerprint().as_bytes()).as_str()),
        "daemon outcome diverges from the one-shot engine run"
    );

    // Resubmit: overlapping (identical) suite, now against warm caches.
    let warm = request(addr, submit);
    assert_eq!(
        warm.get("fingerprint").and_then(Json::as_str),
        cold.get("fingerprint").and_then(Json::as_str),
        "warm caches must not change outcomes"
    );
    let rate = |r: &Json| {
        r.get("cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_f64)
            .expect("report carries a per-job cache hit rate")
    };
    assert!(
        rate(&warm) > rate(&cold),
        "warm hit rate {} must strictly exceed cold {}",
        rate(&warm),
        rate(&cold)
    );

    shutdown(handle);
}

#[test]
fn overlapping_suite_prefix_hits_warm_cache() {
    let handle = start(1, 16);
    let addr = handle.addr();
    // 2-app suite first; then 3 apps from the same RNG seed — per-app
    // RNG streams make the first two apps byte-identical, so the grown
    // suite's prefix rides the warm snapshot + solver caches.
    let cold = request(
        addr,
        r#"{"op":"submit","spec":{"apps":2,"depth":2,"rng_seed":7},"wait":true}"#,
    );
    let grown = request(
        addr,
        r#"{"op":"submit","spec":{"apps":3,"depth":2,"rng_seed":7},"wait":true}"#,
    );
    let rate = |r: &Json| {
        r.get("cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_f64)
            .unwrap()
    };
    assert!(
        rate(&grown) > rate(&cold),
        "overlapping suite should inherit warm queries: {} vs {}",
        rate(&grown),
        rate(&cold)
    );
    shutdown(handle);
}

#[test]
fn full_queue_rejects_with_typed_429() {
    let handle = start(1, 1);
    let addr = handle.addr();
    // Occupy the worker with a non-trivial job, then fill the depth-1
    // queue; the next submit must bounce.
    let first = request(
        addr,
        r#"{"op":"submit","spec":{"apps":4,"depth":3,"site_work":200}}"#,
    );
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    let mut saw_reject = false;
    for _ in 0..50 {
        let r = request(addr, r#"{"op":"submit","spec":{"apps":1,"depth":1}}"#);
        if r.get("ok").and_then(Json::as_bool) == Some(false) {
            assert_eq!(r.get("code").and_then(Json::as_u64), Some(429), "{r}");
            assert_eq!(r.get("error").and_then(Json::as_str), Some("queue_full"));
            saw_reject = true;
            break;
        }
    }
    assert!(saw_reject, "a depth-1 queue never rejected in 50 submits");
    shutdown(handle);
}

#[test]
fn watch_streams_live_and_replays_after_completion() {
    let handle = start(1, 16);
    let addr = handle.addr();
    let submitted = request(
        addr,
        r#"{"op":"submit","spec":{"apps":2,"depth":2,"site_work":100}}"#,
    );
    let job = submitted
        .get("job")
        .and_then(Json::as_str)
        .expect("async submit returns a job id")
        .to_string();

    // Live stream: runs until the terminal record, parses as a full
    // telemetry log ending in `finished`.
    let live = watch_stream(addr, &job);
    let log = TelemetryLog::from_jsonl(&live).expect("live stream parses");
    assert!(
        matches!(
            log.events.last(),
            Some(diode_obs::PulseEvent::Finished { .. })
        ),
        "stream must terminate with the finished record"
    );

    // Replay: watching a finished job serves the archived stream, which
    // includes events from the very start.
    let replay = watch_stream(addr, &job);
    let archived = TelemetryLog::from_jsonl(&replay).expect("archived stream parses");
    assert!(
        archived.events.len() >= log.events.len(),
        "archive holds the full stream"
    );
    // (first non-heartbeat event: the heartbeat thread may legitimately
    // tick before the first worker gets scheduled)
    let first_work = archived
        .events
        .iter()
        .find(|e| !matches!(e, diode_obs::PulseEvent::Heartbeat { .. }));
    assert!(
        matches!(first_work, Some(diode_obs::PulseEvent::UnitStarted { .. })),
        "archive starts at the first unit, got {first_work:?}"
    );

    // Status knows the job is done and carries its report.
    let status = request(addr, &format!(r#"{{"op":"status","job":"{job}"}}"#));
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    assert!(status.get("report").is_some());

    shutdown(handle);
}

#[test]
fn unknown_jobs_and_suites_are_404s() {
    let handle = start(1, 4);
    let addr = handle.addr();
    let r = request(addr, r#"{"op":"status","job":"job-999"}"#);
    assert_eq!(r.get("code").and_then(Json::as_u64), Some(404));
    // No corpus root configured: suite submits are a 400.
    let r = request(addr, r#"{"op":"submit","suite":"suite-0011223344556677"}"#);
    assert_eq!(r.get("code").and_then(Json::as_u64), Some(400), "{r}");
    let r = request(addr, r#"{"op":"nope"}"#);
    assert_eq!(r.get("error").and_then(Json::as_str), Some("bad_request"));
    shutdown(handle);
}

#[test]
fn corpus_suites_run_by_id_from_the_shared_root() {
    let dir = std::env::temp_dir().join(format!("diode-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("corpus root");
    let store = diode_corpus::CorpusStore::open(&dir).expect("open corpus");
    let cfg = SynthConfig::default().with_apps(2).with_depth(2);
    let suite = store.forge_and_save(&cfg).expect("save suite");
    let id = suite.id().to_string();

    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        corpus_root: Some(dir.clone()),
        heartbeat: Duration::from_millis(10),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr();

    // Submit by unique prefix; the daemon resolves it against the root.
    let prefix = &id[..id.len() - 4];
    let reply = request(
        addr,
        &format!(r#"{{"op":"submit","suite":"{prefix}","wait":true}}"#),
    );
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    assert_eq!(reply.get("suite").and_then(Json::as_str), Some(id.as_str()));
    assert_eq!(reply.get("recall").and_then(Json::as_f64), Some(1.0));

    // The same suite replayed one-shot matches the daemon's outcomes.
    let (report, _) = store
        .load(&id)
        .expect("load suite")
        .replay(diode_engine::ExecutionMode::default());
    assert_eq!(
        reply.get("fingerprint").and_then(Json::as_str),
        Some(fnv64_hex(report.outcome_fingerprint().as_bytes()).as_str())
    );

    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
