//! Audit-determinism acceptance tests for the decision-provenance
//! layer: the canonical provenance record set of a forged-suite
//! campaign must be byte-identical across thread counts, auditing must
//! not perturb the campaign report, a disabled recorder must produce no
//! provenance at all, and every record's verdict must chain to its
//! evidence.

use std::sync::Arc;

use diode_engine::{CampaignReport, CampaignSpec, ExecutionMode, Recorder};
use diode_obs::canonical_record_set;
use diode_synth::{forge, SynthConfig};

fn forged_spec() -> CampaignSpec {
    let cfg = SynthConfig {
        apps: 8,
        branch_depth: 2,
        rng_seed: 0x0B5,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    CampaignSpec::new(suite.campaign_apps())
}

fn audited_run(threads: usize) -> CampaignReport {
    let mut spec = forged_spec();
    spec.mode = ExecutionMode::Parallel {
        threads: Some(threads),
    };
    spec.recorder = Some(Arc::new(Recorder::new().with_audit()));
    spec.run()
}

/// The canonical byte form of a report's provenance.
fn canonical(report: &CampaignReport) -> String {
    canonical_record_set(report.provenance.as_ref().expect("audited report"))
}

#[test]
fn provenance_is_byte_identical_across_thread_counts() {
    let baseline = audited_run(1);
    let reference = canonical(&baseline);
    assert!(
        !reference.is_empty(),
        "audited campaign produced no provenance records"
    );
    for threads in [2, 4, 8] {
        let report = audited_run(threads);
        assert_eq!(
            baseline.outcome_fingerprint(),
            report.outcome_fingerprint(),
            "outcomes must not depend on the worker count"
        );
        assert_eq!(
            reference,
            canonical(&report),
            "canonical provenance must be byte-identical at {threads} workers"
        );
    }
}

#[test]
fn auditing_leaves_the_campaign_report_identical() {
    let mut plain = forged_spec();
    plain.mode = ExecutionMode::Parallel { threads: Some(2) };
    let plain = plain.run();

    let audited = audited_run(2);

    assert_eq!(
        plain.outcome_fingerprint(),
        audited.outcome_fingerprint(),
        "auditing must be passive: outcomes byte-identical with it on or off"
    );
    assert_eq!(plain.counts(), audited.counts());
    assert!(
        plain.provenance.is_none(),
        "unaudited report must carry no provenance"
    );
}

#[test]
fn disabled_recorder_collects_no_provenance() {
    // A plain recorder traces spans but must not pay for provenance:
    // the report carries none, and the recorder holds no records.
    let mut spec = forged_spec();
    spec.mode = ExecutionMode::Parallel { threads: Some(2) };
    let recorder = Arc::new(Recorder::new());
    assert!(!recorder.audit_enabled());
    spec.recorder = Some(Arc::clone(&recorder));
    let report = spec.run();
    assert!(
        report.provenance.is_none(),
        "audit-off run must not attach provenance to the report"
    );
    assert!(
        recorder.provenance().is_empty(),
        "audit-off recorder must hold no provenance records"
    );
    assert!(
        !recorder.trace().spans.is_empty(),
        "tracing still works with auditing off"
    );
}

#[test]
fn every_verdict_chains_to_its_evidence() {
    let report = audited_run(4);
    let records = report.provenance.as_ref().expect("audited report");
    let sites: usize = report.units.iter().map(|u| u.sites.len()).sum();
    assert_eq!(
        records.len(),
        sites,
        "every analyzed site must leave exactly one provenance record"
    );
    for r in records {
        assert_eq!(
            r.chain_error(),
            None,
            "broken derivation chain for {}#{}/{}:\n{}",
            r.app,
            r.seed,
            r.site,
            r.explain()
        );
        let (outcome, _, witness) = r.verdict().expect("record has a verdict");
        if outcome == "exposed" {
            assert!(
                witness.is_some(),
                "exposed site {}#{}/{} has no witness hash",
                r.app,
                r.seed,
                r.site
            );
        }
    }
}
