//! Property tests for prefix-snapshot/resume equivalence (the
//! determinism contract of the `diode-interp` snapshot layer): for
//! forged applications, resuming a captured prefix snapshot on a
//! divergent-suffix input produces a [`Run`] **byte-identical** to a
//! from-scratch execution — across all three shadow policies (concrete,
//! taint, symbolic) and arbitrary patched field values.
//!
//! The comparison oracle is the full `Debug` rendering of the run:
//! outcome, memory errors, every allocation record (values, sticky
//! overflow flags, shadow tags), branch observations, warnings, and the
//! step count.

use diode_interp::{
    run, run_and_capture, run_from, run_probed, Concrete, MachineConfig, Run, Shadow, Symbolic,
    Taint,
};
use diode_synth::{forge, SynthConfig};
use proptest::prelude::*;

fn image<T: std::fmt::Debug, C: std::fmt::Debug>(r: &Run<T, C>) -> String {
    format!("{r:?}")
}

/// Probes, captures, and resumes one forged app under one shadow policy,
/// asserting byte-identity of the resumed suffix run against a
/// from-scratch run on the same candidate input.
fn assert_equivalence<S: Shadow + Clone>(
    app: &diode_engine::CampaignApp,
    shadow: S,
    divergent: &[u32],
    candidate: &[u8],
) -> Result<(), TestCaseError>
where
    S::Tag: std::fmt::Debug,
    S::CondTag: std::fmt::Debug,
{
    let machine = MachineConfig::default();
    let seed = &app.seeds[0];
    let (_, probe) = run_probed(&app.program, seed, shadow.clone(), &machine, divergent);
    let Some(step) = probe else {
        // The divergent bytes are never read on the seed path — nothing
        // to snapshot, nothing to check.
        return Ok(());
    };
    let (full, snapshot) = run_and_capture(&app.program, seed, shadow.clone(), &machine, step);
    // The capturing run itself is unperturbed.
    prop_assert_eq!(
        image(&full),
        image(&run(&app.program, seed, shadow.clone(), &machine)),
        "{}: capture perturbed the run",
        app.name
    );
    let snapshot = snapshot.expect("probe step is reached on the probing input");
    // Resume on the candidate: validation must accept it (it differs
    // only at divergent offsets, none of which the prefix read), and the
    // result must match a from-scratch run byte for byte.
    let resumed = run_from(&app.program, candidate, &snapshot, &machine)
        .expect("candidate agrees with the prefix log");
    let scratch = run(&app.program, candidate, shadow, &machine);
    prop_assert_eq!(
        image(&resumed),
        image(&scratch),
        "{}: resumed suffix diverges from from-scratch run",
        app.name
    );
    prop_assert_eq!(resumed.steps, scratch.steps);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_resume_is_byte_identical_across_all_shadow_modes(
        rng_seed in 0u64..1_000_000,
        depth in 1usize..4,
        site_pick in 0usize..8,
        patch in 0u64..u64::MAX,
        site_work in prop_oneof![Just(0u32), Just(64u32)],
    ) {
        let cfg = SynthConfig {
            apps: 1,
            min_sites: 2,
            max_sites: 4,
            branch_depth: depth,
            site_work,
            rng_seed,
            ..SynthConfig::default()
        };
        let suite = forge(&cfg);
        let app = &suite.apps[0];
        let oracle = suite.oracle.app(&app.name).expect("oracle entry");
        let site = &oracle.sites[site_pick % oracle.sites.len()];

        // Divergent set: the picked site's field bytes (what a solver
        // model would patch), via the format's field map.
        let mut divergent: Vec<u32> = site
            .fields
            .iter()
            .flat_map(|path| {
                let f = app.format.field(path).expect("planted field exists");
                f.offset..f.offset + f.len
            })
            .collect();
        divergent.sort_unstable();
        divergent.dedup();

        // A candidate input: patch the divergent bytes with arbitrary
        // values and repair the checksums, exactly like generated inputs.
        let patched = divergent
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, (patch >> ((i % 8) * 8)) as u8));
        let candidate = app.format.reconstruct(&app.seeds[0], patched);

        assert_equivalence(app, Concrete, &divergent, &candidate)?;
        assert_equivalence(app, Taint, &divergent, &candidate)?;
        assert_equivalence(app, Symbolic::all_bytes(), &divergent, &candidate)?;
        // The staged policy the pipeline actually uses: symbolic
        // recording restricted to the site's relevant bytes.
        assert_equivalence(
            app,
            Symbolic::relevant_bytes(divergent.iter().copied()),
            &divergent,
            &candidate,
        )?;
    }
}
