//! Trace-determinism acceptance tests for the observability layer: the
//! merged span set of a forged-suite campaign must be identical across
//! thread counts (modulo timestamps), tracing must not perturb the
//! campaign report, and the per-phase breakdown must account for the
//! bulk of the wall time at one thread.

use std::sync::Arc;
use std::time::Instant;

use diode_engine::{CampaignReport, CampaignSpec, ExecutionMode, Recorder};
use diode_obs::{Phase, ProfileReport, Trace};
use diode_synth::{forge, SynthConfig};

fn forged_spec() -> (CampaignSpec, SynthConfig) {
    let cfg = SynthConfig {
        apps: 8,
        branch_depth: 2,
        rng_seed: 0x0B5,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    (CampaignSpec::new(suite.campaign_apps()), cfg)
}

fn traced_run(threads: usize) -> (CampaignReport, Trace) {
    let (mut spec, _) = forged_spec();
    let recorder = Arc::new(Recorder::new());
    spec.mode = ExecutionMode::Parallel {
        threads: Some(threads),
    };
    spec.recorder = Some(Arc::clone(&recorder));
    let report = spec.run();
    (report, recorder.trace())
}

#[test]
fn span_identity_set_is_identical_across_thread_counts() {
    let (report_1, trace_1) = traced_run(1);
    let (report_4, trace_4) = traced_run(4);

    assert_eq!(
        report_1.outcome_fingerprint(),
        report_4.outcome_fingerprint(),
        "outcomes must not depend on the worker count"
    );

    let ids_1 = trace_1.identity_set();
    let ids_4 = trace_4.identity_set();
    assert!(!ids_1.is_empty(), "traced campaign produced no spans");
    assert_eq!(
        ids_1, ids_4,
        "merged span identity sets must match between 1 and 4 workers"
    );

    // Deterministic sort: re-merging yields the same identity order.
    assert_eq!(trace_1.identity_set(), ids_1);
}

#[test]
fn tracing_leaves_the_campaign_report_identical() {
    let (mut plain, _) = forged_spec();
    plain.mode = ExecutionMode::Parallel { threads: Some(2) };
    let plain = plain.run();

    let (traced, _) = traced_run(2);

    assert_eq!(
        plain.outcome_fingerprint(),
        traced.outcome_fingerprint(),
        "tracing must be passive: outcomes byte-identical with it on or off"
    );
    assert_eq!(plain.counts(), traced.counts());
    assert!(plain.phases.is_none(), "untraced report has no breakdown");
    assert!(traced.phases.is_some(), "traced report carries a breakdown");
}

#[test]
fn every_pipeline_phase_appears_in_the_trace() {
    let (_, trace) = traced_run(2);
    let report = ProfileReport::from_trace(&trace, 5);
    for phase in [
        Phase::Identify,
        Phase::Warm,
        Phase::Extract,
        Phase::Solve,
        Phase::Enforce,
        Phase::Validate,
        Phase::InterpRun,
        Phase::InterpResume,
    ] {
        let row = report
            .breakdown
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {phase} missing from breakdown"));
        assert!(row.count > 0, "phase {phase} recorded no spans");
        assert!(row.total_ns > 0, "phase {phase} recorded zero duration");
    }
}

#[test]
fn phase_durations_cover_the_wall_time_at_one_thread() {
    // At one worker the instrumented top-level spans must account for
    // (nearly) all of the campaign wall time — the "sums within 10% of
    // wall" acceptance criterion, with a little slack for scheduler
    // bookkeeping between jobs.
    let (mut spec, _) = forged_spec();
    let recorder = Arc::new(Recorder::new());
    spec.mode = ExecutionMode::Parallel { threads: Some(1) };
    spec.recorder = Some(Arc::clone(&recorder));
    let start = Instant::now();
    let _report = spec.run();
    let wall_ns = start.elapsed().as_nanos() as u64;

    let mut trace = recorder.trace();
    trace.wall_ns = Some(wall_ns);
    trace.threads = Some(1);
    let report = ProfileReport::from_trace(&trace, 5);
    let coverage = report.serial_coverage().expect("wall time is stamped");
    assert!(
        coverage > 0.9,
        "instrumented phases cover only {:.0}% of wall time",
        coverage * 100.0
    );
    assert!(
        coverage <= 1.0 + 1e-9,
        "top-level spans exceed wall time: coverage {coverage}"
    );
}

#[test]
fn trace_round_trips_through_jsonl() {
    let (report, mut trace) = traced_run(2);
    trace.wall_ns = Some(report.wall_time.as_nanos() as u64);
    trace.threads = Some(2);
    let text = trace.to_jsonl();
    let back = Trace::from_jsonl(&text).expect("campaign trace round-trips");
    assert_eq!(back.identity_set(), trace.identity_set());
    assert_eq!(back.counters, trace.counters);
    assert_eq!(back.wall_ns, trace.wall_ns);
    assert_eq!(back.threads, trace.threads);
}
