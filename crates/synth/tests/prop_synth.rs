//! Property tests over the forge (via the in-tree proptest shim): every
//! forged program survives a `pretty → parse` round-trip, and every
//! forged seed passes its own `FormatDesc` validation — across random
//! configurations.

use diode_interp::{run, Concrete, MachineConfig, Outcome};
use diode_lang::{parse, pretty};
use diode_synth::{forge, SynthConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forged_programs_roundtrip_through_pretty_and_parse(
        rng_seed in 0u64..1_000_000,
        apps in 1usize..4,
        depth in 0usize..5,
        checksum: bool,
        blocking: bool,
    ) {
        let cfg = SynthConfig {
            apps,
            branch_depth: depth,
            checksum,
            blocking_loops: blocking,
            rng_seed,
            ..SynthConfig::default()
        };
        let suite = forge(&cfg);
        prop_assert_eq!(suite.apps.len(), apps);
        for app in &suite.apps {
            let printed = pretty::program(&app.program);
            let reparsed = match parse(&printed) {
                Ok(p) => p,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "{}: forged program does not re-parse: {e}\n{printed}",
                    app.name
                ))),
            };
            // Printing is canonical: a second print must be identical.
            prop_assert_eq!(
                &printed,
                &pretty::program(&reparsed),
                "{}: pretty→parse→pretty drift", app.name
            );
            // Site structure survives the round-trip.
            let orig: Vec<String> = app.program.alloc_sites().iter().map(|(_, s)| s.to_string()).collect();
            let back: Vec<String> = reparsed.alloc_sites().iter().map(|(_, s)| s.to_string()).collect();
            prop_assert_eq!(orig, back);
        }
    }

    #[test]
    fn forged_seeds_validate_against_their_format(
        rng_seed in 0u64..1_000_000,
        apps in 1usize..4,
        seeds_per_app in 1usize..3,
    ) {
        let cfg = SynthConfig {
            apps,
            seeds_per_app,
            rng_seed,
            ..SynthConfig::default()
        };
        let suite = forge(&cfg);
        for app in &suite.apps {
            prop_assert_eq!(app.seeds.len(), seeds_per_app);
            for seed in &app.seeds {
                if let Err(e) = app.format.validate(seed) {
                    return Err(TestCaseError::fail(format!(
                        "{}: seed fails its own format validation: {e}", app.name
                    )));
                }
                // Reconstruction keeps inputs structurally valid too.
                let patched = app.format.reconstruct(seed, [(4u32, 0xFFu8), (5, 0xFF)]);
                if let Err(e) = app.format.validate(&patched) {
                    return Err(TestCaseError::fail(format!(
                        "{}: reconstructed input fails validation: {e}", app.name
                    )));
                }
            }
        }
    }

    #[test]
    fn forged_seeds_run_cleanly_under_random_configs(
        rng_seed in 0u64..1_000_000,
        depth in 0usize..4,
    ) {
        let cfg = SynthConfig {
            apps: 2,
            branch_depth: depth,
            rng_seed,
            ..SynthConfig::default()
        };
        let suite = forge(&cfg);
        for app in &suite.apps {
            for seed in &app.seeds {
                let r = run(&app.program, seed, Concrete, &MachineConfig::default());
                prop_assert_eq!(
                    &r.outcome, &Outcome::Completed,
                    "{}: seed rejected: {:?} (warnings {:?})", app.name, r.outcome, r.warnings
                );
                prop_assert!(r.mem_errors.is_empty(), "{}: {:?}", app.name, r.mem_errors);
                prop_assert!(r.allocs.iter().all(|a| !a.size_ovf && !a.failed));
            }
        }
    }
}
