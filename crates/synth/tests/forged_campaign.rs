//! Campaign-scale acceptance tests for the scenario forge: a 50-app
//! forged suite must grade perfectly (100% recall *and* exact three-way
//! classification) and produce byte-identical reports in parallel and
//! sequential execution modes.

use diode_engine::{CampaignSpec, ExecutionMode};
use diode_synth::{forge, score, GroundTruth, SynthConfig};

#[test]
fn fifty_app_campaign_has_full_recall_and_identical_reports_across_modes() {
    let cfg = SynthConfig::default().with_apps(50);
    let suite = forge(&cfg);
    assert_eq!(suite.apps.len(), 50);
    let (total, exposable, unsat, prevented) = suite.oracle.expected_counts();
    assert_eq!(total, suite.total_sites());
    assert!(
        exposable >= 50,
        "every app plants at least one exposable site, got {exposable}"
    );
    assert!(
        unsat > 0 && prevented > 0,
        "the default mix plants all classes"
    );

    let parallel = CampaignSpec::new(suite.campaign_apps()).run();
    let sequential = CampaignSpec {
        mode: ExecutionMode::Sequential,
        shared_cache: false,
        ..CampaignSpec::new(suite.campaign_apps())
    }
    .run();

    // Byte-identical reports regardless of scheduling and caching.
    assert_eq!(
        parallel.outcome_fingerprint(),
        sequential.outcome_fingerprint(),
        "forged-campaign outcomes must not depend on execution mode"
    );
    assert_eq!(parallel.counts(), sequential.counts());

    // Perfect grade against the by-construction oracle.
    let card = score(&parallel, &suite.oracle);
    assert_eq!(card.graded, total);
    assert_eq!(
        card.recall(),
        1.0,
        "missed exposable sites: {:?}",
        card.mismatches
    );
    assert_eq!(
        card.precision(),
        1.0,
        "false positives: {:?}",
        card.mismatches
    );
    assert!(card.is_perfect(), "mismatches: {:?}", card.mismatches);

    // The campaign counts equal the oracle's expectations exactly.
    assert_eq!(parallel.counts(), (total, exposable, unsat, prevented));
}

#[test]
fn exposed_bugs_in_forged_campaigns_revalidate() {
    let suite = forge(&SynthConfig::default().with_apps(6).with_rng_seed(7));
    let report = CampaignSpec::new(suite.campaign_apps()).run();
    let mut exposed = 0;
    for unit in &report.units {
        for site in &unit.sites {
            if matches!(site.report.outcome, diode_core::SiteOutcome::Exposed(_)) {
                exposed += 1;
                assert_eq!(
                    site.verified,
                    Some(true),
                    "{}/{} failed re-validation",
                    unit.app,
                    site.report.site
                );
            }
        }
    }
    assert!(exposed > 0);
    let stats = report.cache.expect("campaign installs a shared cache");
    assert!(stats.hits > 0, "re-validation must hit the shared cache");
}

#[test]
fn multi_seed_forged_units_grade_per_unit() {
    let cfg = SynthConfig {
        apps: 3,
        seeds_per_app: 2,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    let report = CampaignSpec::new(suite.campaign_apps()).run();
    assert_eq!(report.units.len(), 6, "one unit per (app, seed)");
    let card = score(&report, &suite.oracle);
    assert_eq!(card.graded, 2 * suite.total_sites());
    assert!(card.is_perfect(), "mismatches: {:?}", card.mismatches);
}

#[test]
fn deeper_guard_chains_still_grade_perfectly() {
    let cfg = SynthConfig {
        apps: 4,
        branch_depth: 6,
        rng_seed: 0xBEEF,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    let report = CampaignSpec::new(suite.campaign_apps()).run();
    let card = score(&report, &suite.oracle);
    assert!(card.is_perfect(), "mismatches: {:?}", card.mismatches);
    // Deep chains force real enforcement work somewhere in the suite.
    let enforced: usize = report
        .units
        .iter()
        .flat_map(|u| &u.sites)
        .filter_map(|s| s.report.outcome.bug())
        .map(|b| b.enforced)
        .sum();
    assert!(enforced > 0, "expected at least one enforced branch");
}

#[test]
fn depth_zero_suites_expose_without_enforcement() {
    let cfg = SynthConfig {
        apps: 4,
        branch_depth: 0,
        rng_seed: 0x5EED,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    for app in &suite.oracle.apps {
        assert!(app
            .sites
            .iter()
            .all(|s| s.truth != GroundTruth::GuardPrevented));
    }
    let report = CampaignSpec::new(suite.campaign_apps()).run();
    let card = score(&report, &suite.oracle);
    assert!(card.is_perfect(), "mismatches: {:?}", card.mismatches);
    for unit in &report.units {
        for site in &unit.sites {
            if let Some(bug) = site.report.outcome.bug() {
                assert_eq!(
                    bug.enforced, 0,
                    "{}/{}: no guards to enforce",
                    unit.app, site.report.site
                );
            }
        }
    }
}
