//! # diode-synth — the ground-truth scenario forge
//!
//! The paper evaluates DIODE on five hand-ported applications (§5), which
//! caps every claim about detection rates at 40 allocation sites. This
//! crate removes that ceiling: it *synthesizes* complete benchmark units —
//! a program (generated as an AST, well-formed by construction) with
//! parser-style field extraction, guard chains of tunable depth, and
//! planted allocation sites; a matching [`FormatDesc`]; valid seed inputs;
//! and a **ground-truth oracle** recording each planted site's true
//! classification — so campaigns can be pointed at hundreds of scenarios
//! and graded for recall and precision instead of eyeballed.
//!
//! ## Oracle semantics
//!
//! Every planted site computes its allocation size at 32 bits from one or
//! two input fields through a monotone arithmetic shape (`v*c`, `v+c`,
//! `(v1*v2)*c`, `v<<k`, `v*c+d`). Because the shapes are monotone in each
//! field, the site's classification follows from evaluating the *true*
//! (unbounded) size at the extreme points of the input space:
//!
//! * **[`Exposable`]** — the true size reaches 2³² for some guard-passing
//!   field values. The forge plants a probe loop that touches the block
//!   across its full 64-bit logical extent, so the wrapped (or failed)
//!   allocation faults; DIODE must classify the site
//!   [`SiteOutcome::Exposed`].
//! * **[`GuardPrevented`]** — the raw fields could overflow the
//!   computation, but the binding guard (`if v > L { error }` with `L`
//!   below the overflow threshold) rejects every overflowing input; DIODE
//!   must classify the site [`SiteOutcome::Prevented`].
//! * **[`TargetUnsat`]** — no field values at all overflow the
//!   computation. Parameters are chosen so the static bound analysis in
//!   `overflow_condition` discharges every overflow atom, making the
//!   target constraint β literally `false`; DIODE must classify the site
//!   [`SiteOutcome::TargetUnsat`].
//!
//! The oracle is **known by construction** — no reference run, no solver,
//! no labelling pass — which is what makes 100%-recall assertions
//! meaningful: a missed exposable site is a bug in the pipeline, not in
//! the benchmark.
//!
//! Determinism is part of the contract: a [`SynthConfig`] (site counts,
//! branch depth, arithmetic shapes, input-width classes, RNG seed) maps to
//! a byte-identical suite every time, and campaign reports over forged
//! suites are byte-identical between parallel and sequential execution.
//!
//! ## Example
//!
//! ```
//! use diode_engine::CampaignSpec;
//! use diode_synth::{forge, score, SynthConfig};
//!
//! let cfg = SynthConfig {
//!     apps: 1,
//!     min_sites: 2,
//!     max_sites: 2,
//!     ..SynthConfig::default()
//! };
//! let suite = forge(&cfg);
//! let report = CampaignSpec::new(suite.campaign_apps()).run();
//! let card = score(&report, &suite.oracle);
//! assert_eq!(card.recall(), 1.0, "{card}");
//! assert!(card.is_perfect(), "{:?}", card.mismatches);
//! ```
//!
//! [`FormatDesc`]: diode_format::FormatDesc
//! [`Exposable`]: GroundTruth::Exposable
//! [`GuardPrevented`]: GroundTruth::GuardPrevented
//! [`TargetUnsat`]: GroundTruth::TargetUnsat
//! [`SiteOutcome::Exposed`]: diode_core::SiteOutcome::Exposed
//! [`SiteOutcome::Prevented`]: diode_core::SiteOutcome::Prevented
//! [`SiteOutcome::TargetUnsat`]: diode_core::SiteOutcome::TargetUnsat

#![warn(missing_docs)]

mod config;
mod forge;
mod manifest;
mod oracle;
mod score;

pub use config::{ClassMix, ShapeClass, SynthConfig, WidthClass};
pub use forge::{forge, forge_range, ForgedSuite};
pub use manifest::{AppManifest, Fnv64, ManifestError, SuiteManifest};
pub use oracle::{AppOracle, GroundTruth, PlantedSite, SynthOracle};
pub use score::{score, Mismatch, ScoreCard};
