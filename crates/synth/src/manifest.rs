//! Suite ↔ manifest conversion: the serializable form of a forged suite,
//! with stable content-hash identities.
//!
//! A [`SuiteManifest`] is the complete, plain-data image of a
//! [`ForgedSuite`]: canonical program source (via the pretty-printer),
//! seed bytes, format specs, the oracle, and the [`SynthConfig`] that
//! forged it. `diode-corpus` persists manifests to disk; this module owns
//! the conversion in both directions so the corpus layer never reaches
//! into forge internals.
//!
//! Identity is **content-addressed**: every app gets a 64-bit FNV-1a hash
//! over its canonical bytes, and the suite ID folds the config and every
//! app hash together. Two processes that forge (or load) the same suite
//! compute the same ID, and any on-disk corruption surfaces as a hash
//! mismatch on load.
//!
//! Loading round-trips each program through the parser
//! (`parse(pretty(p))`) and insists the result re-prints byte-identically
//! — so a persisted corpus doubles as a parser fuzz corpus: every stored
//! program is a checked pretty→parse→pretty fixpoint.

use std::fmt;

use diode_format::FormatDesc;
use diode_lang::{parse, pretty, ParseError};

use crate::config::SynthConfig;
use crate::forge::ForgedSuite;
use crate::oracle::SynthOracle;
use diode_engine::CampaignApp;

/// The serializable image of one forged application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppManifest {
    /// Campaign name (`forge-NNN`).
    pub name: String,
    /// Canonical program source (pretty-printer output).
    pub program: String,
    /// The seeds' format description.
    pub format: FormatDesc,
    /// Seed inputs, in campaign order.
    pub seeds: Vec<Vec<u8>>,
    /// 16-hex-digit FNV-1a content hash over this app's canonical bytes
    /// (name, program, format spec, seeds, oracle entry).
    pub content_hash: String,
}

/// The serializable image of a whole forged suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteManifest {
    /// Content-addressed suite identity: `suite-` + 16 hex digits folding
    /// the config and every app's content hash.
    pub suite_id: String,
    /// The configuration that forged (and can re-forge or grow) the suite.
    pub config: SynthConfig,
    /// Per-app images, in suite order.
    pub apps: Vec<AppManifest>,
    /// The by-construction ground truth.
    pub oracle: SynthOracle,
}

/// Why a manifest could not be turned back into a runnable suite.
#[derive(Debug)]
pub enum ManifestError {
    /// A stored program no longer parses.
    Parse {
        /// App name.
        app: String,
        /// The parser's complaint.
        error: ParseError,
    },
    /// A stored program parses but is not a pretty-printer fixpoint (the
    /// stored text was edited or produced by a different version).
    NotCanonical {
        /// App name.
        app: String,
    },
    /// An app's stored content hash does not match its recomputed hash.
    HashMismatch {
        /// App name.
        app: String,
        /// The hash recorded in the manifest.
        stored: String,
        /// The hash of the content actually present.
        computed: String,
    },
    /// The manifest's suite ID does not match its recomputed identity.
    SuiteIdMismatch {
        /// The ID recorded in the manifest.
        stored: String,
        /// The identity of the content actually present.
        computed: String,
    },
    /// App list and oracle disagree about which apps exist.
    OracleSkew {
        /// App name present on one side only.
        app: String,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Parse { app, error } => {
                write!(f, "{app}: stored program does not parse: {error}")
            }
            ManifestError::NotCanonical { app } => {
                write!(f, "{app}: stored program is not pretty-printer-canonical")
            }
            ManifestError::HashMismatch {
                app,
                stored,
                computed,
            } => write!(
                f,
                "{app}: content hash mismatch (stored {stored}, computed {computed})"
            ),
            ManifestError::SuiteIdMismatch { stored, computed } => {
                write!(
                    f,
                    "suite id mismatch (stored {stored}, computed {computed})"
                )
            }
            ManifestError::OracleSkew { app } => {
                write!(f, "{app}: present in apps or oracle but not both")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// Incremental 64-bit FNV-1a over length-delimited chunks — the one
/// content-hash primitive behind app hashes, suite IDs, and (in
/// `diode-corpus`) witness fingerprints. Sharing the implementation
/// keeps every content-addressed domain on identical hashing rules.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Folds in one chunk. Chunks are length-delimited, so
    /// `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let len = data.len() as u64;
        for b in len.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds in one string chunk.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// The digest as 16 lowercase hex digits.
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Canonical textual image of a config, the hashing (not storage) form.
fn config_canon(cfg: &SynthConfig) -> String {
    let widths: Vec<&str> = cfg.widths.iter().map(|w| w.token()).collect();
    let shapes: Vec<&str> = cfg.shapes.iter().map(|s| s.token()).collect();
    let mut base = format!(
        "apps={};sites={}..{};depth={};widths={};shapes={};mix={}/{}/{};\
         checksum={};blocking={};seeds={};rng={:#x}",
        cfg.apps,
        cfg.min_sites,
        cfg.max_sites,
        cfg.branch_depth,
        widths.join(","),
        shapes.join(","),
        cfg.mix.exposable,
        cfg.mix.guard_prevented,
        cfg.mix.target_unsat,
        cfg.checksum,
        cfg.blocking_loops,
        cfg.seeds_per_app,
        cfg.rng_seed,
    );
    // Appended only when set, so every pre-existing suite (site_work 0)
    // keeps its stored content hash.
    if cfg.site_work > 0 {
        base.push_str(&format!(";work={}", cfg.site_work));
    }
    base
}

/// Content hash of one app: name, canonical program text, format spec,
/// seed bytes, and the oracle's planted-site records.
fn app_hash(
    name: &str,
    program: &str,
    format: &FormatDesc,
    seeds: &[Vec<u8>],
    oracle: &SynthOracle,
) -> String {
    let mut h = Fnv64::new();
    h.str(name);
    h.str(program);
    h.str(&format.to_spec());
    for seed in seeds {
        h.bytes(seed);
    }
    if let Some(app) = oracle.app(name) {
        for site in &app.sites {
            h.str(&site.site);
            h.str(site.truth.token());
            h.str(&site.shape);
            for field in &site.fields {
                h.str(field);
            }
            for &g in &site.guards {
                h.bytes(&g.to_le_bytes());
            }
            h.bytes(&site.overflow_threshold.unwrap_or(u64::MAX).to_le_bytes());
        }
    }
    h.hex()
}

/// Folds a config and per-app hashes into the suite identity.
fn fold_suite_id(cfg: &SynthConfig, app_hashes: &[String]) -> String {
    let mut h = Fnv64::new();
    h.str(&config_canon(cfg));
    for a in app_hashes {
        h.str(a);
    }
    format!("suite-{}", h.hex())
}

impl SuiteManifest {
    /// Builds the manifest of a forged suite. Deterministic: equal suites
    /// produce byte-identical manifests (and therefore equal suite IDs)
    /// in every process.
    #[must_use]
    pub fn from_suite(config: &SynthConfig, suite: &ForgedSuite) -> SuiteManifest {
        let apps: Vec<AppManifest> = suite
            .apps
            .iter()
            .map(|app| AppManifest {
                name: app.name.clone(),
                program: pretty::program(&app.program),
                format: app.format.clone(),
                seeds: app.seeds.clone(),
                content_hash: String::new(), // assemble() fills it in
            })
            .collect();
        SuiteManifest::assemble(config.clone(), apps, suite.oracle.clone())
    }

    /// Assembles a manifest from parts, recomputing every app's content
    /// hash and the suite ID from the content actually provided. This is
    /// the incremental-growth entry point: corpus `grow` concatenates
    /// stored app images with freshly forged ones and reassembles.
    #[must_use]
    pub fn assemble(
        config: SynthConfig,
        mut apps: Vec<AppManifest>,
        oracle: SynthOracle,
    ) -> SuiteManifest {
        for app in &mut apps {
            app.content_hash = app_hash(&app.name, &app.program, &app.format, &app.seeds, &oracle);
        }
        let hashes: Vec<String> = apps.iter().map(|a| a.content_hash.clone()).collect();
        SuiteManifest {
            suite_id: fold_suite_id(&config, &hashes),
            config,
            apps,
            oracle,
        }
    }

    /// Reconstructs the runnable suite: every stored program is parsed,
    /// checked to be a pretty-printer fixpoint, and re-hashed against the
    /// recorded content hash; finally the suite ID itself is recomputed.
    ///
    /// # Errors
    ///
    /// Any parse failure, canonicality drift, hash mismatch, or app/oracle
    /// skew is a [`ManifestError`].
    pub fn to_suite(&self) -> Result<ForgedSuite, ManifestError> {
        if self.apps.len() != self.oracle.apps.len() {
            let app = self
                .apps
                .iter()
                .map(|a| &a.name)
                .find(|n| self.oracle.app(n).is_none())
                .or_else(|| {
                    self.oracle
                        .apps
                        .iter()
                        .map(|a| &a.app)
                        .find(|n| !self.apps.iter().any(|x| &&x.name == n))
                })
                .cloned()
                .unwrap_or_default();
            return Err(ManifestError::OracleSkew { app });
        }
        let mut apps = Vec::with_capacity(self.apps.len());
        let mut hashes = Vec::with_capacity(self.apps.len());
        for entry in &self.apps {
            if self.oracle.app(&entry.name).is_none() {
                return Err(ManifestError::OracleSkew {
                    app: entry.name.clone(),
                });
            }
            let program = parse(&entry.program).map_err(|error| ManifestError::Parse {
                app: entry.name.clone(),
                error,
            })?;
            if pretty::program(&program) != entry.program {
                return Err(ManifestError::NotCanonical {
                    app: entry.name.clone(),
                });
            }
            let computed = app_hash(
                &entry.name,
                &entry.program,
                &entry.format,
                &entry.seeds,
                &self.oracle,
            );
            if computed != entry.content_hash {
                return Err(ManifestError::HashMismatch {
                    app: entry.name.clone(),
                    stored: entry.content_hash.clone(),
                    computed,
                });
            }
            hashes.push(computed);
            let mut app = CampaignApp::new(
                entry.name.clone(),
                program,
                entry.format.clone(),
                entry.seeds.first().cloned().unwrap_or_default(),
            );
            for seed in entry.seeds.iter().skip(1) {
                app = app.with_seed(seed.clone());
            }
            apps.push(app);
        }
        let computed = fold_suite_id(&self.config, &hashes);
        if computed != self.suite_id {
            return Err(ManifestError::SuiteIdMismatch {
                stored: self.suite_id.clone(),
                computed,
            });
        }
        Ok(ForgedSuite {
            apps,
            oracle: self.oracle.clone(),
        })
    }
}

impl ForgedSuite {
    /// This suite's manifest (see [`SuiteManifest::from_suite`]).
    #[must_use]
    pub fn manifest(&self, config: &SynthConfig) -> SuiteManifest {
        SuiteManifest::from_suite(config, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{forge, SynthConfig};
    use diode_engine::CampaignSpec;

    #[test]
    fn manifest_roundtrips_and_ids_are_stable() {
        let cfg = SynthConfig::default().with_apps(3);
        let suite = forge(&cfg);
        let m1 = suite.manifest(&cfg);
        let m2 = forge(&cfg).manifest(&cfg);
        assert_eq!(m1, m2, "equal suites build byte-identical manifests");
        assert!(m1.suite_id.starts_with("suite-"), "{}", m1.suite_id);

        let back = m1.to_suite().expect("manifest loads");
        assert_eq!(back.oracle, suite.oracle);
        let again = back.manifest(&cfg);
        assert_eq!(again, m1, "load → manifest is a fixpoint");
        // The reconstructed suite runs identically.
        let a = CampaignSpec::from_corpus(&suite).run();
        let b = CampaignSpec::from_corpus(&back).run();
        assert_eq!(a.outcome_fingerprint(), b.outcome_fingerprint());
    }

    #[test]
    fn different_content_different_id() {
        let cfg = SynthConfig::default().with_apps(2);
        let other = cfg.clone().with_rng_seed(7);
        let a = forge(&cfg).manifest(&cfg);
        let b = forge(&other).manifest(&other);
        assert_ne!(a.suite_id, b.suite_id);
    }

    #[test]
    fn tampering_is_detected_on_load() {
        let cfg = SynthConfig::default().with_apps(1);
        let suite = forge(&cfg);
        // Flip a seed byte: content hash no longer matches.
        let mut m = suite.manifest(&cfg);
        m.apps[0].seeds[0][4] ^= 0xFF;
        assert!(matches!(
            m.to_suite(),
            Err(ManifestError::HashMismatch { .. })
        ));
        // Non-canonical (but parseable) program text.
        let mut m = suite.manifest(&cfg);
        m.apps[0].program.push_str("\nfn extra() {\n    skip;\n}\n");
        assert!(matches!(
            m.to_suite(),
            Err(ManifestError::NotCanonical { .. }) | Err(ManifestError::Parse { .. })
        ));
        // Unparseable program text.
        let mut m = suite.manifest(&cfg);
        m.apps[0].program = "fn main( {".to_string();
        assert!(matches!(m.to_suite(), Err(ManifestError::Parse { .. })));
        // Stale suite id.
        let mut m = suite.manifest(&cfg);
        m.suite_id = "suite-0000000000000000".to_string();
        assert!(matches!(
            m.to_suite(),
            Err(ManifestError::SuiteIdMismatch { .. })
        ));
        // Oracle skew.
        let mut m = suite.manifest(&cfg);
        m.oracle.apps.clear();
        assert!(matches!(
            m.to_suite(),
            Err(ManifestError::OracleSkew { .. })
        ));
    }
}
