//! Forge configuration: how many scenarios, how deep the guard chains,
//! which field widths and arithmetic shapes, and the class mix.

use rand::{rngs::StdRng, Rng};

use crate::oracle::GroundTruth;

/// Width (and endianness) of a planted input field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthClass {
    /// A single byte.
    U8,
    /// Big-endian 16-bit field (PNG-style).
    U16Be,
    /// Little-endian 16-bit field (RIFF-style).
    U16Le,
    /// Big-endian 32-bit field.
    U32Be,
    /// Little-endian 32-bit field.
    U32Le,
}

impl WidthClass {
    /// Field length in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            WidthClass::U8 => 1,
            WidthClass::U16Be | WidthClass::U16Le => 2,
            WidthClass::U32Be | WidthClass::U32Le => 4,
        }
    }

    /// Largest value the field can hold.
    #[must_use]
    pub fn field_max(self) -> u64 {
        match self {
            WidthClass::U8 => 0xFF,
            WidthClass::U16Be | WidthClass::U16Le => 0xFFFF,
            WidthClass::U32Be | WidthClass::U32Le => 0xFFFF_FFFF,
        }
    }

    /// The 16-bit class with this class's endianness (big for [`U8`]).
    ///
    /// [`U8`]: WidthClass::U8
    #[must_use]
    pub fn narrowed(self) -> WidthClass {
        match self {
            WidthClass::U32Be => WidthClass::U16Be,
            WidthClass::U32Le => WidthClass::U16Le,
            other => other,
        }
    }

    /// The 32-bit class with this class's endianness (big for [`U8`]).
    ///
    /// [`U8`]: WidthClass::U8
    #[must_use]
    pub fn widened(self) -> WidthClass {
        match self {
            WidthClass::U8 | WidthClass::U16Be => WidthClass::U32Be,
            WidthClass::U16Le => WidthClass::U32Le,
            wide => wide,
        }
    }

    /// Stable textual token, used by corpus manifests.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            WidthClass::U8 => "u8",
            WidthClass::U16Be => "u16be",
            WidthClass::U16Le => "u16le",
            WidthClass::U32Be => "u32be",
            WidthClass::U32Le => "u32le",
        }
    }

    /// Parses a [`token`](WidthClass::token).
    #[must_use]
    pub fn from_token(s: &str) -> Option<WidthClass> {
        Some(match s {
            "u8" => WidthClass::U8,
            "u16be" => WidthClass::U16Be,
            "u16le" => WidthClass::U16Le,
            "u32be" => WidthClass::U32Be,
            "u32le" => WidthClass::U32Le,
            _ => return None,
        })
    }
}

/// Arithmetic shape of a planted allocation-size computation. All size
/// arithmetic runs at 32 bits (the x86-32 `malloc` width of the paper's
/// benchmarks), so "overflow" below always means the true mathematical
/// value reaching 2³².
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// `v * c` — element count times element size (the common case).
    MulConst,
    /// `v + c` — field plus header overhead (CVE-2008-2430's shape).
    AddConst,
    /// `(v1 * v2) * c` — two-dimensional extent (Figure 2's `w * h * 4`).
    MulFields,
    /// `v << k` — shift-scaled count.
    ShlConst,
    /// `v * c + d` — scaled count plus header overhead.
    MulAddConst,
}

impl ShapeClass {
    /// Stable textual token, used by corpus manifests.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            ShapeClass::MulConst => "mul-const",
            ShapeClass::AddConst => "add-const",
            ShapeClass::MulFields => "mul-fields",
            ShapeClass::ShlConst => "shl-const",
            ShapeClass::MulAddConst => "mul-add-const",
        }
    }

    /// Parses a [`token`](ShapeClass::token).
    #[must_use]
    pub fn from_token(s: &str) -> Option<ShapeClass> {
        Some(match s {
            "mul-const" => ShapeClass::MulConst,
            "add-const" => ShapeClass::AddConst,
            "mul-fields" => ShapeClass::MulFields,
            "shl-const" => ShapeClass::ShlConst,
            "mul-add-const" => ShapeClass::MulAddConst,
            _ => return None,
        })
    }
}

/// Relative weights of the three ground-truth classes when planting sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMix {
    /// Weight of overflow-exposable sites.
    pub exposable: u32,
    /// Weight of guard-prevented sites.
    pub guard_prevented: u32,
    /// Weight of target-unsatisfiable sites.
    pub target_unsat: u32,
}

impl ClassMix {
    /// Draws a class according to the weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub(crate) fn draw(&self, rng: &mut StdRng) -> GroundTruth {
        let total = self.exposable + self.guard_prevented + self.target_unsat;
        assert!(total > 0, "ClassMix weights must not all be zero");
        let r = rng.gen_range(0u32..total);
        if r < self.exposable {
            GroundTruth::Exposable
        } else if r < self.exposable + self.guard_prevented {
            GroundTruth::GuardPrevented
        } else {
            GroundTruth::TargetUnsat
        }
    }
}

impl Default for ClassMix {
    fn default() -> Self {
        ClassMix {
            exposable: 2,
            guard_prevented: 1,
            target_unsat: 1,
        }
    }
}

/// Everything that determines a forged suite. Two equal configs forge
/// byte-identical suites: all randomness flows from [`rng_seed`].
///
/// [`rng_seed`]: SynthConfig::rng_seed
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of applications to forge.
    pub apps: usize,
    /// Minimum planted allocation sites per application.
    pub min_sites: usize,
    /// Maximum planted allocation sites per application (inclusive).
    pub max_sites: usize,
    /// Guard-chain depth: sanity checks planted in front of each site.
    /// With depth 0 no guards are planted, so guard-prevented sites are
    /// remapped to exposable ones.
    pub branch_depth: usize,
    /// Field width classes to draw from.
    pub widths: Vec<WidthClass>,
    /// Arithmetic shapes to draw from.
    pub shapes: Vec<ShapeClass>,
    /// Ground-truth class weights.
    pub mix: ClassMix,
    /// Protect the header with a CRC-32 (field region checksummed, fixup
    /// registered, `crc32_ok` check planted) so reconstruction is
    /// exercised on every generated input.
    pub checksum: bool,
    /// Plant bounded field-dependent skim loops (blocking checks à la
    /// `png_memset`) in front of sites, exercising the enforcement loop's
    /// blocking-check skipping.
    pub blocking_loops: bool,
    /// Per-site processing-work loop iterations: each planted site is
    /// preceded by an input-independent arithmetic loop of this many
    /// iterations, modelling the parsing/decoding work real applications
    /// do between allocation sites (what makes re-executing a prefix
    /// expensive, and prefix snapshots worthwhile). `0` (the default)
    /// plants nothing and keeps previously forged suites byte-identical.
    pub site_work: u32,
    /// Seed inputs per application (each becomes its own campaign unit).
    pub seeds_per_app: usize,
    /// Master RNG seed.
    pub rng_seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            apps: 10,
            min_sites: 2,
            max_sites: 4,
            branch_depth: 3,
            widths: vec![
                WidthClass::U8,
                WidthClass::U16Be,
                WidthClass::U16Le,
                WidthClass::U32Be,
                WidthClass::U32Le,
            ],
            shapes: vec![
                ShapeClass::MulConst,
                ShapeClass::AddConst,
                ShapeClass::MulFields,
                ShapeClass::ShlConst,
                ShapeClass::MulAddConst,
            ],
            mix: ClassMix::default(),
            checksum: true,
            blocking_loops: true,
            site_work: 0,
            seeds_per_app: 1,
            rng_seed: 0xD10D_E5EE,
        }
    }
}

impl SynthConfig {
    /// This config with a different number of forged applications.
    #[must_use]
    pub fn with_apps(mut self, apps: usize) -> Self {
        self.apps = apps;
        self
    }

    /// This config with a different guard-chain depth.
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.branch_depth = depth;
        self
    }

    /// This config with a different master RNG seed.
    #[must_use]
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}
