//! The ground-truth oracle: what each planted site's classification is,
//! known **by construction** from the chosen field widths, guard limits,
//! and size arithmetic.

use std::fmt;

/// The by-construction classification of a planted allocation site.
///
/// The forge derives it from the *true* (unbounded) value of the size
/// computation at the extreme points of the input space (all size shapes
/// are monotone in each field):
///
/// * [`Exposable`] — some guard-passing input drives the true size to 2³²
///   or beyond, so the 32-bit computation wraps and the planted probe
///   loop faults. DIODE must report [`SiteOutcome::Exposed`].
/// * [`GuardPrevented`] — the raw fields could overflow the computation,
///   but every guard-passing input keeps the true size below 2³². DIODE
///   must report [`SiteOutcome::Prevented`].
/// * [`TargetUnsat`] — no field values at all can overflow the
///   computation (the forge additionally picks parameters so the static
///   bound analysis discharges every overflow atom). DIODE must report
///   [`SiteOutcome::TargetUnsat`].
///
/// [`Exposable`]: GroundTruth::Exposable
/// [`GuardPrevented`]: GroundTruth::GuardPrevented
/// [`TargetUnsat`]: GroundTruth::TargetUnsat
/// [`SiteOutcome::Exposed`]: diode_core::SiteOutcome::Exposed
/// [`SiteOutcome::Prevented`]: diode_core::SiteOutcome::Prevented
/// [`SiteOutcome::TargetUnsat`]: diode_core::SiteOutcome::TargetUnsat
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroundTruth {
    /// An overflow-triggering, guard-passing input exists.
    Exposable,
    /// Sanity checks prevent every overflow.
    GuardPrevented,
    /// The size computation cannot overflow for any input.
    TargetUnsat,
}

impl GroundTruth {
    /// Stable textual token, used by corpus oracles (matches `Display`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            GroundTruth::Exposable => "exposable",
            GroundTruth::GuardPrevented => "guard-prevented",
            GroundTruth::TargetUnsat => "target-unsat",
        }
    }

    /// Parses a [`token`](GroundTruth::token).
    #[must_use]
    pub fn from_token(s: &str) -> Option<GroundTruth> {
        Some(match s {
            "exposable" => GroundTruth::Exposable,
            "guard-prevented" => GroundTruth::GuardPrevented,
            "target-unsat" => GroundTruth::TargetUnsat,
            _ => return None,
        })
    }
}

impl fmt::Display for GroundTruth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Ground truth for one planted allocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedSite {
    /// Site name as it appears in the program (`genN.c@L` style).
    pub site: String,
    /// The by-construction classification.
    pub truth: GroundTruth,
    /// Format paths of the input fields feeding the size computation.
    pub fields: Vec<String>,
    /// Human-readable size arithmetic, e.g. `v * 131072`.
    pub shape: String,
    /// Guard limits planted in front of the site (each `if v > L` rejects
    /// the input); the effective bound is their minimum.
    pub guards: Vec<u64>,
    /// Smallest driver-field value whose true size reaches 2³² (with any
    /// secondary field at its maximum); `None` when no value overflows.
    pub overflow_threshold: Option<u64>,
}

/// Ground truth for one forged application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppOracle {
    /// The application's campaign name.
    pub app: String,
    /// Planted sites, in program order.
    pub sites: Vec<PlantedSite>,
}

impl AppOracle {
    /// The planted site with the given name.
    #[must_use]
    pub fn site(&self, name: &str) -> Option<&PlantedSite> {
        self.sites.iter().find(|s| s.site == name)
    }
}

/// The full oracle for a forged suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthOracle {
    /// Per-application ground truth, in suite order.
    pub apps: Vec<AppOracle>,
}

impl SynthOracle {
    /// The oracle for an application name.
    #[must_use]
    pub fn app(&self, name: &str) -> Option<&AppOracle> {
        self.apps.iter().find(|a| a.app == name)
    }

    /// Total planted sites across the suite.
    #[must_use]
    pub fn total_sites(&self) -> usize {
        self.apps.iter().map(|a| a.sites.len()).sum()
    }

    /// Expected whole-suite counts, Table 1 style:
    /// `(total, exposable, unsat, prevented)`.
    #[must_use]
    pub fn expected_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for site in self.apps.iter().flat_map(|a| &a.sites) {
            counts.0 += 1;
            match site.truth {
                GroundTruth::Exposable => counts.1 += 1,
                GroundTruth::TargetUnsat => counts.2 += 1,
                GroundTruth::GuardPrevented => counts.3 += 1,
            }
        }
        counts
    }

    /// Expected counts for one application, `(total, exposable, unsat,
    /// prevented)`; zeros when the app is unknown.
    #[must_use]
    pub fn expected_counts_for(&self, app: &str) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        if let Some(a) = self.app(app) {
            for site in &a.sites {
                counts.0 += 1;
                match site.truth {
                    GroundTruth::Exposable => counts.1 += 1,
                    GroundTruth::TargetUnsat => counts.2 += 1,
                    GroundTruth::GuardPrevented => counts.3 += 1,
                }
            }
        }
        counts
    }
}
