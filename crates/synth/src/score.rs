//! Grading campaign reports against the forge oracle: recall, precision,
//! and exact three-way classification accuracy.

use std::fmt;

use diode_core::SiteOutcome;
use diode_engine::CampaignReport;

use crate::oracle::{GroundTruth, SynthOracle};

/// One graded disagreement between the oracle and a campaign report.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Application name.
    pub app: String,
    /// Seed index of the campaign unit.
    pub seed_index: usize,
    /// Site name.
    pub site: String,
    /// What the oracle says the site is.
    pub expected: GroundTruth,
    /// What the campaign reported (human-readable).
    pub observed: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}/{}: expected {}, observed {}",
            self.app, self.seed_index, self.site, self.expected, self.observed
        )
    }
}

/// The grade of a campaign report against a [`SynthOracle`].
///
/// "Positive" means *exposed*: recall asks how many truly exposable sites
/// the campaign exposed, precision asks how many exposed findings are
/// truly exposable. `exact` additionally demands the full three-way
/// classification (exposed / prevented / unsat) to match the oracle.
#[derive(Debug, Clone, Default)]
pub struct ScoreCard {
    /// Planted (site, unit) pairs graded.
    pub graded: usize,
    /// Exposable sites reported exposed.
    pub true_pos: usize,
    /// Non-exposable sites reported exposed.
    pub false_pos: usize,
    /// Exposable sites not reported exposed.
    pub false_neg: usize,
    /// Non-exposable sites not reported exposed.
    pub true_neg: usize,
    /// Sites whose three-way classification matches the oracle exactly.
    pub exact: usize,
    /// Every graded disagreement (three-way, so stricter than FP+FN).
    pub mismatches: Vec<Mismatch>,
}

impl ScoreCard {
    /// The grading convention for every rate on this type: `num / den`,
    /// defaulting to 1.0 on an empty denominator (nothing to miss means
    /// nothing was missed). Public so derived summaries (e.g. the corpus
    /// witness record) grade by the identical rule.
    #[must_use]
    pub fn ratio(num: usize, den: usize) -> f64 {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    }

    /// `TP / (TP + FN)`; 1.0 when nothing is exposable.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ScoreCard::ratio(self.true_pos, self.true_pos + self.false_neg)
    }

    /// `TP / (TP + FP)`; 1.0 when nothing was reported exposed.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ScoreCard::ratio(self.true_pos, self.true_pos + self.false_pos)
    }

    /// Fraction of graded sites with an exact three-way match.
    #[must_use]
    pub fn exact_rate(&self) -> f64 {
        ScoreCard::ratio(self.exact, self.graded)
    }

    /// True when every graded site matches the oracle exactly.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.graded > 0 && self.exact == self.graded && self.mismatches.is_empty()
    }
}

impl fmt::Display for ScoreCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recall {:.3}, precision {:.3}, exact {}/{}",
            self.recall(),
            self.precision(),
            self.exact,
            self.graded
        )
    }
}

/// Grades a campaign report against the oracle.
///
/// Every unit whose app name appears in the oracle is graded against that
/// app's planted sites (units from non-forged apps are ignored, so mixed
/// campaigns grade only their forged part). A planted site missing from a
/// unit's report counts as a mismatch — and as a false negative when it
/// was exposable.
#[must_use]
pub fn score(report: &CampaignReport, oracle: &SynthOracle) -> ScoreCard {
    let mut card = ScoreCard::default();
    for unit in &report.units {
        let Some(app) = oracle.app(&unit.app) else {
            continue;
        };
        for planted in &app.sites {
            card.graded += 1;
            let record = unit.sites.iter().find(|s| s.report.site == planted.site);
            let observed = record.map(|r| &r.report.outcome);
            let exposed = matches!(observed, Some(SiteOutcome::Exposed(_)));
            let exposable = planted.truth == GroundTruth::Exposable;
            match (exposable, exposed) {
                (true, true) => card.true_pos += 1,
                (true, false) => card.false_neg += 1,
                (false, true) => card.false_pos += 1,
                (false, false) => card.true_neg += 1,
            }
            let exact = matches!(
                (planted.truth, observed),
                (GroundTruth::Exposable, Some(SiteOutcome::Exposed(_)))
                    | (GroundTruth::GuardPrevented, Some(SiteOutcome::Prevented(_)))
                    | (GroundTruth::TargetUnsat, Some(SiteOutcome::TargetUnsat))
            );
            if exact {
                card.exact += 1;
            } else {
                card.mismatches.push(Mismatch {
                    app: unit.app.clone(),
                    seed_index: unit.seed_index,
                    site: planted.site.clone(),
                    expected: planted.truth,
                    observed: match observed {
                        None => "site not analyzed".to_string(),
                        Some(SiteOutcome::Exposed(b)) => {
                            format!("exposed ({} enforced)", b.enforced)
                        }
                        Some(SiteOutcome::TargetUnsat) => "target-unsat".to_string(),
                        Some(SiteOutcome::Prevented(r)) => format!("prevented ({r:?})"),
                        Some(SiteOutcome::Unknown) => "unknown".to_string(),
                    },
                });
            }
        }
    }
    card
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_default_to_one_on_empty_denominators() {
        let card = ScoreCard::default();
        assert_eq!(card.recall(), 1.0);
        assert_eq!(card.precision(), 1.0);
        assert_eq!(card.exact_rate(), 1.0);
        assert!(!card.is_perfect(), "nothing graded is not perfection");
    }

    #[test]
    fn display_is_compact() {
        let card = ScoreCard {
            graded: 4,
            true_pos: 2,
            false_neg: 0,
            false_pos: 0,
            true_neg: 2,
            exact: 4,
            mismatches: vec![],
        };
        assert_eq!(card.to_string(), "recall 1.000, precision 1.000, exact 4/4");
        assert!(card.is_perfect());
    }
}
