//! The generator: [`SynthConfig`] → [`ForgedSuite`].
//!
//! Programs are assembled as ASTs through `diode_lang::build`, so every
//! forged scenario is well-formed by construction; the matching seed and
//! [`FormatDesc`] are built together through [`SeedBuilder`], so field
//! offsets in the program and the format can never drift apart.

use diode_engine::CampaignApp;
use diode_format::{FormatDesc, SeedBuilder};
use diode_lang::build::{exp, ProgramBuilder};
use diode_lang::{Aexp, Block, ProcId, Program, Stmt, Symbol};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::config::{ShapeClass, SynthConfig, WidthClass};
use crate::oracle::{AppOracle, GroundTruth, PlantedSite, SynthOracle};

/// First size value that no longer fits the 32-bit allocation argument.
const OVERFLOW: u128 = 1 << 32;
/// The interpreter's single-allocation limit; seed-time sizes stay below
/// it so every seed run allocates successfully.
const ALLOC_LIMIT: u128 = 1 << 31;
/// Length of the (unnamed) magic prefix before the field region.
const MAGIC_LEN: u32 = 4;

/// A forged benchmark suite: campaign-ready workloads plus the
/// by-construction ground truth for every planted site.
#[derive(Debug)]
pub struct ForgedSuite {
    /// One campaign workload per forged application.
    pub apps: Vec<CampaignApp>,
    /// Ground truth for every planted site.
    pub oracle: SynthOracle,
}

impl ForgedSuite {
    /// Fresh campaign workloads (cloned, so the suite can be run several
    /// times — e.g. once parallel and once sequential).
    #[must_use]
    pub fn campaign_apps(&self) -> Vec<CampaignApp> {
        self.apps.clone()
    }

    /// Total planted sites across the suite.
    #[must_use]
    pub fn total_sites(&self) -> usize {
        self.oracle.total_sites()
    }
}

impl diode_engine::CorpusSuite for ForgedSuite {
    fn campaign_apps(&self) -> Vec<CampaignApp> {
        ForgedSuite::campaign_apps(self)
    }
}

/// Concrete size arithmetic of one planted site.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// `v * c`
    MulConst(u64),
    /// `v + c`
    AddConst(u64),
    /// `(v1 * v2) * c`
    MulFields(u64),
    /// `v << k`
    ShlConst(u32),
    /// `v * c + d`
    MulAddConst(u64, u64),
}

impl Shape {
    fn n_fields(self) -> usize {
        match self {
            Shape::MulFields(_) => 2,
            _ => 1,
        }
    }

    /// The true (unbounded) value of the size computation.
    fn true_size(self, vals: &[u64]) -> u128 {
        let v = u128::from(vals[0]);
        match self {
            Shape::MulConst(c) => v * u128::from(c),
            Shape::AddConst(c) => v + u128::from(c),
            Shape::MulFields(c) => v * u128::from(vals[1]) * u128::from(c),
            Shape::ShlConst(k) => v << k,
            Shape::MulAddConst(c, d) => v * u128::from(c) + u128::from(d),
        }
    }

    /// Smallest driver-field value whose true size reaches 2³², with any
    /// secondary field at `secondary_max`. `None` when `true_size` cannot
    /// reach 2³² for any driver value (shape-dependent callers check the
    /// field max separately).
    fn overflow_threshold(self, secondary_max: u64) -> u64 {
        let div_ceil = |a: u128, b: u128| u64::try_from(a.div_ceil(b)).unwrap_or(u64::MAX);
        match self {
            Shape::MulConst(c) => div_ceil(OVERFLOW, u128::from(c)),
            Shape::AddConst(c) => u64::try_from(OVERFLOW - u128::from(c)).expect("c < 2^32"),
            Shape::MulFields(c) => div_ceil(OVERFLOW, u128::from(c) * u128::from(secondary_max)),
            Shape::ShlConst(k) => 1u64 << (32 - k),
            Shape::MulAddConst(c, d) => div_ceil(OVERFLOW - u128::from(d), u128::from(c)),
        }
    }

    fn describe(self) -> String {
        match self {
            Shape::MulConst(c) => format!("v * {c}"),
            Shape::AddConst(c) => format!("v + {c}"),
            Shape::MulFields(c) => format!("(v1 * v2) * {c}"),
            Shape::ShlConst(k) => format!("v << {k}"),
            Shape::MulAddConst(c, d) => format!("v * {c} + {d}"),
        }
    }
}

/// One planted field: width class, absolute input offset, format path.
#[derive(Debug, Clone)]
struct FieldSpec {
    width: WidthClass,
    offset: u32,
    path: String,
}

/// Everything decided about one planted site before code generation.
#[derive(Debug)]
struct SitePlan {
    class: GroundTruth,
    shape: Shape,
    fields: Vec<FieldSpec>,
    /// Guard limits on the driver field (`if v > L { error }` each).
    guards: Vec<u64>,
    blocking: bool,
    site: String,
}

impl SitePlan {
    /// The largest driver-field value every guard accepts.
    fn allowed_max(&self) -> u64 {
        self.guards
            .iter()
            .copied()
            .min()
            .unwrap_or_else(|| self.fields[0].width.field_max())
    }
}

/// Draws uniformly from the inclusive range `[lo, hi]`.
fn draw(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..hi + 1)
    }
}

/// Picks a shape and field widths realizing the intended class.
///
/// For [`GroundTruth::TargetUnsat`] the parameters are chosen so the
/// static bound analysis of `overflow_condition` discharges *every*
/// overflow atom (β folds to `false`); for the other classes they are
/// chosen so an in-range driver value overflows.
fn pick_shape(rng: &mut StdRng, cfg: &SynthConfig, class: GroundTruth) -> (Shape, Vec<WidthClass>) {
    let shape_class = cfg.shapes[rng.gen_range(0..cfg.shapes.len())];
    let w = cfg.widths[rng.gen_range(0..cfg.widths.len())];
    let overflowable = class != GroundTruth::TargetUnsat;
    match shape_class {
        ShapeClass::MulConst => {
            if overflowable {
                let c = match w.bytes() {
                    1 => draw(rng, 1 << 25, (1 << 31) - 8193),
                    2 => draw(rng, 1 << 17, 1 << 24),
                    _ => draw(rng, 2, 65536),
                };
                (Shape::MulConst(c), vec![w])
            } else {
                // field_max * c ≤ 2³²−1 for both u8 and u16 fields.
                (Shape::MulConst(draw(rng, 2, 65536)), vec![w.narrowed()])
            }
        }
        ShapeClass::AddConst => {
            if overflowable {
                (Shape::AddConst(draw(rng, 2, 65536)), vec![w.widened()])
            } else {
                (Shape::AddConst(draw(rng, 2, 4096)), vec![w.narrowed()])
            }
        }
        ShapeClass::MulFields => {
            let narrow = w.narrowed();
            if overflowable {
                let c = match narrow.bytes() {
                    1 => draw(rng, 1 << 18, 1 << 24),
                    _ => draw(rng, 2, 64),
                };
                (Shape::MulFields(c), vec![narrow, narrow])
            } else {
                // u16·u16 peaks at 65535² = 4294836225 < 2³²: the paper's
                // w*h shape is statically safe without the ×4.
                (Shape::MulFields(1), vec![narrow, narrow])
            }
        }
        ShapeClass::ShlConst => {
            if overflowable {
                let k = match w.bytes() {
                    1 => draw(rng, 25, 30),
                    2 => draw(rng, 17, 24),
                    _ => draw(rng, 1, 16),
                };
                (Shape::ShlConst(k as u32), vec![w])
            } else {
                let narrow = w.narrowed();
                let k = match narrow.bytes() {
                    1 => draw(rng, 1, 24),
                    _ => draw(rng, 1, 16),
                };
                (Shape::ShlConst(k as u32), vec![narrow])
            }
        }
        ShapeClass::MulAddConst => {
            if overflowable {
                let (c, d) = match w.bytes() {
                    1 => (draw(rng, 1 << 25, (1 << 31) - 8193), draw(rng, 1, 4096)),
                    2 => (draw(rng, 1 << 17, 1 << 24), draw(rng, 1, 65536)),
                    _ => (draw(rng, 2, 65536), draw(rng, 1, 65536)),
                };
                (Shape::MulAddConst(c, d), vec![w])
            } else {
                // field_max·c + d ≤ 65535·65535 + 4096 < 2³².
                (
                    Shape::MulAddConst(draw(rng, 2, 65535), draw(rng, 1, 4096)),
                    vec![w.narrowed()],
                )
            }
        }
    }
}

/// Plants the guard chain realizing the intended class: the binding guard
/// (minimum limit) decides reachability of the overflow threshold, the
/// rest are looser checks anywhere above it.
fn plan_guards(
    rng: &mut StdRng,
    class: GroundTruth,
    depth: usize,
    threshold: u64,
    field_max: u64,
) -> Vec<u64> {
    let binding = match class {
        GroundTruth::Exposable => {
            if depth == 0 {
                return Vec::new();
            }
            draw(rng, threshold, field_max)
        }
        GroundTruth::GuardPrevented => draw(rng, 1, threshold - 1),
        GroundTruth::TargetUnsat => {
            return (0..depth).map(|_| draw(rng, 8, field_max)).collect();
        }
    };
    let mut guards = vec![binding];
    for _ in 1..depth {
        guards.push(draw(rng, binding, field_max));
    }
    // The binding guard's position in the chain is immaterial; vary it.
    let swap = rng.gen_range(0..guards.len());
    guards.swap(0, swap);
    guards
}

/// Picks a clean seed value for the driver field: passes every guard,
/// never overflows, and keeps the seed-time allocation under the
/// interpreter's limit.
fn seed_value(rng: &mut StdRng, shape: Shape, allowed_max: u64, secondary: &[u64]) -> u64 {
    let cap = allowed_max.clamp(1, 8);
    let mut v = draw(rng, 1, cap);
    loop {
        let mut vals = vec![v];
        vals.extend_from_slice(secondary);
        if shape.true_size(&vals) < ALLOC_LIMIT {
            return v;
        }
        assert!(v > 1, "forge invariant: seed size at v=1 stays under 2^31");
        v /= 2;
    }
}

/// Per-app header layout derived from the site plans.
struct Layout {
    /// Field region length (bytes after the magic).
    hdr_len: u32,
    /// Offset of the CRC-32, when the checksum is on.
    crc_off: Option<u32>,
}

fn assign_offsets(plans: &mut [SitePlan], checksum: bool) -> Layout {
    let mut off = MAGIC_LEN;
    for plan in plans.iter_mut() {
        for field in &mut plan.fields {
            field.offset = off;
            off += field.width.bytes();
        }
    }
    let hdr_len = off - MAGIC_LEN;
    Layout {
        hdr_len,
        crc_off: checksum.then_some(off),
    }
}

/// Emits the field-loader helper procedure for multi-byte widths.
fn define_loader(b: &mut ProgramBuilder, id: ProcId, bytes: u32, big_endian: bool) {
    let p = b.var("p");
    let byte_at = |i: u32| {
        exp::zext(
            32,
            exp::in_byte(if i == 0 {
                exp::v(p)
            } else {
                exp::add(exp::v(p), exp::c32(i))
            }),
        )
    };
    let mut e = byte_at(0);
    if big_endian {
        for i in 1..bytes {
            e = exp::or(exp::shl(e, exp::c32(8)), byte_at(i));
        }
    } else {
        for i in 1..bytes {
            e = exp::or(e, exp::shl(byte_at(i), exp::c32(8 * i)));
        }
    }
    let ret = b.ret(Some(e));
    b.define_proc(id, vec![p], Block(vec![ret]));
}

/// The 32-bit allocation-size expression for a site.
fn size_expr(shape: Shape, vars: &[Symbol]) -> Aexp {
    let v = exp::v(vars[0]);
    match shape {
        Shape::MulConst(c) => exp::mul(v, exp::c32(c as u32)),
        Shape::AddConst(c) => exp::add(v, exp::c32(c as u32)),
        Shape::MulFields(c) => exp::mul(exp::mul(v, exp::v(vars[1])), exp::c32(c as u32)),
        Shape::ShlConst(k) => exp::shl(v, exp::c32(k)),
        Shape::MulAddConst(c, d) => exp::add(exp::mul(v, exp::c32(c as u32)), exp::c32(d as u32)),
    }
}

/// The 64-bit *true extent* expression, used by the probe loop to touch
/// the allocation across its full logical size (the detection mechanism
/// of §4.6: wrapped allocations fault under the probe).
fn true_extent_expr(shape: Shape, vars: &[Symbol]) -> Aexp {
    let v = exp::zext(64, exp::v(vars[0]));
    match shape {
        Shape::MulConst(c) => exp::mul(v, exp::c64(c)),
        Shape::AddConst(c) => exp::add(v, exp::c64(c)),
        Shape::MulFields(c) => exp::mul(exp::mul(v, exp::zext(64, exp::v(vars[1]))), exp::c64(c)),
        Shape::ShlConst(k) => exp::shl(v, exp::c64(u64::from(k))),
        Shape::MulAddConst(c, d) => exp::add(exp::mul(v, exp::c64(c)), exp::c64(d)),
    }
}

/// Builds the whole forged program for one application.
fn build_program(app_idx: usize, plans: &[SitePlan], layout: &Layout, site_work: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.declare_proc("main");
    let be16 = b.declare_proc("be16at");
    let le16 = b.declare_proc("le16at");
    let be32 = b.declare_proc("be32at");
    let le32 = b.declare_proc("le32at");
    define_loader(&mut b, be16, 2, true);
    define_loader(&mut b, le16, 2, false);
    define_loader(&mut b, be32, 4, true);
    define_loader(&mut b, le32, 4, false);

    let mut stmts: Vec<Stmt> = Vec::new();

    // Magic check: structurally irrelevant branches (their bytes feed no
    // target expression), like real container magics.
    let bad_magic = b.error("bad magic");
    stmts.push(b.if_(
        exp::bor(
            exp::ne(exp::in_byte(exp::c32(0)), exp::c8(b'S')),
            exp::ne(exp::in_byte(exp::c32(1)), exp::c8(b'Y')),
        ),
        Block(vec![bad_magic]),
        Block::new(),
    ));

    // Header checksum: concretely verified, untainted, always repaired by
    // reconstruction — the Peach contract.
    if let Some(crc_off) = layout.crc_off {
        let ok = b.skip();
        let bad = b.error("header checksum mismatch");
        stmts.push(b.if_(
            exp::crc32_ok(
                exp::c32(MAGIC_LEN),
                exp::c32(layout.hdr_len),
                exp::c32(crc_off),
            ),
            Block(vec![ok]),
            Block(vec![bad]),
        ));
    }

    for (k, plan) in plans.iter().enumerate() {
        // Optional processing-work loop: input-independent arithmetic
        // standing in for the parsing/decoding work between sites. No
        // RNG draws (forged content with `site_work = 0` stays
        // byte-identical to older forges).
        if site_work > 0 {
            let acc = b.var(&format!("work{k}"));
            let j = b.var(&format!("wj{k}"));
            stmts.push(b.assign(acc, exp::c32(0x9E37_0001 ^ (k as u32))));
            stmts.push(b.assign(j, exp::c32(0)));
            let churn = b.assign(
                acc,
                exp::add(exp::mul(exp::v(acc), exp::c32(0x9E37_79B1)), exp::v(j)),
            );
            let bump = b.assign(j, exp::add(exp::v(j), exp::c32(1)));
            stmts.push(b.while_(
                exp::ult(exp::v(j), exp::c32(site_work)),
                Block(vec![churn, bump]),
            ));
        }

        // Field extraction (parser-style, via the loader helpers).
        let vars: Vec<Symbol> = plan
            .fields
            .iter()
            .enumerate()
            .map(|(j, field)| {
                let sym = b.var(&format!("v{k}_{j}"));
                let off = exp::c32(field.offset);
                let stmt = match field.width {
                    WidthClass::U8 => b.assign(sym, exp::zext(32, exp::in_byte(off))),
                    WidthClass::U16Be => b.call(Some(sym), be16, vec![off]),
                    WidthClass::U16Le => b.call(Some(sym), le16, vec![off]),
                    WidthClass::U32Be => b.call(Some(sym), be32, vec![off]),
                    WidthClass::U32Le => b.call(Some(sym), le32, vec![off]),
                };
                stmts.push(stmt);
                sym
            })
            .collect();

        // Guard chain on the driver field.
        for (g, &limit) in plan.guards.iter().enumerate() {
            let reject = b.error(&format!("s{k}: check {g} rejects field"));
            stmts.push(b.if_(
                exp::ugt(exp::v(vars[0]), exp::c32(limit as u32)),
                Block(vec![reject]),
                Block::new(),
            ));
        }

        // Optional bounded skim loop: a relevant blocking check with many
        // dynamic occurrences (pins a trip count when enforced, so the
        // Figure 7 loop must skip it — §5.4's blocking-check story).
        if plan.blocking {
            let skim = b.var(&format!("skim{k}"));
            stmts.push(b.assign(skim, exp::c32(0)));
            let step = b.assign(skim, exp::add(exp::v(skim), exp::c32(1)));
            stmts.push(b.while_(
                exp::band(
                    exp::ult(exp::v(skim), exp::v(vars[0])),
                    exp::ult(exp::v(skim), exp::c32(40)),
                ),
                Block(vec![step]),
            ));
        }

        // The planted target site.
        let buf = b.var(&format!("buf{k}"));
        stmts.push(b.alloc(&plan.site, buf, size_expr(plan.shape, &vars)).1);

        // Probe loop across the true logical extent: 16 strided accesses,
        // so a wrapped (or failed) allocation faults.
        let t = b.var(&format!("t{k}"));
        stmts.push(b.assign(t, true_extent_expr(plan.shape, &vars)));
        let p = b.var(&format!("p{k}"));
        stmts.push(b.assign(p, exp::c64(0)));
        let write = b.store(
            buf,
            exp::udiv(exp::mul(exp::v(t), exp::v(p)), exp::c64(16)),
            exp::c8(0),
        );
        let bump = b.assign(p, exp::add(exp::v(p), exp::c64(1)));
        stmts.push(b.while_(exp::ult(exp::v(p), exp::c64(16)), Block(vec![write, bump])));
        stmts.push(b.free(buf));
    }

    b.define_proc(main, vec![], Block(stmts));
    let program = b.finish().expect("forged program is well-formed");
    debug_assert_eq!(
        program.alloc_sites().len(),
        plans.len(),
        "app {app_idx}: every planted site must be collected"
    );
    program
}

/// Builds one seed input (and its format description) for an application.
fn build_seed(
    app_idx: usize,
    plans: &[SitePlan],
    values: &[Vec<u64>],
    layout: &Layout,
) -> (Vec<u8>, FormatDesc) {
    let mut sb = SeedBuilder::new();
    sb.name(format!("synth-{app_idx:03}"));
    sb.raw(&[b'S', b'Y', b'N', b'0' + (app_idx % 10) as u8]);
    for (plan, vals) in plans.iter().zip(values) {
        for (field, &val) in plan.fields.iter().zip(vals) {
            debug_assert_eq!(sb.len(), field.offset, "layout/seed drift");
            match field.width {
                WidthClass::U8 => sb.u8(&field.path, val as u8),
                WidthClass::U16Be => sb.be16(&field.path, val as u16),
                WidthClass::U16Le => sb.le16(&field.path, val as u16),
                WidthClass::U32Be => sb.be32(&field.path, val as u32),
                WidthClass::U32Le => sb.le32(&field.path, val as u32),
            };
        }
    }
    if layout.crc_off.is_some() {
        sb.reserve_crc32(MAGIC_LEN, layout.hdr_len);
    }
    sb.finish()
}

/// Forges one application: plans its sites, assigns the input layout,
/// builds the program, the seeds, and the oracle entries.
fn forge_app(cfg: &SynthConfig, app_idx: usize, rng: &mut StdRng) -> (CampaignApp, AppOracle) {
    let n_sites = draw(rng, cfg.min_sites as u64, cfg.max_sites as u64) as usize;
    let mut classes: Vec<GroundTruth> = (0..n_sites).map(|_| cfg.mix.draw(rng)).collect();
    if cfg.branch_depth == 0 {
        // No guards ⇒ nothing can be guard-prevented.
        for c in &mut classes {
            if *c == GroundTruth::GuardPrevented {
                *c = GroundTruth::Exposable;
            }
        }
    }
    if cfg.mix.exposable > 0 && !classes.contains(&GroundTruth::Exposable) {
        // Keep the recall denominator meaningful: every app plants at
        // least one exposable site when the mix asks for any.
        classes[0] = GroundTruth::Exposable;
    }

    let mut plans: Vec<SitePlan> = Vec::with_capacity(n_sites);
    for (k, &class) in classes.iter().enumerate() {
        let (shape, widths) = pick_shape(rng, cfg, class);
        let field_max = widths[0].field_max();
        let secondary_max = widths.get(1).map_or(1, |w| w.field_max());
        let threshold = shape.overflow_threshold(secondary_max);
        match class {
            GroundTruth::TargetUnsat => {
                let maxes: Vec<u64> = widths.iter().map(|w| w.field_max()).collect();
                debug_assert!(shape.true_size(&maxes) < OVERFLOW);
            }
            _ => debug_assert!((2..=field_max).contains(&threshold)),
        }
        let guards = plan_guards(rng, class, cfg.branch_depth, threshold, field_max);
        let fields = widths
            .iter()
            .enumerate()
            .map(|(j, &width)| FieldSpec {
                width,
                offset: 0, // assigned below
                path: format!("/s{k}/f{j}"),
            })
            .collect();
        plans.push(SitePlan {
            class,
            shape,
            fields,
            guards,
            blocking: cfg.blocking_loops && rng.gen_bool(0.5),
            site: format!("gen{app_idx}.c@{}", 11 + 10 * k),
        });
    }
    let layout = assign_offsets(&mut plans, cfg.checksum);

    // Seed values: one vector per (app-seed, site, field).
    let all_values: Vec<Vec<Vec<u64>>> = (0..cfg.seeds_per_app)
        .map(|_| {
            plans
                .iter()
                .map(|plan| {
                    let secondary: Vec<u64> = (1..plan.shape.n_fields())
                        .map(|_| draw(rng, 1, 8))
                        .collect();
                    let driver = seed_value(rng, plan.shape, plan.allowed_max(), &secondary);
                    let mut vals = vec![driver];
                    vals.extend(secondary);
                    vals
                })
                .collect()
        })
        .collect();

    let program = build_program(app_idx, &plans, &layout, cfg.site_work);
    let name = format!("forge-{app_idx:03}");

    let (first_seed, format) = build_seed(app_idx, &plans, &all_values[0], &layout);
    let mut app = CampaignApp::new(name.clone(), program, format, first_seed);
    for values in &all_values[1..] {
        let (seed, _) = build_seed(app_idx, &plans, values, &layout);
        app = app.with_seed(seed);
    }

    let oracle =
        AppOracle {
            app: name,
            sites: plans
                .iter()
                .map(|plan| PlantedSite {
                    site: plan.site.clone(),
                    truth: plan.class,
                    fields: plan.fields.iter().map(|f| f.path.clone()).collect(),
                    shape: plan.shape.describe(),
                    guards: plan.guards.clone(),
                    overflow_threshold: match plan.class {
                        GroundTruth::TargetUnsat => None,
                        _ => Some(plan.shape.overflow_threshold(
                            plan.fields.get(1).map_or(1, |f| f.width.field_max()),
                        )),
                    },
                })
                .collect(),
        };
    (app, oracle)
}

/// Derives the independent RNG stream of one application index.
///
/// Each forged app draws from its own stream — a SplitMix64 finalizer
/// over `(rng_seed, app_idx)` — so app `i`'s content depends only on the
/// configuration and `i`, never on how many apps were forged before it.
/// This is what makes incremental corpus growth possible: extending a
/// suite forges *only* the new indices, and the old apps are bit-stable.
fn app_rng(cfg: &SynthConfig, app_idx: usize) -> StdRng {
    let mut z = cfg
        .rng_seed
        .wrapping_add((app_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Forges the applications with indices `start .. start + count` — the
/// incremental-growth primitive behind `diode-corpus`. Because every app
/// draws from its own RNG stream, `forge_range(cfg, 0, k)` and
/// `forge_range(cfg, k, n)` together are byte-identical to
/// `forge_range(cfg, 0, k + n)`: growing a suite never re-forges (or
/// perturbs) the apps that already exist.
///
/// # Panics
///
/// Panics when the configuration is vacuous (no widths, no shapes, zero
/// sites, zero seeds, or `min_sites > max_sites`).
#[must_use]
pub fn forge_range(cfg: &SynthConfig, start: usize, count: usize) -> ForgedSuite {
    assert!(
        !cfg.widths.is_empty(),
        "SynthConfig.widths must not be empty"
    );
    assert!(
        !cfg.shapes.is_empty(),
        "SynthConfig.shapes must not be empty"
    );
    assert!(cfg.min_sites >= 1, "need at least one site per app");
    assert!(cfg.min_sites <= cfg.max_sites, "min_sites > max_sites");
    assert!(cfg.seeds_per_app >= 1, "need at least one seed per app");
    let mut apps = Vec::with_capacity(count);
    let mut oracles = Vec::with_capacity(count);
    for i in start..start + count {
        let mut rng = app_rng(cfg, i);
        let (app, oracle) = forge_app(cfg, i, &mut rng);
        apps.push(app);
        oracles.push(oracle);
    }
    ForgedSuite {
        apps,
        oracle: SynthOracle { apps: oracles },
    }
}

/// Forges a complete suite from a configuration. Deterministic: equal
/// configs produce byte-identical programs, seeds, formats, and oracles.
///
/// # Panics
///
/// Panics when the configuration is vacuous (no widths, no shapes, zero
/// sites, zero seeds, or `min_sites > max_sites`).
#[must_use]
pub fn forge(cfg: &SynthConfig) -> ForgedSuite {
    forge_range(cfg, 0, cfg.apps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome};
    use diode_lang::pretty;

    #[test]
    fn forging_is_deterministic() {
        let cfg = SynthConfig::default().with_apps(3);
        let a = forge(&cfg);
        let b = forge(&cfg);
        assert_eq!(a.apps.len(), 3);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.name, y.name);
            assert_eq!(pretty::program(&x.program), pretty::program(&y.program));
            assert_eq!(x.seeds, y.seeds);
        }
        assert_eq!(a.oracle.expected_counts(), b.oracle.expected_counts());
    }

    #[test]
    fn forge_range_composes_without_reforging() {
        // Apps 0..3 forged in one shot are byte-identical to forging
        // 0..2 and then growing by 2..3 — the incremental-corpus contract.
        let cfg = SynthConfig::default().with_apps(3);
        let whole = forge(&cfg);
        let head = forge_range(&cfg, 0, 2);
        let tail = forge_range(&cfg, 2, 1);
        let parts: Vec<&CampaignApp> = head.apps.iter().chain(&tail.apps).collect();
        assert_eq!(whole.apps.len(), parts.len());
        for (w, p) in whole.apps.iter().zip(parts) {
            assert_eq!(w.name, p.name);
            assert_eq!(
                diode_lang::pretty::program(&w.program),
                diode_lang::pretty::program(&p.program)
            );
            assert_eq!(w.seeds, p.seeds);
            assert_eq!(w.format, p.format);
        }
        let grown_oracle: Vec<_> = head.oracle.apps.iter().chain(&tail.oracle.apps).collect();
        for (w, p) in whole.oracle.apps.iter().zip(grown_oracle) {
            assert_eq!(w, p);
        }
    }

    #[test]
    fn different_rng_seeds_forge_different_suites() {
        let a = forge(&SynthConfig::default().with_apps(2));
        let b = forge(&SynthConfig::default().with_apps(2).with_rng_seed(99));
        let pa: Vec<String> = a.apps.iter().map(|x| pretty::program(&x.program)).collect();
        let pb: Vec<String> = b.apps.iter().map(|x| pretty::program(&x.program)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn every_forged_seed_is_processed_cleanly() {
        let cfg = SynthConfig {
            apps: 6,
            seeds_per_app: 2,
            ..SynthConfig::default()
        };
        let suite = forge(&cfg);
        assert_eq!(suite.apps.len(), 6);
        for app in &suite.apps {
            for seed in &app.seeds {
                let r = run(&app.program, seed, Concrete, &MachineConfig::default());
                assert_eq!(
                    r.outcome,
                    Outcome::Completed,
                    "{}: {:?}",
                    app.name,
                    r.outcome
                );
                assert!(r.mem_errors.is_empty(), "{}: {:?}", app.name, r.mem_errors);
                // Every planted site is exercised by every seed.
                assert_eq!(
                    r.allocs.len(),
                    suite.oracle.app(&app.name).unwrap().sites.len()
                );
                assert!(r.allocs.iter().all(|a| !a.size_ovf && !a.failed));
            }
        }
    }

    #[test]
    fn every_app_plants_at_least_one_exposable_site() {
        let suite = forge(&SynthConfig::default().with_apps(8));
        for app in &suite.oracle.apps {
            assert!(
                app.sites.iter().any(|s| s.truth == GroundTruth::Exposable),
                "{} has no exposable site",
                app.app
            );
        }
    }

    #[test]
    fn depth_zero_remaps_guard_prevented_sites() {
        let suite = forge(&SynthConfig::default().with_apps(6).with_depth(0));
        let (_, _, _, prevented) = suite.oracle.expected_counts();
        assert_eq!(prevented, 0);
        for app in &suite.oracle.apps {
            for site in &app.sites {
                assert!(site.guards.is_empty() || site.truth == GroundTruth::TargetUnsat);
            }
        }
    }

    #[test]
    fn oracle_matches_program_structure() {
        let suite = forge(&SynthConfig::default().with_apps(4));
        for (app, oracle) in suite.apps.iter().zip(&suite.oracle.apps) {
            let sites = app.program.alloc_sites();
            assert_eq!(sites.len(), oracle.sites.len());
            for ((_, name), planted) in sites.iter().zip(&oracle.sites) {
                assert_eq!(&**name, planted.site);
                for path in &planted.fields {
                    assert!(app.format.field(path).is_some(), "missing field {path}");
                }
            }
        }
    }
}
