//! # diode-format — input formats: field maps, seed builders, reconstruction
//!
//! The paper uses Hachoir \[3\] to map byte ranges to input fields (e.g.
//! bytes 16–19 of a PNG are `/header/width`) and Peach \[4\] to *reconstruct*
//! generated input files so that checksums and structure remain valid
//! (§4.4). This crate is that layer:
//!
//! * [`FormatDesc`] — a field map: named byte ranges plus checksum fixups;
//! * [`SeedBuilder`] — writes a seed file while registering its fields;
//! * [`FormatDesc::reconstruct`] — patches solver-chosen byte values into
//!   a seed file and repairs every registered checksum, so generated
//!   inputs fail only the *semantic* checks DIODE is reasoning about,
//!   never the structural ones.
//!
//! ```
//! use diode_format::SeedBuilder;
//!
//! let mut b = SeedBuilder::new();
//! b.raw(b"MINI");                       // magic, no field
//! b.be16("/header/width", 64);
//! b.be16("/header/height", 48);
//! let crc_at = b.reserve_crc32(0, 8);   // checksum over the first 8 bytes
//! let (bytes, desc) = b.finish();
//!
//! // A generated input patches width = 0xFFFF and repairs the checksum:
//! let out = desc.reconstruct(&bytes, [(4u32, 0xffu8), (5, 0xff)]);
//! assert_eq!(&out[4..6], &[0xff, 0xff]);
//! assert_eq!(
//!     u32::from_be_bytes(out[crc_at as usize..][..4].try_into().unwrap()),
//!     diode_lang::checksum::crc32(&out[0..8]),
//! );
//! assert_eq!(desc.field_at(4).unwrap().path, "/header/width");
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::fmt::Write as _;

use diode_lang::checksum::crc32;

/// A named byte range within an input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Hachoir-style path, e.g. `/header/width`.
    pub path: String,
    /// Byte offset of the field.
    pub offset: u32,
    /// Length in bytes.
    pub len: u32,
    /// Endianness used when rendering the field's value.
    pub endian: Endian,
}

/// Byte order of a multi-byte field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endian {
    /// Most significant byte first (PNG, SWF/JPEG markers).
    Big,
    /// Least significant byte first (RIFF/WAV, XWD-as-little).
    Little,
}

/// A structural value that must be recomputed after patching (Peach's
/// checksum-repair step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fixup {
    /// Store the CRC-32 of `[start, start+len)` as big-endian u32 at `dest`.
    Crc32 {
        /// Start of the checksummed region.
        start: u32,
        /// Length of the checksummed region.
        len: u32,
        /// Where the big-endian checksum lives.
        dest: u32,
    },
}

/// A format description: the field map and checksum fixups of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FormatDesc {
    name: String,
    fields: Vec<Field>,
    fixups: Vec<Fixup>,
}

impl FormatDesc {
    /// Creates an empty description with a format name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        FormatDesc {
            name: name.into(),
            fields: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// The format name (e.g. `"mini-png"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All fields, in offset order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// All fixups.
    #[must_use]
    pub fn fixups(&self) -> &[Fixup] {
        &self.fixups
    }

    /// Registers a field.
    pub fn add_field(&mut self, path: impl Into<String>, offset: u32, len: u32, endian: Endian) {
        self.fields.push(Field {
            path: path.into(),
            offset,
            len,
            endian,
        });
        self.fields.sort_by_key(|f| f.offset);
    }

    /// Registers a fixup.
    pub fn add_fixup(&mut self, fixup: Fixup) {
        self.fixups.push(fixup);
    }

    /// The field covering a byte offset, if any.
    #[must_use]
    pub fn field_at(&self, offset: u32) -> Option<&Field> {
        self.fields
            .iter()
            .find(|f| offset >= f.offset && offset < f.offset + f.len)
    }

    /// Looks up a field by path.
    #[must_use]
    pub fn field(&self, path: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.path == path)
    }

    /// Reads a field's value from an input buffer (up to 8 bytes).
    #[must_use]
    pub fn field_value(&self, input: &[u8], path: &str) -> Option<u64> {
        let f = self.field(path)?;
        let bytes = input.get(f.offset as usize..(f.offset + f.len) as usize)?;
        if bytes.len() > 8 {
            return None;
        }
        let mut v = 0u64;
        match f.endian {
            Endian::Big => {
                for &b in bytes {
                    v = v << 8 | u64::from(b);
                }
            }
            Endian::Little => {
                for &b in bytes.iter().rev() {
                    v = v << 8 | u64::from(b);
                }
            }
        }
        Some(v)
    }

    /// Maps byte offsets to the field paths they belong to, deduplicated
    /// and in input order — this is how DIODE reports *relevant input
    /// fields* (e.g. `/header/width`) instead of raw offsets.
    #[must_use]
    pub fn describe_bytes(&self, offsets: &[u32]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for &o in offsets {
            let label = match self.field_at(o) {
                Some(f) => f.path.clone(),
                None => format!("byte[{o}]"),
            };
            if !out.contains(&label) {
                out.push(label);
            }
        }
        out
    }

    /// Structural validation of an input against this description: every
    /// field's byte range must lie within the input, every fixup's source
    /// region and destination must lie within the input, and every stored
    /// checksum must match its recomputed value. Seeds and reconstructed
    /// inputs are expected to validate; a failure means the description
    /// and the bytes have drifted apart.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] encountered (fields in offset
    /// order, then fixups in registration order).
    pub fn validate(&self, input: &[u8]) -> Result<(), ValidateError> {
        let ilen = input.len() as u64;
        for f in &self.fields {
            if u64::from(f.offset) + u64::from(f.len) > ilen {
                return Err(ValidateError::FieldOutOfBounds {
                    path: f.path.clone(),
                    offset: f.offset,
                    len: f.len,
                    input_len: input.len(),
                });
            }
        }
        for fixup in &self.fixups {
            match *fixup {
                Fixup::Crc32 { start, len, dest } => {
                    if u64::from(start) + u64::from(len) > ilen || u64::from(dest) + 4 > ilen {
                        return Err(ValidateError::FixupOutOfBounds {
                            dest,
                            input_len: input.len(),
                        });
                    }
                    let computed = crc32(&input[start as usize..(start + len) as usize]);
                    let stored = u32::from_be_bytes(
                        input[dest as usize..dest as usize + 4]
                            .try_into()
                            .expect("4 bytes"),
                    );
                    if computed != stored {
                        return Err(ValidateError::ChecksumMismatch {
                            dest,
                            stored,
                            computed,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes this description to the canonical one-line-per-entry
    /// *format spec* text accepted by [`FormatDesc::from_spec`]:
    ///
    /// ```text
    /// format <name>
    /// field <path> <offset> <len> <be|le>
    /// crc32 <start> <len> <dest>
    /// ```
    ///
    /// Fields appear in offset order and fixups in registration order, so
    /// equal descriptions serialize to identical text — the spec doubles
    /// as a content fingerprint for on-disk corpus stores.
    ///
    /// # Panics
    ///
    /// Panics if the format name or a field path contains whitespace or
    /// control characters (the spec is whitespace-delimited; no such name
    /// is ever produced by [`SeedBuilder`]).
    #[must_use]
    pub fn to_spec(&self) -> String {
        let check = |kind: &str, s: &str| {
            assert!(
                !s.is_empty() && !s.chars().any(|c| c.is_whitespace() || c.is_control()),
                "{kind} {s:?} is not spec-safe"
            );
        };
        check("format name", &self.name);
        let mut out = format!("format {}\n", self.name);
        for f in &self.fields {
            check("field path", &f.path);
            let endian = match f.endian {
                Endian::Big => "be",
                Endian::Little => "le",
            };
            let _ = writeln!(out, "field {} {} {} {endian}", f.path, f.offset, f.len);
        }
        for fixup in &self.fixups {
            match *fixup {
                Fixup::Crc32 { start, len, dest } => {
                    let _ = writeln!(out, "crc32 {start} {len} {dest}");
                }
            }
        }
        out
    }

    /// Parses the text produced by [`FormatDesc::to_spec`]. Blank lines
    /// and `#` comment lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first malformed line.
    pub fn from_spec(src: &str) -> Result<FormatDesc, SpecError> {
        let mut desc: Option<FormatDesc> = None;
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| SpecError {
                line: idx + 1,
                reason: reason.to_string(),
                text: raw.to_string(),
            };
            let mut tokens = line.split_whitespace();
            let keyword = tokens.next().expect("non-empty line has a token");
            let rest: Vec<&str> = tokens.collect();
            let num = |s: &str, what: &str| {
                s.parse::<u32>()
                    .map_err(|_| err(&format!("{what} is not a u32")))
            };
            match keyword {
                "format" => {
                    if desc.is_some() {
                        return Err(err("duplicate format line"));
                    }
                    let [name] = rest[..] else {
                        return Err(err("expected: format <name>"));
                    };
                    desc = Some(FormatDesc::new(name));
                }
                "field" => {
                    let d = desc.as_mut().ok_or_else(|| err("field before format"))?;
                    let [path, offset, len, endian] = rest[..] else {
                        return Err(err("expected: field <path> <offset> <len> <be|le>"));
                    };
                    let endian = match endian {
                        "be" => Endian::Big,
                        "le" => Endian::Little,
                        _ => return Err(err("endianness must be be|le")),
                    };
                    d.add_field(path, num(offset, "offset")?, num(len, "len")?, endian);
                }
                "crc32" => {
                    let d = desc.as_mut().ok_or_else(|| err("crc32 before format"))?;
                    let [start, len, dest] = rest[..] else {
                        return Err(err("expected: crc32 <start> <len> <dest>"));
                    };
                    d.add_fixup(Fixup::Crc32 {
                        start: num(start, "start")?,
                        len: num(len, "len")?,
                        dest: num(dest, "dest")?,
                    });
                }
                _ => return Err(err("unknown keyword")),
            }
        }
        desc.ok_or(SpecError {
            line: 0,
            reason: "missing format line".to_string(),
            text: String::new(),
        })
    }

    /// Peach-style reconstruction: copies the seed, applies the byte
    /// patches, then repairs every checksum (in registration order).
    /// Patches that land on checksum bytes are overwritten by the repair,
    /// exactly as with Peach.
    #[must_use]
    pub fn reconstruct<I>(&self, seed: &[u8], patches: I) -> Vec<u8>
    where
        I: IntoIterator<Item = (u32, u8)>,
    {
        let mut out = seed.to_vec();
        for (off, v) in patches {
            if let Some(slot) = out.get_mut(off as usize) {
                *slot = v;
            }
        }
        for fixup in &self.fixups {
            match *fixup {
                Fixup::Crc32 { start, len, dest } => {
                    let (s, e) = (start as usize, (start + len) as usize);
                    if e <= out.len() && (dest as usize + 4) <= out.len() {
                        let crc = crc32(&out[s..e]);
                        out[dest as usize..dest as usize + 4].copy_from_slice(&crc.to_be_bytes());
                    }
                }
            }
        }
        out
    }
}

/// A malformed line found by [`FormatDesc::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 for whole-document problems).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
    /// The offending line's text.
    pub text: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "format spec line {}: {} ({:?})",
            self.line, self.reason, self.text
        )
    }
}

impl std::error::Error for SpecError {}

/// A structural problem found by [`FormatDesc::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A field's byte range extends past the end of the input.
    FieldOutOfBounds {
        /// The field's path.
        path: String,
        /// The field's offset.
        offset: u32,
        /// The field's length.
        len: u32,
        /// The input length.
        input_len: usize,
    },
    /// A fixup's source region or destination lies outside the input.
    FixupOutOfBounds {
        /// The fixup's destination offset.
        dest: u32,
        /// The input length.
        input_len: usize,
    },
    /// A stored checksum does not match the recomputed value.
    ChecksumMismatch {
        /// The checksum's offset.
        dest: u32,
        /// The value stored in the input.
        stored: u32,
        /// The value recomputed from the input.
        computed: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::FieldOutOfBounds {
                path,
                offset,
                len,
                input_len,
            } => write!(
                f,
                "field {path} at {offset}+{len} exceeds input length {input_len}"
            ),
            ValidateError::FixupOutOfBounds { dest, input_len } => {
                write!(f, "fixup at {dest} exceeds input length {input_len}")
            }
            ValidateError::ChecksumMismatch {
                dest,
                stored,
                computed,
            } => write!(
                f,
                "checksum at {dest}: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

impl fmt::Display for FormatDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "format {} ({} fields)", self.name, self.fields.len())?;
        for field in &self.fields {
            writeln!(
                f,
                "  {:<32} @{:<6} len {} {:?}",
                field.path, field.offset, field.len, field.endian
            )?;
        }
        Ok(())
    }
}

/// Builds a seed file and its [`FormatDesc`] together.
#[derive(Debug, Default)]
pub struct SeedBuilder {
    bytes: Vec<u8>,
    desc: FormatDesc,
}

impl SeedBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SeedBuilder {
            bytes: Vec::new(),
            desc: FormatDesc::new("unnamed"),
        }
    }

    /// Names the format.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.desc.name = name.into();
        self
    }

    /// Current length of the file being built (the next write offset).
    #[must_use]
    pub fn len(&self) -> u32 {
        u32::try_from(self.bytes.len()).expect("seed too large")
    }

    /// True if nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Appends unnamed raw bytes (magic numbers, padding, payloads).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Appends a named single byte.
    pub fn u8(&mut self, path: &str, v: u8) -> &mut Self {
        self.desc.add_field(path, self.len(), 1, Endian::Big);
        self.bytes.push(v);
        self
    }

    /// Appends a named big-endian u16.
    pub fn be16(&mut self, path: &str, v: u16) -> &mut Self {
        self.desc.add_field(path, self.len(), 2, Endian::Big);
        self.bytes.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a named big-endian u32.
    pub fn be32(&mut self, path: &str, v: u32) -> &mut Self {
        self.desc.add_field(path, self.len(), 4, Endian::Big);
        self.bytes.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a named little-endian u16.
    pub fn le16(&mut self, path: &str, v: u16) -> &mut Self {
        self.desc.add_field(path, self.len(), 2, Endian::Little);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a named little-endian u32.
    pub fn le32(&mut self, path: &str, v: u32) -> &mut Self {
        self.desc.add_field(path, self.len(), 4, Endian::Little);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a named byte region (e.g. a payload).
    pub fn named_bytes(&mut self, path: &str, bytes: &[u8]) -> &mut Self {
        self.desc
            .add_field(path, self.len(), bytes.len() as u32, Endian::Big);
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Appends space for a CRC-32 over `[start, start+len)`, registers the
    /// fixup, and writes the correct checksum immediately. Returns the
    /// checksum's offset.
    pub fn reserve_crc32(&mut self, start: u32, len: u32) -> u32 {
        let dest = self.len();
        let crc = crc32(&self.bytes[start as usize..(start + len) as usize]);
        self.bytes.extend_from_slice(&crc.to_be_bytes());
        self.desc.add_fixup(Fixup::Crc32 { start, len, dest });
        dest
    }

    /// Finishes, returning the seed bytes and the format description.
    #[must_use]
    pub fn finish(self) -> (Vec<u8>, FormatDesc) {
        (self.bytes, self.desc)
    }
}

/// Writes one PNG-style chunk (length, 4-byte type, payload, CRC-32 over
/// type+payload) and registers per-chunk fields under `prefix`.
///
/// The payload fields must be registered by the `payload` closure, which
/// receives the builder positioned at the payload start.
pub fn png_chunk(
    b: &mut SeedBuilder,
    prefix: &str,
    chunk_type: &[u8; 4],
    payload: impl FnOnce(&mut SeedBuilder),
) {
    let len_path = format!("{prefix}/length");
    let start_of_len = b.len();
    // Placeholder length, fixed after the payload is written.
    b.desc.add_field(len_path, start_of_len, 4, Endian::Big);
    b.bytes.extend_from_slice(&[0, 0, 0, 0]);
    let type_at = b.len();
    b.raw(chunk_type);
    let payload_start = b.len();
    payload(b);
    let payload_len = b.len() - payload_start;
    b.bytes[start_of_len as usize..start_of_len as usize + 4]
        .copy_from_slice(&payload_len.to_be_bytes());
    b.reserve_crc32(type_at, 4 + payload_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<u8>, FormatDesc) {
        let mut b = SeedBuilder::new();
        b.name("sample");
        b.raw(b"MAGC");
        b.be32("/hdr/width", 280);
        b.be32("/hdr/height", 180);
        b.u8("/hdr/depth", 8);
        b.le16("/hdr/flags", 0x0102);
        b.reserve_crc32(4, 11);
        b.finish()
    }

    #[test]
    fn fields_and_values() {
        let (bytes, desc) = sample();
        assert_eq!(desc.field_value(&bytes, "/hdr/width"), Some(280));
        assert_eq!(desc.field_value(&bytes, "/hdr/height"), Some(180));
        assert_eq!(desc.field_value(&bytes, "/hdr/depth"), Some(8));
        assert_eq!(desc.field_value(&bytes, "/hdr/flags"), Some(0x0102));
        assert_eq!(desc.field_value(&bytes, "/nope"), None);
        assert_eq!(desc.field_at(5).unwrap().path, "/hdr/width");
        assert_eq!(desc.field_at(12).unwrap().path, "/hdr/depth");
        assert!(desc.field_at(0).is_none()); // magic is unnamed
    }

    #[test]
    fn describe_bytes_dedups_and_names() {
        let (_, desc) = sample();
        let names = desc.describe_bytes(&[4, 5, 6, 7, 12, 0]);
        assert_eq!(
            names,
            vec![
                "/hdr/width".to_string(),
                "/hdr/depth".into(),
                "byte[0]".into()
            ]
        );
    }

    #[test]
    fn reconstruct_repairs_checksum() {
        let (bytes, desc) = sample();
        assert_eq!(desc.fixups().len(), 1);
        let out = desc.reconstruct(&bytes, [(4u32, 0xAAu8), (7, 0xBB)]);
        assert_eq!(out[4], 0xAA);
        assert_eq!(out[7], 0xBB);
        let stored = u32::from_be_bytes(out[15..19].try_into().unwrap());
        assert_eq!(stored, crc32(&out[4..15]));
        // Seed's own checksum was already valid.
        let stored_seed = u32::from_be_bytes(bytes[15..19].try_into().unwrap());
        assert_eq!(stored_seed, crc32(&bytes[4..15]));
    }

    #[test]
    fn patches_on_checksum_bytes_are_overwritten() {
        let (bytes, desc) = sample();
        let out = desc.reconstruct(&bytes, [(15u32, 0x00u8), (16, 0x00)]);
        let stored = u32::from_be_bytes(out[15..19].try_into().unwrap());
        assert_eq!(stored, crc32(&out[4..15]));
    }

    #[test]
    fn out_of_range_patches_ignored() {
        let (bytes, desc) = sample();
        let out = desc.reconstruct(&bytes, [(9999u32, 1u8)]);
        assert_eq!(out.len(), bytes.len());
    }

    #[test]
    fn png_chunk_layout() {
        let mut b = SeedBuilder::new();
        b.raw(&[0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a]);
        png_chunk(&mut b, "/ihdr", b"IHDR", |b| {
            b.be32("/ihdr/width", 64);
            b.be32("/ihdr/height", 48);
            b.u8("/ihdr/bit_depth", 8);
            b.u8("/ihdr/color_type", 0);
        });
        let (bytes, desc) = b.finish();
        // length field holds 10 (4+4+1+1).
        assert_eq!(desc.field_value(&bytes, "/ihdr/length"), Some(10));
        assert_eq!(&bytes[12..16], b"IHDR");
        assert_eq!(desc.field_value(&bytes, "/ihdr/width"), Some(64));
        // CRC over type+payload is valid.
        let crc_off = bytes.len() - 4;
        let stored = u32::from_be_bytes(bytes[crc_off..].try_into().unwrap());
        assert_eq!(stored, crc32(&bytes[12..crc_off]));
        // And reconstruction keeps it valid after a width patch.
        let out = desc.reconstruct(&bytes, [(16u32, 0xffu8)]);
        let stored = u32::from_be_bytes(out[crc_off..].try_into().unwrap());
        assert_eq!(stored, crc32(&out[12..crc_off]));
    }

    #[test]
    fn validate_accepts_seed_and_reconstructions() {
        let (bytes, desc) = sample();
        assert_eq!(desc.validate(&bytes), Ok(()));
        let out = desc.reconstruct(&bytes, [(4u32, 0xAAu8), (7, 0xBB)]);
        assert_eq!(desc.validate(&out), Ok(()));
    }

    #[test]
    fn validate_catches_truncation_and_corruption() {
        let (bytes, desc) = sample();
        // Truncated input: the flags field no longer fits.
        assert!(matches!(
            desc.validate(&bytes[..12]),
            Err(ValidateError::FieldOutOfBounds { .. })
        ));
        // Corrupted checksummed byte without repair.
        let mut corrupt = bytes.clone();
        corrupt[4] ^= 0xFF;
        assert!(matches!(
            desc.validate(&corrupt),
            Err(ValidateError::ChecksumMismatch { .. })
        ));
        // Fixup destination out of range.
        let mut desc2 = FormatDesc::new("bad");
        desc2.add_fixup(Fixup::Crc32 {
            start: 0,
            len: 4,
            dest: 9999,
        });
        assert!(matches!(
            desc2.validate(&bytes),
            Err(ValidateError::FixupOutOfBounds { .. })
        ));
    }

    #[test]
    fn spec_roundtrip_preserves_description() {
        let (_, desc) = sample();
        let spec = desc.to_spec();
        let back = FormatDesc::from_spec(&spec).unwrap();
        assert_eq!(back, desc);
        // Serialization is canonical: a second trip is byte-identical.
        assert_eq!(back.to_spec(), spec);
        assert!(spec.starts_with("format sample\n"), "{spec}");
        assert!(spec.contains("field /hdr/flags 13 2 le\n"), "{spec}");
        assert!(spec.contains("crc32 4 11 15\n"), "{spec}");
    }

    #[test]
    fn spec_ignores_blanks_and_comments() {
        let back = FormatDesc::from_spec(
            "# a comment\n\nformat x\n  field /a 0 2 be  \n# more\ncrc32 0 2 2\n",
        )
        .unwrap();
        assert_eq!(back.name(), "x");
        assert_eq!(back.fields().len(), 1);
        assert_eq!(back.fixups().len(), 1);
    }

    #[test]
    fn spec_errors_name_the_line() {
        let cases = [
            ("", "missing format line"),
            ("field /a 0 2 be\n", "field before format"),
            ("format x\nformat y\n", "duplicate format"),
            ("format x\nfield /a 0 2 middle\n", "endianness"),
            ("format x\nfield /a zero 2 be\n", "offset is not a u32"),
            ("format x\nfield /a 0 2\n", "expected: field"),
            ("format x\ncrc32 1 2\n", "expected: crc32"),
            ("format x\nbogus\n", "unknown keyword"),
        ];
        for (src, needle) in cases {
            let err = FormatDesc::from_spec(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src:?}: {err}");
        }
    }

    #[test]
    fn display_lists_fields() {
        let (_, desc) = sample();
        let text = desc.to_string();
        assert!(text.contains("/hdr/width"));
        assert!(text.contains("format sample"));
    }
}
