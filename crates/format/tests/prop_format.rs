//! Property tests: reconstruction always repairs checksums, regardless of
//! which bytes the patches touch.

use diode_format::{png_chunk, SeedBuilder};
use diode_lang::checksum::crc32;
use proptest::prelude::*;

proptest! {
    #[test]
    fn reconstruct_always_repairs_crc(
        patches in proptest::collection::vec((0u32..64, any::<u8>()), 0..16)
    ) {
        let mut b = SeedBuilder::new();
        b.raw(b"HDR!");
        b.be32("/a", 111);
        b.be32("/b", 222);
        b.be16("/c", 333);
        let crc_at = b.reserve_crc32(4, 10) as usize;
        b.raw(&[0xEE; 10]);
        let (seed, desc) = b.finish();

        let out = desc.reconstruct(&seed, patches);
        prop_assert_eq!(out.len(), seed.len());
        let stored = u32::from_be_bytes(out[crc_at..crc_at + 4].try_into().unwrap());
        prop_assert_eq!(stored, crc32(&out[4..14]));
    }

    #[test]
    fn png_chunks_stay_valid_under_patching(
        w: u32, h: u32, depth: u8,
    ) {
        let mut b = SeedBuilder::new();
        b.raw(&[0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a]);
        png_chunk(&mut b, "/ihdr", b"IHDR", |b| {
            b.be32("/ihdr/width", 1);
            b.be32("/ihdr/height", 1);
            b.u8("/ihdr/bit_depth", 8);
        });
        let (seed, desc) = b.finish();
        let mut patches: Vec<(u32, u8)> = Vec::new();
        let wf = desc.field("/ihdr/width").unwrap().offset;
        let hf = desc.field("/ihdr/height").unwrap().offset;
        let df = desc.field("/ihdr/bit_depth").unwrap().offset;
        patches.extend(w.to_be_bytes().iter().enumerate().map(|(i, &v)| (wf + i as u32, v)));
        patches.extend(h.to_be_bytes().iter().enumerate().map(|(i, &v)| (hf + i as u32, v)));
        patches.push((df, depth));
        let out = desc.reconstruct(&seed, patches);
        // Field values took the patch…
        prop_assert_eq!(desc.field_value(&out, "/ihdr/width"), Some(u64::from(w)));
        prop_assert_eq!(desc.field_value(&out, "/ihdr/height"), Some(u64::from(h)));
        // …and the chunk CRC over type+payload is still correct.
        let crc_off = out.len() - 4;
        let stored = u32::from_be_bytes(out[crc_off..].try_into().unwrap());
        prop_assert_eq!(stored, crc32(&out[12..crc_off]));
    }
}
