//! # diode-solver — a bitvector constraint solver
//!
//! The decision procedure behind the DIODE reproduction's target- and
//! branch-constraint queries. The paper uses the Z3 SMT solver \[13\]; this
//! crate substitutes a from-scratch solver for the exact fragment DIODE
//! needs — quantifier-free fixed-width bitvector constraints over input
//! bytes — built as:
//!
//! 1. an unsigned-interval pre-analysis ([`interval`]) that discharges
//!    trivially (un)satisfiable constraints,
//! 2. a Tseitin bit-blaster ([`blast`]) turning
//!    [`diode_symbolic::SymExpr`]/[`diode_symbolic::SymBool`] DAGs into CNF with exact
//!    circuits for every operation and overflow atom,
//! 3. a CDCL SAT core ([`sat`]) with watched literals, VSIDS, Luby
//!    restarts, phase saving and clause-database reduction,
//! 4. a sharded, thread-safe **query cache** ([`cache`]) memoizing
//!    `Sat`/`Unsat` outcomes behind structural fingerprints of the
//!    constraint DAG — the substrate `diode-engine` campaigns share
//!    across all workers.
//!
//! The high-level API ([`solve`], [`sample`], [`enumerate`]) additionally
//! implements the paper's evaluation protocol: diversified model sampling
//! (the 200-input success-rate experiments of §5.5–5.6) and bounded model
//! enumeration (which proves CVE-2008-2430's `x + 2` constraint has
//! exactly two solutions).
//!
//! ```
//! use diode_lang::{BinOp, Bv, CastKind};
//! use diode_symbolic::{overflow_condition, SymExpr};
//!
//! // β = overflow((width * height) * 4) over two 16-bit big-endian
//! // fields — the pixel-buffer size computation of §4.3's example.
//! let byte = |o| SymExpr::input_byte(o).cast(CastKind::Zext, 32);
//! let sh8 = SymExpr::constant(Bv::u32(8));
//! let width = byte(0).bin(BinOp::Shl, sh8.clone()).bin(BinOp::Or, byte(1));
//! let height = byte(2).bin(BinOp::Shl, sh8).bin(BinOp::Or, byte(3));
//! let target = width.bin(BinOp::Mul, height).bin(BinOp::Mul, SymExpr::constant(Bv::u32(4)));
//! let beta = overflow_condition(&target);
//!
//! let model = diode_solver::solve(&beta).model().cloned().expect("satisfiable");
//! // The solver's witness really does overflow the 32-bit product:
//! assert!(target.eval_overflow(&model.lookup_over(&[])).1);
//! ```

#![warn(missing_docs)]

pub mod blast;
pub mod cache;
pub mod interval;
pub mod sat;
mod solve;

pub use cache::{constraint_fingerprint, fingerprint_hex, CacheStats, SolverCache};
pub use solve::{
    enumerate, sample, solve, solve_with, Enumeration, Model, SolveResult, SolveStats, SolverConfig,
};
