//! High-level constraint-solving API.
//!
//! This is the interface DIODE's pipeline calls where the paper calls Z3
//! (§4.3): solve a [`SymBool`] constraint over input bytes and get back a
//! [`Model`] (an assignment to the constrained bytes), report `Unsat`, or
//! give up on a budget.
//!
//! Two extra entry points support the paper's evaluation protocol:
//!
//! * [`sample`] draws *n* diversified models by re-solving with randomised
//!   decision polarities and activity jitter — this regenerates the
//!   "200 inputs that satisfy the target constraint" experiments of
//!   §5.5/§5.6 (Table 2's success-rate columns);
//! * [`enumerate`] lists models up to a limit with blocking clauses —
//!   which, for CVE-2008-2430's `x + 2` target expression, proves there
//!   are exactly two overflowing inputs (§5.5).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use diode_symbolic::SymBool;

use crate::blast::Blaster;
use crate::interval::{cond_range, Tri};
use crate::sat::{Lit, Sat, SatConfig, SatOutcome};

/// Configuration for the high-level solver.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Conflict budget per SAT call.
    pub max_conflicts: u64,
    /// Run the unsigned-interval pre-analysis before bit-blasting
    /// (ablation switch; see `diode-bench`).
    pub interval_presolve: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_conflicts: 2_000_000,
            interval_presolve: true,
        }
    }
}

/// An assignment to the input bytes that occur in the solved constraint.
/// Bytes outside the map are unconstrained (keep the seed's value).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    bytes: BTreeMap<u32, u8>,
}

impl Model {
    /// Creates a model from explicit byte assignments (mainly for tests).
    #[must_use]
    pub fn from_bytes<I: IntoIterator<Item = (u32, u8)>>(bytes: I) -> Self {
        Model {
            bytes: bytes.into_iter().collect(),
        }
    }

    /// The value assigned to the byte at `offset`, if constrained.
    #[must_use]
    pub fn byte(&self, offset: u32) -> Option<u8> {
        self.bytes.get(&offset).copied()
    }

    /// All constrained byte offsets and values.
    #[must_use]
    pub fn bytes(&self) -> &BTreeMap<u32, u8> {
        &self.bytes
    }

    /// Overlays this model on a base input: returns a lookup function
    /// suitable for [`SymBool::eval`].
    pub fn lookup_over<'a>(&'a self, base: &'a [u8]) -> impl Fn(u32) -> u8 + 'a {
        move |off| {
            self.byte(off)
                .unwrap_or_else(|| base.get(off as usize).copied().unwrap_or(0))
        }
    }

    /// Patches the model's bytes into a mutable buffer (offsets past the
    /// end are ignored).
    pub fn patch(&self, buffer: &mut [u8]) {
        for (&off, &v) in &self.bytes {
            if let Some(slot) = buffer.get_mut(off as usize) {
                *slot = v;
            }
        }
    }
}

/// Result of a solve call.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// Budget exhausted.
    Unknown,
}

impl SolveResult {
    /// The model, if satisfiable.
    #[must_use]
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// True if proven unsatisfiable.
    #[must_use]
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }
}

/// Statistics from a solve call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Conflicts in the SAT search.
    pub conflicts: u64,
    /// Decisions in the SAT search.
    pub decisions: u64,
    /// CNF variables created.
    pub vars: usize,
    /// True if the interval pre-analysis decided the query by itself.
    pub decided_by_interval: bool,
}

/// Solves a constraint with the default configuration.
#[must_use]
pub fn solve(cond: &SymBool) -> SolveResult {
    solve_with(cond, &SolverConfig::default(), None).0
}

/// Solves a constraint, optionally seeding decision polarities for model
/// diversity, and returns statistics.
#[must_use]
pub fn solve_with(
    cond: &SymBool,
    config: &SolverConfig,
    diversity_seed: Option<u64>,
) -> (SolveResult, SolveStats) {
    let mut stats = SolveStats::default();
    // Tri::True still needs a model, so only Unsat short-circuits here.
    if config.interval_presolve && cond_range(cond) == Tri::False {
        stats.decided_by_interval = true;
        return (SolveResult::Unsat, stats);
    }
    let mut sat = Sat::new(SatConfig {
        max_conflicts: config.max_conflicts,
        ..SatConfig::default()
    });
    let mut blaster = Blaster::new(&mut sat);
    blaster.assert_cond(cond);
    let byte_offsets: Vec<u32> = blaster.byte_bits().keys().copied().collect();
    if let Some(seed) = diversity_seed {
        let mut rng = StdRng::seed_from_u64(seed);
        let all_vars: Vec<_> = blaster
            .byte_bits()
            .values()
            .flatten()
            .map(|l| l.var())
            .collect();
        for v in all_vars {
            let polarity: bool = rng.gen();
            let bump: f64 = rng.gen::<f64>() * 0.5;
            blaster.sat_mut().set_polarity(v, polarity);
            blaster.sat_mut().bump_activity_seed(v, bump);
        }
    }
    let outcome = blaster.sat_mut().solve();
    stats.conflicts = blaster.sat_ref().conflicts();
    stats.decisions = blaster.sat_ref().decisions();
    stats.vars = blaster.sat_ref().n_vars();
    let result = match outcome {
        SatOutcome::Sat => {
            let bytes = byte_offsets
                .into_iter()
                .map(|o| (o, blaster.model_byte(o).expect("encoded byte")))
                .collect();
            SolveResult::Sat(Model { bytes })
        }
        SatOutcome::Unsat => SolveResult::Unsat,
        SatOutcome::Unknown => SolveResult::Unknown,
    };
    (result, stats)
}

/// Draws up to `n` models of `cond`, each from an independently seeded
/// search. Models may repeat when the solution space is small — exactly
/// like the paper's sampled 200 solver outputs (§5.5 notes the `x + 2`
/// constraint "has only two solutions").
#[must_use]
pub fn sample(cond: &SymBool, n: usize, seed: u64, config: &SolverConfig) -> Vec<Model> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let s: u64 = rng.gen();
        if let (SolveResult::Sat(m), _) = solve_with(cond, config, Some(s)) {
            out.push(m);
        }
    }
    out
}

/// Result of bounded model enumeration.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Distinct models found (over the constrained bytes).
    pub models: Vec<Model>,
    /// True if the enumeration is exhaustive (fewer than the limit).
    pub complete: bool,
}

/// Enumerates distinct models of `cond` up to `limit`, blocking each found
/// assignment of the constrained input bytes.
#[must_use]
pub fn enumerate(cond: &SymBool, limit: usize, config: &SolverConfig) -> Enumeration {
    if config.interval_presolve && cond_range(cond) == Tri::False {
        return Enumeration {
            models: Vec::new(),
            complete: true,
        };
    }
    let mut sat = Sat::new(SatConfig {
        max_conflicts: config.max_conflicts,
        ..SatConfig::default()
    });
    let mut blaster = Blaster::new(&mut sat);
    blaster.assert_cond(cond);
    let byte_offsets: Vec<u32> = blaster.byte_bits().keys().copied().collect();
    let byte_lits: Vec<(u32, Vec<Lit>)> = blaster
        .byte_bits()
        .iter()
        .map(|(&o, bits)| (o, bits.clone()))
        .collect();
    let mut models = Vec::new();
    loop {
        if models.len() >= limit {
            return Enumeration {
                models,
                complete: false,
            };
        }
        match blaster.sat_mut().solve() {
            SatOutcome::Sat => {}
            SatOutcome::Unsat => {
                return Enumeration {
                    models,
                    complete: true,
                }
            }
            SatOutcome::Unknown => {
                return Enumeration {
                    models,
                    complete: false,
                }
            }
        }
        let bytes: BTreeMap<u32, u8> = byte_offsets
            .iter()
            .map(|&o| (o, blaster.model_byte(o).expect("encoded byte")))
            .collect();
        // Blocking clause: at least one constrained byte differs.
        let mut blocking = Vec::new();
        for (off, bits) in &byte_lits {
            let v = bytes[off];
            for (i, &l) in bits.iter().enumerate() {
                blocking.push(if v >> i & 1 == 1 { !l } else { l });
            }
        }
        models.push(Model { bytes });
        let sat_ref = blaster.sat_mut();
        sat_ref.backtrack_to_root();
        if !sat_ref.add_clause(&blocking) {
            return Enumeration {
                models,
                complete: true,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_lang::{BinOp, Bv, CastKind, CmpOp};
    use diode_symbolic::{overflow_condition, SymExpr};

    fn byte32(off: u32) -> SymExpr {
        SymExpr::input_byte(off).cast(CastKind::Zext, 32)
    }

    fn c32(v: u32) -> SymExpr {
        SymExpr::constant(Bv::u32(v))
    }

    fn field32(base: u32) -> SymExpr {
        let b0 = byte32(base).bin(BinOp::Shl, c32(24));
        let b1 = byte32(base + 1).bin(BinOp::Shl, c32(16));
        let b2 = byte32(base + 2).bin(BinOp::Shl, c32(8));
        b0.bin(BinOp::Or, b1)
            .bin(BinOp::Or, b2)
            .bin(BinOp::Or, byte32(base + 3))
    }

    #[test]
    fn solve_returns_verified_model() {
        let beta = overflow_condition(&field32(0).bin(BinOp::Mul, field32(4)));
        let m = solve(&beta).model().cloned().expect("sat");
        assert!(beta.eval(&m.lookup_over(&[])));
    }

    #[test]
    fn interval_presolve_short_circuits_unsat() {
        let cond = SymBool::cmp(CmpOp::Ugt, byte32(0), c32(1000));
        let (res, stats) = solve_with(&cond, &SolverConfig::default(), None);
        assert!(res.is_unsat());
        assert!(stats.decided_by_interval);
        // Without presolve the SAT core still proves it.
        let cfg = SolverConfig {
            interval_presolve: false,
            ..SolverConfig::default()
        };
        let (res, stats) = solve_with(&cond, &cfg, None);
        assert!(res.is_unsat());
        assert!(!stats.decided_by_interval);
    }

    #[test]
    fn sampling_produces_diverse_valid_models() {
        let beta = overflow_condition(&field32(0).bin(BinOp::Mul, field32(4)));
        let models = sample(&beta, 20, 42, &SolverConfig::default());
        assert_eq!(models.len(), 20);
        let mut distinct = std::collections::HashSet::new();
        for m in &models {
            assert!(beta.eval(&m.lookup_over(&[])), "invalid sample");
            distinct.insert(format!("{:?}", m.bytes()));
        }
        assert!(
            distinct.len() >= 5,
            "expected diverse samples, got {}",
            distinct.len()
        );
    }

    #[test]
    fn enumerate_finds_exactly_two_cve_2008_2430_solutions() {
        // x + 2 over a 32-bit field overflows for exactly two values.
        let beta = overflow_condition(&field32(0).bin(BinOp::Add, c32(2)));
        let e = enumerate(&beta, 10, &SolverConfig::default());
        assert!(e.complete);
        assert_eq!(e.models.len(), 2);
        let mut xs: Vec<u32> = e
            .models
            .iter()
            .map(|m| {
                u32::from_be_bytes([
                    m.byte(0).unwrap(),
                    m.byte(1).unwrap(),
                    m.byte(2).unwrap(),
                    m.byte(3).unwrap(),
                ])
            })
            .collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![0xffff_fffe, 0xffff_ffff]);
    }

    #[test]
    fn enumerate_respects_limit() {
        let cond = SymBool::cmp(CmpOp::Ugt, byte32(0), c32(100));
        let e = enumerate(&cond, 5, &SolverConfig::default());
        assert!(!e.complete);
        assert_eq!(e.models.len(), 5);
    }

    #[test]
    fn enumerate_unsat_is_empty_and_complete() {
        let cond = SymBool::Const(false);
        let e = enumerate(&cond, 5, &SolverConfig::default());
        assert!(e.complete);
        assert!(e.models.is_empty());
    }

    #[test]
    fn model_patch_and_lookup() {
        let m = Model::from_bytes([(1, 0xaa), (3, 0xbb)]);
        let mut buf = vec![0u8; 4];
        m.patch(&mut buf);
        assert_eq!(buf, vec![0, 0xaa, 0, 0xbb]);
        let base = [1u8, 2, 3, 4];
        let look = m.lookup_over(&base);
        assert_eq!(look(0), 1);
        assert_eq!(look(1), 0xaa);
        assert_eq!(look(9), 0);
    }
}
