//! A CDCL SAT solver.
//!
//! This is the decision-procedure core of the `diode-solver` crate — the
//! offline stand-in for Z3 \[13\] in the paper's pipeline (see DESIGN.md §3).
//! It is a conventional conflict-driven clause-learning solver in the
//! MiniSat lineage:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with non-chronological backjumping,
//! * exponential VSIDS variable activities with a position-indexed binary
//!   max-heap,
//! * Luby-sequence restarts,
//! * phase saving (with configurable/randomisable initial polarity — the
//!   mechanism behind diversified solution *sampling* for the paper's
//!   200-input success-rate experiments, §5.5–5.6),
//! * learnt-clause database reduction driven by literal-block distance.
//!
//! The solver is deterministic for a fixed configuration; diversity is
//! injected only through explicit initial-phase/activity seeds.

use std::fmt;

/// A propositional variable (0-based index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable with a sign. Encoded as `var << 1 | sign` where
/// sign 1 means negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[must_use]
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[must_use]
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// This literal's variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is negated.
    #[must_use]
    pub fn sign(self) -> bool {
        self.0 & 1 == 1
    }

    /// Index for watch lists.
    #[must_use]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.sign() { "¬" } else { "" }, self.var().0)
    }
}

/// Tri-state assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Result of a [`Sat::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment was found (read it with [`Sat::model_value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a decision was reached.
    Unknown,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    lbd: u32,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SatConfig {
    /// Abort with [`SatOutcome::Unknown`] after this many conflicts
    /// (`u64::MAX` = no budget).
    pub max_conflicts: u64,
    /// Variable activity decay factor (0 < d < 1).
    pub var_decay: f64,
    /// Clause activity decay factor.
    pub clause_decay: f64,
    /// Base restart interval in conflicts (scaled by the Luby sequence).
    pub restart_base: u64,
    /// Reduce the learnt-clause database when it exceeds this size.
    pub max_learnts: usize,
    /// Initial phase for fresh variables (overridable per variable with
    /// [`Sat::set_polarity`]).
    pub default_phase: bool,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            max_conflicts: u64::MAX,
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 64,
            max_learnts: 20_000,
            // Prefer maximal values: candidate inputs then violate every
            // sanity check on first contact, so goal-directed enforcement
            // systematically discovers and pins them (matching the paper's
            // Z3-driven behaviour on extreme models).
            default_phase: true,
        }
    }
}

/// The CDCL solver.
pub struct Sat {
    config: SatConfig,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    activity: Vec<f64>,
    heap: Vec<Var>,
    heap_pos: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    var_inc: f64,
    clause_inc: f64,
    n_conflicts: u64,
    n_decisions: u64,
    n_propagations: u64,
    unsat: bool,
    seen: Vec<bool>,
}

impl Default for Sat {
    fn default() -> Self {
        Sat::new(SatConfig::default())
    }
}

impl Sat {
    /// Creates a solver with the given configuration.
    #[must_use]
    pub fn new(config: SatConfig) -> Self {
        Sat {
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            var_inc: 1.0,
            clause_inc: 1.0,
            n_conflicts: 0,
            n_decisions: 0,
            n_propagations: 0,
            unsat: false,
            seen: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assigns.len()).expect("too many variables"));
        self.assigns.push(LBool::Undef);
        self.phase.push(self.config.default_phase);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.heap_pos.push(None);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of conflicts encountered so far.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.n_conflicts
    }

    /// Number of decisions made so far.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.n_decisions
    }

    /// Number of propagated literals so far.
    #[must_use]
    pub fn propagations(&self) -> u64 {
        self.n_propagations
    }

    /// Sets the saved phase of a variable (used as decision polarity).
    /// Seeding phases randomly is how callers obtain diverse models.
    pub fn set_polarity(&mut self, var: Var, phase: bool) {
        self.phase[var.0 as usize] = phase;
    }

    /// Adds a small random bump to a variable's activity — together with
    /// [`Sat::set_polarity`] this diversifies the search between repeated
    /// solves of the same formula.
    pub fn bump_activity_seed(&mut self, var: Var, amount: f64) {
        self.activity[var.0 as usize] += amount;
        self.heap_update(var);
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause / conflicting units at level 0).
    ///
    /// # Panics
    ///
    /// Panics if called after a solving run has begun making decisions
    /// (clauses must be added at decision level 0; this solver restarts to
    /// level 0 after each [`Sat::solve`], so interleaving solve/add is
    /// fine).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "add_clause at decision level 0 only"
        );
        if self.unsat {
            return false;
        }
        // Normalise: sort, dedup, drop tautologies and false literals.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut filtered = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: x ∨ ¬x
            }
            match self.value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(filtered, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let cref = u32::try_from(self.clauses.len()).expect("too many clauses");
        self.watches[(!lits[0]).index()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        });
        cref
    }

    fn value(&self, lit: Lit) -> LBool {
        match self.assigns[lit.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(!lit.sign()),
            LBool::False => LBool::from_bool(lit.sign()),
        }
    }

    /// The model value of `var` after [`SatOutcome::Sat`].
    ///
    /// # Panics
    ///
    /// Panics if the variable is unassigned (no model available).
    #[must_use]
    pub fn model_value(&self, var: Var) -> bool {
        match self.assigns[var.0 as usize] {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => panic!("no model: variable {var:?} unassigned"),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var().0 as usize;
        self.assigns[v] = LBool::from_bool(!lit.sign());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns a conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.n_propagations += 1;
            let widx = p.index(); // watchers of ¬p are stored under p's index after negation below
            let mut ws = std::mem::take(&mut self.watches[widx]);
            let mut kept = 0usize;
            let mut conflict = None;
            'watchers: for wi in 0..ws.len() {
                let w = ws[wi];
                if conflict.is_some() {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                if self.value(w.blocker) == LBool::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    continue; // drop watcher of deleted clause
                }
                // Make sure the false literal (¬p) is at position 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value(first) == LBool::True {
                    ws[kept] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[kept] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                kept += 1;
                if self.value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                } else {
                    self.enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[widx].is_empty());
            self.watches[widx] = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        let a = &mut self.activity[var.0 as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(var);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.clause_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &lits[start..] {
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next clause to resolve with.
            loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().0 as usize] {
                    p = Some(lit);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pv].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("UIP literal");

        // Cheap self-subsumption minimisation: drop literals whose reason
        // clause is entirely covered by the rest of the learnt clause.
        let covered: std::collections::HashSet<u32> = learnt.iter().map(|l| l.var().0).collect();
        let mut minimised = vec![learnt[0]];
        for &l in &learnt[1..] {
            let v = l.var().0 as usize;
            let redundant = match self.reason[v] {
                Some(r) => self.clauses[r as usize].lits.iter().all(|q| {
                    q.var() == l.var()
                        || covered.contains(&q.var().0)
                        || self.level[q.var().0 as usize] == 0
                }),
                None => false,
            };
            if !redundant {
                minimised.push(l);
            }
        }
        // Clear the seen flags of the *pre-minimisation* clause: literals
        // dropped by minimisation must not leak seen state into the next
        // conflict analysis.
        for &l in &learnt {
            self.seen[l.var().0 as usize] = false;
        }
        let learnt = minimised;

        let mut learnt = learnt;
        let backjump = if learnt.len() == 1 {
            0
        } else {
            // Second-highest decision level in the clause; that literal is
            // moved to position 1 so it is watched (required for the
            // two-watched-literal invariant after backjumping).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().0 as usize]
                    > self.level[learnt[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().0 as usize]
        };
        (learnt, backjump)
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().0 as usize;
            self.phase[v] = !lit.sign(); // phase saving
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            self.heap_insert(lit.var());
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.0 as usize] == LBool::Undef {
                self.n_decisions += 1;
                self.trail_lim.push(self.trail.len());
                let phase = self.phase[v.0 as usize];
                let lit = if phase { Lit::pos(v) } else { Lit::neg(v) };
                self.enqueue(lit, None);
                return true;
            }
        }
        false
    }

    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && c.lits.len() > 2
            })
            .collect();
        if learnt_refs.len() < self.config.max_learnts {
            return;
        }
        // Keep the more useful half: low LBD, then high activity.
        learnt_refs.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.lbd.cmp(&cb.lbd).then(
                cb.activity
                    .partial_cmp(&ca.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let locked: std::collections::HashSet<u32> =
            self.reason.iter().flatten().copied().collect();
        for &cref in &learnt_refs[learnt_refs.len() / 2..] {
            if !locked.contains(&cref) {
                self.clauses[cref as usize].deleted = true;
            }
        }
        // Rebuild watches without deleted clauses.
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            let cref = i as u32;
            self.watches[(!c.lits[0]).index()].push(Watcher {
                cref,
                blocker: c.lits[1],
            });
            self.watches[(!c.lits[1]).index()].push(Watcher {
                cref,
                blocker: c.lits[0],
            });
        }
    }

    /// Backtracks to decision level 0, e.g. before adding blocking clauses
    /// during model enumeration. Erases the current model.
    pub fn backtrack_to_root(&mut self) {
        self.cancel_until(0);
    }

    /// Runs the CDCL search.
    pub fn solve(&mut self) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = self.config.restart_base * luby(restart_count);
        let budget_start = self.n_conflicts;

        loop {
            if let Some(confl) = self.propagate() {
                self.n_conflicts += 1;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                if self.n_conflicts - budget_start >= self.config.max_conflicts {
                    self.cancel_until(0);
                    return SatOutcome::Unknown;
                }
                let (learnt, backjump) = self.analyze(confl);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.clauses[cref as usize].lbd = lbd;
                    self.bump_clause(cref);
                    self.enqueue(asserting, Some(cref));
                }
                self.var_inc /= self.config.var_decay;
                self.clause_inc /= self.config.clause_decay;
            } else {
                if conflicts_until_restart == 0 {
                    restart_count += 1;
                    conflicts_until_restart = self.config.restart_base * luby(restart_count);
                    self.cancel_until(0);
                    self.reduce_db();
                    continue;
                }
                if !self.decide() {
                    return SatOutcome::Sat;
                }
            }
        }
    }

    // ---- activity-ordered heap (max-heap with position index) ----------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.0 as usize] > self.activity[b.0 as usize]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.0 as usize].is_some() {
            return;
        }
        self.heap.push(v);
        let i = self.heap.len() - 1;
        self.heap_pos[v.0 as usize] = Some(i as u32);
        self.heap_sift_up(i);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.0 as usize] = None;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.0 as usize] = Some(0);
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_update(&mut self, v: Var) {
        if let Some(i) = self.heap_pos[v.0 as usize] {
            self.heap_sift_up(i as usize);
        }
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].0 as usize] = Some(i as u32);
        self.heap_pos[self.heap[j].0 as usize] = Some(j as u32);
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
#[must_use]
fn luby(i: u64) -> u64 {
    let mut k = 1u32;
    while (1u64 << (k + 1)) - 1 <= i + 1 {
        k += 1;
    }
    let mut x = i;
    let mut kk = k;
    loop {
        if x + 1 == (1u64 << kk) - 1 {
            return 1u64 << (kk - 1);
        }
        if x + 1 < (1u64 << kk) - 1 {
            kk -= 1;
            if kk == 0 {
                return 1;
            }
            continue;
        }
        x -= (1u64 << kk) - 1;
        kk = 1;
        while (1u64 << (kk + 1)) - 1 <= x + 1 {
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Sat, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Sat::default();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        assert!(s.add_clause(&[Lit::neg(v[1])]));
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(v[0]));
        assert!(!s.model_value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Sat::default();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        assert!(!s.add_clause(&[Lit::neg(v[0])]));
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Sat::default();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Sat::default();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        // x0 ∧ (x0→x1) ∧ (x1→x2) … ∧ (x9→¬x0) is unsat.
        let mut s = Sat::default();
        let v = vars(&mut s, 10);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        for i in 0..9 {
            assert!(s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]));
        }
        let ok = s.add_clause(&[Lit::neg(v[9]), Lit::neg(v[0])]);
        // Either rejected at add time or found unsat by search.
        if ok {
            assert_eq!(s.solve(), SatOutcome::Unsat);
        }
    }

    /// Pigeonhole principle PHP(n+1, n): classic small but nontrivial UNSAT
    /// family exercising clause learning.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Sat, Vec<Vec<Var>>) {
        let mut s = Sat::default();
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in &grid {
            let clause: Vec<Lit> = p.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for (p1, row1) in grid.iter().enumerate() {
                for row2 in grid.iter().skip(p1 + 1) {
                    s.add_clause(&[Lit::neg(row1[h]), Lit::neg(row2[h])]);
                }
            }
        }
        (s, grid)
    }

    #[test]
    fn pigeonhole_unsat() {
        let (mut s, _) = pigeonhole(7, 6);
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut s, grid) = pigeonhole(6, 6);
        assert_eq!(s.solve(), SatOutcome::Sat);
        // Verify it is a real assignment: each pigeon in some hole, no
        // hole shared.
        let mut used = [false; 6];
        for p in &grid {
            let hole = p
                .iter()
                .position(|&v| s.model_value(v))
                .expect("pigeon placed");
            assert!(!used[hole], "hole reused");
            used[hole] = true;
        }
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let (mut s, _) = pigeonhole(9, 8);
        s.config.max_conflicts = 5;
        assert_eq!(s.solve(), SatOutcome::Unknown);
    }

    #[test]
    fn phase_seeding_changes_models() {
        // Unconstrained variables: model follows the seeded phase.
        let mut s = Sat::default();
        let v = vars(&mut s, 8);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        for (i, &var) in v.iter().enumerate() {
            s.set_polarity(var, i % 2 == 0);
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(v[2]));
        assert!(!s.model_value(v[3]));
    }

    #[test]
    fn solve_is_rerunnable_with_added_clauses() {
        let mut s = Sat::default();
        let v = vars(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        // Block the found model and re-solve repeatedly: exactly 7 models.
        let mut count = 0;
        loop {
            let blocking: Vec<Lit> = v
                .iter()
                .map(|&var| {
                    if s.model_value(var) {
                        Lit::neg(var)
                    } else {
                        Lit::pos(var)
                    }
                })
                .collect();
            count += 1;
            s.backtrack_to_root();
            if !s.add_clause(&blocking) || s.solve() != SatOutcome::Sat {
                break;
            }
            assert!(count <= 7, "more models than possible");
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic LCG-generated instances, 12 vars, checked against
        // exhaustive enumeration.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n_vars = 12usize;
            let n_clauses = 48 + (round % 13);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..n_clauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n_vars as u64) as usize;
                    let sign = next() % 2 == 0;
                    cl.push((v, sign));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0u32..(1 << n_vars) {
                for cl in &clauses {
                    let ok = cl.iter().any(|&(v, sign)| ((m >> v) & 1 == 1) == sign);
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Sat::default();
            let vs = vars(&mut s, n_vars);
            let mut ok = true;
            for cl in &clauses {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|&(v, sign)| {
                        if sign {
                            Lit::pos(vs[v])
                        } else {
                            Lit::neg(vs[v])
                        }
                    })
                    .collect();
                ok &= s.add_clause(&lits);
            }
            let outcome = if ok { s.solve() } else { SatOutcome::Unsat };
            assert_eq!(
                outcome,
                if brute_sat {
                    SatOutcome::Sat
                } else {
                    SatOutcome::Unsat
                },
                "instance {round} disagrees"
            );
            // If SAT, the model must actually satisfy the formula.
            if outcome == SatOutcome::Sat {
                for cl in &clauses {
                    assert!(cl.iter().any(|&(v, sign)| s.model_value(vs[v]) == sign));
                }
            }
        }
    }
}
