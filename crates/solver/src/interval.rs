//! Unsigned-interval pre-analysis.
//!
//! A cheap three-valued evaluation of conditions over unsigned value
//! ranges. It decides many target constraints without touching the SAT
//! core — e.g. `overflow(width16 * 4)` at width 32 is refuted immediately
//! because the product is bounded by `0xFFFF * 4`. Used as an optional
//! pre-solve step (and benchmarked as an ablation: see
//! `diode-bench`).

use std::collections::HashMap;

use diode_lang::{BinOp, Bv, CastKind, CmpOp, UnOp};
use diode_symbolic::{OvfKind, Sym, SymBool, SymExpr};

/// An inclusive unsigned interval `[lo, hi]` of a `width`-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: u128,
    /// Upper bound (inclusive).
    pub hi: u128,
    /// Bit width of the value.
    pub width: u8,
}

impl Range {
    fn full(width: u8) -> Range {
        Range {
            lo: 0,
            hi: Bv::mask(width),
            width,
        }
    }

    fn exact(bv: Bv) -> Range {
        Range {
            lo: bv.value(),
            hi: bv.value(),
            width: bv.width(),
        }
    }

    fn new(lo: u128, hi: u128, width: u8) -> Range {
        debug_assert!(lo <= hi && hi <= Bv::mask(width));
        Range { lo, hi, width }
    }

    /// True if the interval contains exactly one value.
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }
}

/// Computes the unsigned range of an expression (conservative).
#[must_use]
pub fn expr_range(e: &SymExpr) -> Range {
    let mut cache = HashMap::new();
    range_rec(e, &mut cache)
}

fn range_rec(e: &SymExpr, cache: &mut HashMap<usize, Range>) -> Range {
    let key = e.sym() as *const Sym as usize;
    if let Some(r) = cache.get(&key) {
        return *r;
    }
    let w = e.width();
    let mask = Bv::mask(w);
    let r = match e.sym() {
        Sym::Const(bv) => Range::exact(*bv),
        Sym::InputByte(_) => Range::new(0, 0xff, 8),
        Sym::Un(op, a) => {
            let ra = range_rec(a, cache);
            match op {
                // ~[lo,hi] = [~hi, ~lo] under the width mask.
                UnOp::Not => Range::new(mask - ra.hi, mask - ra.lo, w),
                UnOp::Neg => {
                    if ra.lo == 0 && ra.hi == 0 {
                        Range::exact(Bv::zero(w))
                    } else if ra.lo > 0 {
                        // -[lo,hi] = [2^w - hi, 2^w - lo]
                        Range::new(mask + 1 - ra.hi, mask + 1 - ra.lo, w)
                    } else {
                        Range::full(w)
                    }
                }
            }
        }
        Sym::Bin(op, a, b) => {
            let ra = range_rec(a, cache);
            let rb = range_rec(b, cache);
            match op {
                BinOp::Add => match (ra.lo.checked_add(rb.lo), ra.hi.checked_add(rb.hi)) {
                    (Some(lo), Some(hi)) if hi <= mask => Range::new(lo, hi, w),
                    _ => Range::full(w),
                },
                BinOp::Mul => match (ra.lo.checked_mul(rb.lo), ra.hi.checked_mul(rb.hi)) {
                    (Some(lo), Some(hi)) if hi <= mask => Range::new(lo, hi, w),
                    _ => Range::full(w),
                },
                BinOp::Sub => {
                    if ra.lo >= rb.hi {
                        Range::new(ra.lo - rb.hi, ra.hi - rb.lo, w)
                    } else {
                        Range::full(w)
                    }
                }
                BinOp::UDiv => {
                    // rb.lo > 0 also implies rb.hi > 0, which checked_div
                    // cannot see; spelling both as checked_div would turn a
                    // range fact into per-division fallbacks.
                    #[allow(clippy::manual_checked_ops)]
                    if rb.lo > 0 {
                        Range::new(ra.lo / rb.hi, ra.hi / rb.lo, w)
                    } else {
                        // Zero divisor possible: result may be all-ones.
                        Range::full(w)
                    }
                }
                BinOp::URem => {
                    if rb.lo > 0 {
                        Range::new(0, ra.hi.min(rb.hi - 1), w)
                    } else {
                        Range::new(0, ra.hi.max(rb.hi), w)
                    }
                }
                BinOp::And => Range::new(0, ra.hi.min(rb.hi), w),
                BinOp::Or | BinOp::Xor => {
                    let top = ra.hi.max(rb.hi);
                    let bits = 128 - top.leading_zeros();
                    let hi = if bits >= 128 {
                        mask
                    } else {
                        ((1u128 << bits) - 1).min(mask)
                    };
                    let lo = if *op == BinOp::Or {
                        ra.lo.max(rb.lo)
                    } else {
                        0
                    };
                    Range::new(lo.min(hi), hi, w)
                }
                BinOp::Shl => match rb.is_singleton() {
                    true if rb.lo < u128::from(w) => {
                        let k = rb.lo as u32;
                        match ra.hi.checked_shl(k) {
                            Some(hi) if hi <= mask => Range::new(ra.lo << k, hi, w),
                            _ => Range::full(w),
                        }
                    }
                    _ => Range::full(w),
                },
                BinOp::LShr => Range::new(0, ra.hi, w),
                BinOp::AShr => Range::full(w),
            }
        }
        Sym::Cast(kind, cw, a) => {
            let ra = range_rec(a, cache);
            match kind {
                CastKind::Zext => Range::new(ra.lo, ra.hi, *cw),
                CastKind::Sext => {
                    // Only safe when the sign bit is provably clear.
                    if ra.hi < 1u128 << (a.width() - 1) {
                        Range::new(ra.lo, ra.hi, *cw)
                    } else {
                        Range::full(*cw)
                    }
                }
                CastKind::Trunc => {
                    if ra.hi <= Bv::mask(*cw) {
                        Range::new(ra.lo, ra.hi, *cw)
                    } else {
                        Range::full(*cw)
                    }
                }
            }
        }
    };
    cache.insert(key, r);
    r
}

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely true for every input.
    True,
    /// Definitely false for every input.
    False,
    /// Not decided by interval reasoning.
    Unknown,
}

/// Evaluates a condition over intervals.
///
/// Iterative over the connective spine: compressed loop conditions can be
/// conjunction chains thousands of links long.
#[must_use]
pub fn cond_range(c: &SymBool) -> Tri {
    let mut cache = HashMap::new();
    enum Task<'a> {
        Visit(&'a SymBool),
        Not,
        And,
        Or,
    }
    let mut tasks = vec![Task::Visit(c)];
    let mut values: Vec<Tri> = Vec::new();
    while let Some(task) = tasks.pop() {
        match task {
            Task::Visit(node) => match node {
                SymBool::Not(inner) => {
                    tasks.push(Task::Not);
                    tasks.push(Task::Visit(inner));
                }
                SymBool::And(a, b) => {
                    tasks.push(Task::And);
                    tasks.push(Task::Visit(a));
                    tasks.push(Task::Visit(b));
                }
                SymBool::Or(a, b) => {
                    tasks.push(Task::Or);
                    tasks.push(Task::Visit(a));
                    tasks.push(Task::Visit(b));
                }
                leaf => values.push(cond_leaf(leaf, &mut cache)),
            },
            Task::Not => {
                let v = values.pop().expect("operand");
                values.push(match v {
                    Tri::True => Tri::False,
                    Tri::False => Tri::True,
                    Tri::Unknown => Tri::Unknown,
                });
            }
            Task::And => {
                let (a, b) = (values.pop().expect("lhs"), values.pop().expect("rhs"));
                values.push(match (a, b) {
                    (Tri::False, _) | (_, Tri::False) => Tri::False,
                    (Tri::True, Tri::True) => Tri::True,
                    _ => Tri::Unknown,
                });
            }
            Task::Or => {
                let (a, b) = (values.pop().expect("lhs"), values.pop().expect("rhs"));
                values.push(match (a, b) {
                    (Tri::True, _) | (_, Tri::True) => Tri::True,
                    (Tri::False, Tri::False) => Tri::False,
                    _ => Tri::Unknown,
                });
            }
        }
    }
    values.pop().expect("result")
}

/// Decides a leaf condition (comparison / overflow atom / constant).
fn cond_leaf(c: &SymBool, cache: &mut HashMap<usize, Range>) -> Tri {
    match c {
        SymBool::Const(true) => Tri::True,
        SymBool::Const(false) => Tri::False,
        SymBool::Not(_) | SymBool::And(_, _) | SymBool::Or(_, _) => {
            unreachable!("connectives handled iteratively")
        }
        SymBool::Cmp(op, a, b) => {
            let ra = range_rec(a, cache);
            let rb = range_rec(b, cache);
            match op {
                CmpOp::Ult => cmp_tri(ra, rb, false),
                CmpOp::Ule => cmp_tri(ra, rb, true),
                CmpOp::Ugt => cmp_tri(rb, ra, false),
                CmpOp::Uge => cmp_tri(rb, ra, true),
                CmpOp::Eq => {
                    if ra.is_singleton() && rb.is_singleton() && ra.lo == rb.lo {
                        Tri::True
                    } else if ra.hi < rb.lo || rb.hi < ra.lo {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
                CmpOp::Ne => {
                    if ra.hi < rb.lo || rb.hi < ra.lo {
                        Tri::True
                    } else if ra.is_singleton() && rb.is_singleton() && ra.lo == rb.lo {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
                // Signed comparisons: decided only when both sides are
                // provably in the non-negative half.
                CmpOp::Slt | CmpOp::Sle | CmpOp::Sgt | CmpOp::Sge => {
                    let half = 1u128 << (ra.width - 1);
                    if ra.hi < half && rb.hi < half {
                        match op {
                            CmpOp::Slt => cmp_tri(ra, rb, false),
                            CmpOp::Sle => cmp_tri(ra, rb, true),
                            CmpOp::Sgt => cmp_tri(rb, ra, false),
                            _ => cmp_tri(rb, ra, true),
                        }
                    } else {
                        Tri::Unknown
                    }
                }
            }
        }
        SymBool::Ovf(kind, a, b) => {
            let ra = range_rec(a, cache);
            let w = ra.width;
            let mask = Bv::mask(w);
            match kind {
                OvfKind::Add => {
                    let rb = range_rec(b, cache);
                    match (ra.lo.checked_add(rb.lo), ra.hi.checked_add(rb.hi)) {
                        (Some(lo), _) if lo > mask => Tri::True,
                        (_, Some(hi)) if hi <= mask => Tri::False,
                        _ => Tri::Unknown,
                    }
                }
                OvfKind::Mul => {
                    let rb = range_rec(b, cache);
                    match (ra.lo.checked_mul(rb.lo), ra.hi.checked_mul(rb.hi)) {
                        (Some(lo), _) if lo > mask => Tri::True,
                        (_, Some(hi)) if hi <= mask => Tri::False,
                        _ => Tri::Unknown,
                    }
                }
                OvfKind::Sub => {
                    let rb = range_rec(b, cache);
                    if ra.hi < rb.lo {
                        Tri::True
                    } else if ra.lo >= rb.hi {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
                OvfKind::Shl => {
                    let rb = range_rec(b, cache);
                    if rb.is_singleton() && rb.lo < u128::from(w) {
                        match ra.hi.checked_shl(rb.lo as u32) {
                            Some(hi) if hi <= mask => Tri::False,
                            _ => {
                                if ra.lo.checked_shl(rb.lo as u32).is_none_or(|lo| lo > mask) {
                                    Tri::True
                                } else {
                                    Tri::Unknown
                                }
                            }
                        }
                    } else if ra.is_singleton() && ra.lo == 0 {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
                OvfKind::Neg => {
                    if ra.lo > 0 {
                        Tri::True
                    } else if ra.hi == 0 {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
                OvfKind::Trunc(tw) => {
                    if ra.lo > Bv::mask(*tw) {
                        Tri::True
                    } else if ra.hi <= Bv::mask(*tw) {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
            }
        }
    }
}

fn cmp_tri(a: Range, b: Range, or_equal: bool) -> Tri {
    // a < b (or a <= b).
    if or_equal {
        if a.hi <= b.lo {
            Tri::True
        } else if a.lo > b.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    } else if a.hi < b.lo {
        Tri::True
    } else if a.lo >= b.hi {
        Tri::False
    } else {
        Tri::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_symbolic::overflow_condition;

    fn byte32(off: u32) -> SymExpr {
        SymExpr::input_byte(off).cast(CastKind::Zext, 32)
    }

    fn c32(v: u32) -> SymExpr {
        SymExpr::constant(Bv::u32(v))
    }

    #[test]
    fn byte_range() {
        let r = expr_range(&byte32(0));
        assert_eq!((r.lo, r.hi, r.width), (0, 255, 32));
    }

    #[test]
    fn arithmetic_ranges() {
        let e = byte32(0).bin(BinOp::Mul, c32(4)).bin(BinOp::Add, c32(10));
        let r = expr_range(&e);
        assert_eq!((r.lo, r.hi), (10, 255 * 4 + 10));
        let shifted = byte32(0).bin(BinOp::Shl, c32(8));
        assert_eq!(expr_range(&shifted).hi, 0xff00);
    }

    #[test]
    fn overflowable_mul_is_full_range() {
        let e = byte32(0)
            .bin(BinOp::Shl, c32(24))
            .bin(BinOp::Mul, byte32(1));
        assert_eq!(expr_range(&e), Range::full(32));
    }

    #[test]
    fn refutes_bounded_overflow() {
        // byte * 4 can never overflow 32 bits; the Ovf atom must be False.
        let atom = SymBool::Ovf(OvfKind::Mul, byte32(0), c32(4));
        assert_eq!(cond_range(&atom), Tri::False);
    }

    #[test]
    fn confirms_certain_overflow() {
        let atom = SymBool::Ovf(
            OvfKind::Add,
            c32(0xffff_ffff),
            byte32(0).bin(BinOp::Add, c32(1)),
        );
        assert_eq!(cond_range(&atom), Tri::True);
    }

    #[test]
    fn undecided_overflow_is_unknown() {
        let w = byte32(0).bin(BinOp::Shl, c32(24));
        let atom = SymBool::Ovf(OvfKind::Mul, w.clone(), w);
        assert_eq!(cond_range(&atom), Tri::Unknown);
    }

    #[test]
    fn comparisons_decide_disjoint_ranges() {
        let small = byte32(0); // ≤ 255
        let cond = SymBool::cmp(CmpOp::Ult, small.clone(), c32(1000));
        assert_eq!(cond_range(&cond), Tri::True);
        let cond = SymBool::cmp(CmpOp::Ugt, small, c32(1000));
        assert_eq!(cond_range(&cond), Tri::False);
    }

    #[test]
    fn interval_refutes_unsat_target_constraint() {
        // §4.3-style safe site: pure byte arithmetic that cannot overflow.
        let e = byte32(0).bin(BinOp::Mul, c32(3)).bin(BinOp::Add, c32(64));
        assert_eq!(overflow_condition(&e), SymBool::Const(false));
        // Even when the static discharge in overflow_condition is bypassed,
        // intervals decide the raw atoms.
        let atom = SymBool::Ovf(OvfKind::Add, byte32(0).bin(BinOp::Mul, c32(3)), c32(64));
        assert_eq!(cond_range(&atom), Tri::False);
    }

    #[test]
    fn three_valued_connectives() {
        let t = SymBool::Const(true);
        let unknown = SymBool::cmp(CmpOp::Eq, byte32(0), c32(7));
        assert_eq!(cond_range(&t.and(&unknown)), Tri::Unknown);
        assert_eq!(cond_range(&t.or(&unknown)), Tri::True);
        assert_eq!(cond_range(&unknown.negate()), Tri::Unknown);
    }
}
