//! A thread-safe solver-query cache.
//!
//! DIODE's enforcement loop (paper Figure 7) re-solves a growing
//! constraint φ′∧β on every iteration, the success-rate experiments
//! re-solve the final constraints of every exposed bug, and campaign runs
//! analyze the same applications under several experiments — the same
//! queries recur constantly. This module memoizes `solve` outcomes behind
//! a **structural fingerprint** of the query so any repeat, from any
//! thread, is answered without re-blasting.
//!
//! Keys are 128-bit fingerprints computed bottom-up over the
//! [`SymBool`]/[`SymExpr`] DAG with per-node memoization (shared subtrees
//! hashed once), mixed with the solver-relevant configuration, so two
//! structurally identical queries built independently collide on the same
//! entry while queries solved under different budgets stay separate.
//! `Unknown` outcomes are *not* cached: they indicate an exhausted budget,
//! not a property of the query.
//!
//! The table is sharded: concurrent workers of the `diode-engine`
//! scheduler contend only on the shard owning their key, and the solve
//! itself runs with no lock held (two threads racing on the same fresh
//! query both solve it — wasted work, never wrong answers, because every
//! cacheable outcome is deterministic for a fixed configuration).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use diode_symbolic::{Sym, SymBool, SymExpr};

use crate::solve::{solve_with, SolveResult, SolverConfig};

const SHARD_COUNT: usize = 16;

/// Aggregate cache counters (cheap to copy into reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to be solved.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Approximate bytes resident in stored entries (keys + results).
    pub bytes: u64,
    /// High-water mark of `bytes` over the cache's lifetime.
    pub peak_bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0` when no queries were issued.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memo table for solver queries.
pub struct SolverCache {
    shards: Vec<Mutex<HashMap<u128, SolveResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: diode_obs::ByteGauge,
}

/// Approximate resident cost of one cache entry: the 16-byte key, the
/// hash-map bucket, and the result's model bytes (each a `BTreeMap`
/// node).
fn entry_cost(result: &SolveResult) -> u64 {
    let payload = match result {
        SolveResult::Sat(model) => 24 * model.bytes().len() as u64,
        SolveResult::Unsat | SolveResult::Unknown => 0,
    };
    48 + payload
}

impl Default for SolverCache {
    fn default() -> Self {
        SolverCache::new()
    }
}

impl std::fmt::Debug for SolverCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SolverCache")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("entries", &s.entries)
            .finish()
    }
}

impl SolverCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        SolverCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: diode_obs::ByteGauge::new(),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, SolveResult>> {
        &self.shards[(key >> 64) as usize % SHARD_COUNT]
    }

    /// Solves `cond` under `config`, answering from the cache when a
    /// structurally identical query was solved before.
    ///
    /// Only diversity-free queries go through here; sampled solving (the
    /// success-rate experiments) intentionally varies decision polarities
    /// per call and must not be memoized.
    #[must_use]
    pub fn solve(&self, cond: &SymBool, config: &SolverConfig) -> SolveResult {
        self.solve_with_info(cond, config).0
    }

    /// Like [`SolverCache::solve`], additionally reporting whether the
    /// query was answered from the cache — for per-query hit/miss
    /// attribution in traces. The flag is advisory under concurrency
    /// (two threads racing on a fresh query both report a miss).
    #[must_use]
    pub fn solve_with_info(&self, cond: &SymBool, config: &SolverConfig) -> (SolveResult, bool) {
        let mut span = diode_obs::span(diode_obs::Phase::Solve);
        diode_obs::count("solver.queries", 1);
        let key = query_key(cond, config);
        if let Some(found) = self.shard(key).lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            span.cache_hit(true);
            diode_obs::count("solver.cache_hits", 1);
            return (found.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        span.cache_hit(false);
        let result = solve_with(cond, config, None).0;
        if !matches!(result, SolveResult::Unknown) {
            let cost = entry_cost(&result);
            if self
                .shard(key)
                .lock()
                .unwrap()
                .insert(key, result.clone())
                .is_none()
            {
                // Only a genuinely new entry grows the gauge; a racing
                // duplicate insert replaces an identical result.
                self.bytes.add(cost);
            }
        }
        (result, false)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().unwrap().len()).sum(),
            bytes: self.bytes.current(),
            peak_bytes: self.bytes.peak(),
        }
    }

    /// Drops every entry and zeroes the counters (byte gauges included).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes.reset();
    }
}

fn query_key(cond: &SymBool, config: &SolverConfig) -> u128 {
    let fp = constraint_fingerprint(cond);
    // Mix in the solver-relevant configuration so budget changes don't
    // resurrect results proved under different limits.
    let mut h = seeded_hasher(0xC0FF);
    config.max_conflicts.hash(&mut h);
    config.interval_presolve.hash(&mut h);
    fp ^ u128::from(h.finish())
}

/// A 128-bit structural fingerprint of a constraint: equal for any two
/// structurally identical conditions regardless of how their DAGs are
/// shared or where they were built.
#[must_use]
pub fn constraint_fingerprint(cond: &SymBool) -> u128 {
    let mut memo = HashMap::new();
    fingerprint_cond(cond, &mut memo)
}

/// [`constraint_fingerprint`] rendered as 32 lowercase hex digits — the
/// wire form provenance query events carry, so an audit record's queries
/// can be correlated with the shared cache's keys across runs.
#[must_use]
pub fn fingerprint_hex(cond: &SymBool) -> String {
    format!("{:032x}", constraint_fingerprint(cond))
}

fn seeded_hasher(seed: u64) -> DefaultHasher {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    h
}

fn combine(tag: u64, parts: &[u128]) -> u128 {
    let mut lo = seeded_hasher(tag);
    let mut hi = seeded_hasher(tag.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15);
    for p in parts {
        p.hash(&mut lo);
        p.hash(&mut hi);
    }
    (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
}

fn fingerprint_cond(cond: &SymBool, memo: &mut HashMap<usize, u128>) -> u128 {
    match cond {
        SymBool::Const(b) => combine(0x10, &[u128::from(*b)]),
        SymBool::Cmp(op, a, b) => {
            let t = 0x20 + *op as u64;
            let (fa, fb) = (fingerprint_expr(a, memo), fingerprint_expr(b, memo));
            combine(t, &[fa, fb])
        }
        SymBool::Not(inner) => combine(0x30, &[fingerprint_cond(inner, memo)]),
        SymBool::And(a, b) => combine(
            0x31,
            &[fingerprint_cond(a, memo), fingerprint_cond(b, memo)],
        ),
        SymBool::Or(a, b) => combine(
            0x32,
            &[fingerprint_cond(a, memo), fingerprint_cond(b, memo)],
        ),
        SymBool::Ovf(kind, a, b) => {
            let t = match kind {
                diode_symbolic::OvfKind::Add => 0x40,
                diode_symbolic::OvfKind::Sub => 0x41,
                diode_symbolic::OvfKind::Mul => 0x42,
                diode_symbolic::OvfKind::Shl => 0x43,
                diode_symbolic::OvfKind::Neg => 0x44,
                diode_symbolic::OvfKind::Trunc(w) => 0x100 + u64::from(*w),
            };
            let (fa, fb) = (fingerprint_expr(a, memo), fingerprint_expr(b, memo));
            combine(t, &[fa, fb])
        }
    }
}

fn fingerprint_expr(expr: &SymExpr, memo: &mut HashMap<usize, u128>) -> u128 {
    if let Some(&fp) = memo.get(&expr.node_id()) {
        return fp;
    }
    let fp = match expr.sym() {
        Sym::Const(bv) => combine(0x50, &[u128::from(bv.width()), bv.value()]),
        Sym::InputByte(off) => combine(0x51, &[u128::from(*off)]),
        Sym::Un(op, a) => combine(0x60 + *op as u64, &[fingerprint_expr(a, memo)]),
        Sym::Bin(op, a, b) => {
            let t = 0x70 + *op as u64;
            let (fa, fb) = (fingerprint_expr(a, memo), fingerprint_expr(b, memo));
            combine(t, &[u128::from(expr.width()), fa, fb])
        }
        Sym::Cast(kind, w, a) => {
            let t = 0x90 + *kind as u64;
            combine(t, &[u128::from(*w), fingerprint_expr(a, memo)])
        }
    };
    memo.insert(expr.node_id(), fp);
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_lang::{BinOp, Bv, CastKind, CmpOp};
    use diode_symbolic::overflow_condition;

    fn byte32(off: u32) -> SymExpr {
        SymExpr::input_byte(off).cast(CastKind::Zext, 32)
    }

    fn c32(v: u32) -> SymExpr {
        SymExpr::constant(Bv::u32(v))
    }

    fn beta() -> SymBool {
        let field = byte32(0).bin(BinOp::Shl, c32(8)).bin(BinOp::Or, byte32(1));
        overflow_condition(&field.bin(BinOp::Mul, c32(80_000)))
    }

    #[test]
    fn structurally_equal_queries_share_a_fingerprint() {
        // Built twice, no node sharing between the two.
        assert_eq!(
            constraint_fingerprint(&beta()),
            constraint_fingerprint(&beta())
        );
    }

    #[test]
    fn different_queries_get_different_fingerprints() {
        let a = SymBool::cmp(CmpOp::Ult, byte32(0), c32(10));
        let b = SymBool::cmp(CmpOp::Ult, byte32(0), c32(11));
        let c = SymBool::cmp(CmpOp::Ule, byte32(0), c32(10));
        let d = SymBool::cmp(CmpOp::Ult, byte32(1), c32(10));
        let fps = [
            constraint_fingerprint(&a),
            constraint_fingerprint(&b),
            constraint_fingerprint(&c),
            constraint_fingerprint(&d),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn and_order_is_significant_but_stable() {
        let x = SymBool::cmp(CmpOp::Ult, byte32(0), c32(10));
        let y = SymBool::cmp(CmpOp::Ugt, byte32(1), c32(3));
        assert_eq!(
            constraint_fingerprint(&x.and(&y)),
            constraint_fingerprint(&x.and(&y))
        );
        assert_ne!(
            constraint_fingerprint(&x.and(&y)),
            constraint_fingerprint(&y.and(&x))
        );
    }

    #[test]
    fn repeat_queries_hit() {
        let cache = SolverCache::new();
        let config = SolverConfig::default();
        let first = cache.solve(&beta(), &config);
        assert!(matches!(first, SolveResult::Sat(_)));
        let again = cache.solve(&beta(), &config);
        assert_eq!(first, again);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cached_results_agree_with_direct_solving() {
        let cache = SolverCache::new();
        let config = SolverConfig::default();
        let queries = [
            beta(),
            SymBool::cmp(CmpOp::Ugt, byte32(0), c32(1000)), // unsat
            SymBool::cmp(CmpOp::Ult, byte32(2), c32(7)),
        ];
        for q in &queries {
            let direct = solve_with(q, &config, None).0;
            let cached_cold = cache.solve(q, &config);
            let cached_warm = cache.solve(q, &config);
            // Deterministic solver ⇒ identical models, not just same status.
            assert_eq!(direct, cached_cold);
            assert_eq!(direct, cached_warm);
        }
    }

    #[test]
    fn config_changes_separate_entries() {
        let cache = SolverCache::new();
        let a = SolverConfig::default();
        let b = SolverConfig {
            interval_presolve: false,
            ..SolverConfig::default()
        };
        let unsat = SymBool::cmp(CmpOp::Ugt, byte32(0), c32(1000));
        let _ = cache.solve(&unsat, &a);
        let _ = cache.solve(&unsat, &b);
        assert_eq!(cache.stats().misses, 2, "distinct configs must not collide");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn byte_gauge_grows_per_entry_and_survives_as_peak() {
        let cache = SolverCache::new();
        let config = SolverConfig::default();
        assert_eq!(cache.stats().bytes, 0);
        let _ = cache.solve(&beta(), &config); // sat: key + model bytes
        let after_sat = cache.stats().bytes;
        assert!(
            after_sat > 48,
            "sat entry should charge a model: {after_sat}"
        );
        let _ = cache.solve(&beta(), &config); // hit: no growth
        assert_eq!(cache.stats().bytes, after_sat);
        let unsat = SymBool::cmp(CmpOp::Ugt, byte32(0), c32(1000));
        let _ = cache.solve(&unsat, &config);
        let s = cache.stats();
        assert_eq!(s.bytes, after_sat + 48, "unsat entry is key-only");
        assert_eq!(s.peak_bytes, s.bytes);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SolverCache::new();
        let _ = cache.solve(&beta(), &SolverConfig::default());
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = std::sync::Arc::new(SolverCache::new());
        let config = SolverConfig::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let config = config.clone();
                scope.spawn(move || {
                    for _ in 0..4 {
                        assert!(matches!(cache.solve(&beta(), &config), SolveResult::Sat(_)));
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 16);
        assert!(s.hits >= 12, "expected mostly hits, got {s:?}");
        assert_eq!(s.entries, 1);
    }
}
