//! Bit-blasting: encodes symbolic expressions and conditions into CNF.
//!
//! Every [`SymExpr`] becomes a little-endian vector of literals over the
//! CDCL core in [`crate::sat`]; every [`SymBool`] becomes a single literal.
//! Input bytes are 8 fresh variables each. Expression nodes are cached by
//! DAG identity, so shared sub-expressions are encoded once.
//!
//! Arithmetic circuits are standard: ripple-carry adders, shift-add
//! multipliers (with the full 2w-bit product available for the
//! multiplication-overflow atom), logarithmic barrel shifters, and a
//! relational encoding of division (`n = q·d + r ∧ r < d`, with the
//! SMT-LIB convention for zero divisors). The atomic overflow predicates
//! of [`diode_symbolic::OvfKind`] are encoded exactly:
//!
//! | atom | encoding |
//! |---|---|
//! | `OvfAdd` | carry out of the ripple adder |
//! | `OvfSub` | missing carry (borrow) of `a + ¬b + 1` |
//! | `OvfMul` | OR of the high `w` bits of the 2w-bit product |
//! | `OvfShl` | `lshr(shl(a,k),k) ≠ a` |
//! | `OvfNeg` | `a ≠ 0` |
//! | `OvfShrink(w')` | OR of the dropped bits |

use std::collections::{BTreeMap, HashMap};

use diode_lang::{BinOp, Bv, CastKind, CmpOp, UnOp};
use diode_symbolic::{OvfKind, Sym, SymBool, SymExpr};

use crate::sat::{Lit, Sat};

/// Encodes expressions/conditions into a [`Sat`] instance.
pub struct Blaster<'s> {
    sat: &'s mut Sat,
    lit_true: Lit,
    /// Cache keyed by expression DAG node identity. Holds a clone of the
    /// expression so the pointer stays valid for the cache's lifetime.
    expr_cache: HashMap<usize, (SymExpr, Vec<Lit>)>,
    /// Eight literals per input byte, LSB first.
    byte_bits: BTreeMap<u32, Vec<Lit>>,
}

impl<'s> Blaster<'s> {
    /// Creates a blaster over the given solver.
    pub fn new(sat: &'s mut Sat) -> Self {
        let t = sat.new_var();
        let lit_true = Lit::pos(t);
        sat.add_clause(&[lit_true]);
        Blaster {
            sat,
            lit_true,
            expr_cache: HashMap::new(),
            byte_bits: BTreeMap::new(),
        }
    }

    /// The always-true literal.
    #[must_use]
    pub fn lit_true(&self) -> Lit {
        self.lit_true
    }

    /// The always-false literal.
    #[must_use]
    pub fn lit_false(&self) -> Lit {
        !self.lit_true
    }

    /// The solver variables of each input byte that has been encoded.
    #[must_use]
    pub fn byte_bits(&self) -> &BTreeMap<u32, Vec<Lit>> {
        &self.byte_bits
    }

    /// Mutable access to the underlying SAT solver (polarity seeding,
    /// solving, adding blocking clauses).
    pub fn sat_mut(&mut self) -> &mut Sat {
        self.sat
    }

    /// Shared access to the underlying SAT solver (statistics).
    #[must_use]
    pub fn sat_ref(&self) -> &Sat {
        self.sat
    }

    /// Asserts that `cond` holds.
    pub fn assert_cond(&mut self, cond: &SymBool) {
        let l = self.encode_bool(cond);
        self.sat.add_clause(&[l]);
    }

    /// Asserts that `cond` does not hold.
    pub fn assert_not(&mut self, cond: &SymBool) {
        let l = self.encode_bool(cond);
        self.sat.add_clause(&[!l]);
    }

    /// Reads the model value of an input byte after a satisfiable solve.
    /// Bytes never encoded are unconstrained and absent.
    #[must_use]
    pub fn model_byte(&self, offset: u32) -> Option<u8> {
        let bits = self.byte_bits.get(&offset)?;
        let mut v = 0u8;
        for (i, &l) in bits.iter().enumerate() {
            if self.lit_value(l) {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    fn lit_value(&self, l: Lit) -> bool {
        if l == self.lit_true {
            return true;
        }
        if l == !self.lit_true {
            return false;
        }
        self.sat.model_value(l.var()) != l.sign()
    }

    // ---- gates ------------------------------------------------------------

    fn gate_and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() || b == self.lit_false() {
            return self.lit_false();
        }
        if a == self.lit_true {
            return b;
        }
        if b == self.lit_true {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.lit_false();
        }
        let g = Lit::pos(self.sat.new_var());
        self.sat.add_clause(&[!g, a]);
        self.sat.add_clause(&[!g, b]);
        self.sat.add_clause(&[g, !a, !b]);
        g
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.gate_and(!a, !b)
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() {
            return b;
        }
        if b == self.lit_false() {
            return a;
        }
        if a == self.lit_true {
            return !b;
        }
        if b == self.lit_true {
            return !a;
        }
        if a == b {
            return self.lit_false();
        }
        if a == !b {
            return self.lit_true;
        }
        let g = Lit::pos(self.sat.new_var());
        self.sat.add_clause(&[!g, a, b]);
        self.sat.add_clause(&[!g, !a, !b]);
        self.sat.add_clause(&[g, !a, b]);
        self.sat.add_clause(&[g, a, !b]);
        g
    }

    fn gate_ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == self.lit_true {
            return t;
        }
        if c == self.lit_false() {
            return e;
        }
        if t == e {
            return t;
        }
        let g = Lit::pos(self.sat.new_var());
        self.sat.add_clause(&[!c, !t, g]);
        self.sat.add_clause(&[!c, t, !g]);
        self.sat.add_clause(&[c, !e, g]);
        self.sat.add_clause(&[c, e, !g]);
        // Redundant but strengthens propagation.
        self.sat.add_clause(&[!t, !e, g]);
        self.sat.add_clause(&[t, e, !g]);
        g
    }

    fn gate_iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.gate_xor(a, b)
    }

    fn big_or(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.lit_false();
        for &l in lits {
            acc = self.gate_or(acc, l);
        }
        acc
    }

    fn big_and(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.lit_true;
        for &l in lits {
            acc = self.gate_and(acc, l);
        }
        acc
    }

    // ---- bit vectors -------------------------------------------------------

    fn const_bits(&self, bv: Bv) -> Vec<Lit> {
        (0..bv.width())
            .map(|i| {
                if bv.value() >> i & 1 == 1 {
                    self.lit_true
                } else {
                    !self.lit_true
                }
            })
            .collect()
    }

    fn input_byte_bits(&mut self, offset: u32) -> Vec<Lit> {
        if let Some(bits) = self.byte_bits.get(&offset) {
            return bits.clone();
        }
        let bits: Vec<Lit> = (0..8).map(|_| Lit::pos(self.sat.new_var())).collect();
        self.byte_bits.insert(offset, bits.clone());
        bits
    }

    /// Ripple-carry addition with carry-in; returns (sum, carry-out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.gate_xor(a[i], b[i]);
            sum.push(self.gate_xor(axb, carry));
            let c1 = self.gate_and(a[i], b[i]);
            let c2 = self.gate_and(carry, axb);
            carry = self.gate_or(c1, c2);
        }
        (sum, carry)
    }

    /// Subtraction `a - b`; returns (difference, borrow) where borrow is
    /// true iff `a < b` (unsigned underflow).
    fn subtractor(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let (diff, carry) = self.adder(a, &nb, self.lit_true);
        (diff, !carry)
    }

    /// Full 2w-bit product of two w-bit vectors.
    fn mul_full(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc: Vec<Lit> = vec![self.lit_false(); 2 * w];
        for i in 0..w {
            // Partial product: (a_i ? b : 0) << i, within 2w bits.
            let mut addend: Vec<Lit> = vec![self.lit_false(); 2 * w];
            for j in 0..w {
                addend[i + j] = self.gate_and(a[i], b[j]);
            }
            let (sum, _) = self.adder(&acc, &addend, self.lit_false());
            acc = sum;
        }
        acc
    }

    /// Comparator `a < b` (unsigned).
    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut lt = self.lit_false();
        for i in 0..a.len() {
            // From LSB to MSB: higher bits dominate.
            let bit_lt = self.gate_and(!a[i], b[i]);
            let eq = self.gate_iff(a[i], b[i]);
            let keep = self.gate_and(eq, lt);
            lt = self.gate_or(bit_lt, keep);
        }
        lt
    }

    fn equal(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let iffs: Vec<Lit> = (0..a.len()).map(|i| self.gate_iff(a[i], b[i])).collect();
        self.big_and(&iffs)
    }

    fn is_nonzero(&mut self, a: &[Lit]) -> Lit {
        self.big_or(a)
    }

    /// `amount >= k` for a constant k (unsigned).
    fn geq_const(&mut self, a: &[Lit], k: u128) -> Lit {
        let kb = self.const_bits(Bv::new(a.len() as u8, k));
        let lt = self.ult(a, &kb);
        !lt
    }

    /// Barrel shifter. `dir_left` selects shl; `arith` selects sign fill
    /// for right shifts. Semantics for `amount >= width`: all zeros (or
    /// all sign bits for arithmetic right shift).
    fn shifter(&mut self, a: &[Lit], amount: &[Lit], dir_left: bool, arith: bool) -> Vec<Lit> {
        let w = a.len();
        let sign = *a.last().expect("width >= 1");
        let fill = if arith { sign } else { self.lit_false() };
        let mut cur: Vec<Lit> = a.to_vec();
        // Stages for amount bits 0..s where 2^s covers w-1.
        let stages = (usize::BITS - (w - 1).leading_zeros()) as usize;
        for (k, &amount_bit) in amount.iter().enumerate().take(stages) {
            let step = 1usize << k;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if dir_left {
                    if i >= step {
                        cur[i - step]
                    } else {
                        self.lit_false()
                    }
                } else if i + step < w {
                    cur[i + step]
                } else {
                    fill
                };
                next.push(self.gate_ite(amount_bit, shifted, cur[i]));
            }
            cur = next;
        }
        // Any amount >= w yields fill (checked on the full amount value).
        let huge = self.geq_const(amount, w as u128);
        cur.into_iter()
            .map(|bit| self.gate_ite(huge, fill, bit))
            .collect()
    }

    /// Relational division encoding; returns (quotient, remainder).
    fn divider(&mut self, n: &[Lit], d: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = n.len();
        let q: Vec<Lit> = (0..w).map(|_| Lit::pos(self.sat.new_var())).collect();
        let r: Vec<Lit> = (0..w).map(|_| Lit::pos(self.sat.new_var())).collect();
        let d_nonzero = self.is_nonzero(d);

        // d == 0 → q = ~0, r = n (SMT-LIB).
        for i in 0..w {
            self.sat.add_clause(&[d_nonzero, q[i]]);
            let riff = self.gate_iff(r[i], n[i]);
            self.sat.add_clause(&[d_nonzero, riff]);
        }

        // d != 0 → n == q*d + r (2w bits, no wrap) ∧ r < d.
        let prod = self.mul_full(&q, d);
        let mut r2: Vec<Lit> = r.clone();
        r2.resize(2 * w, self.lit_false());
        let (sum, _) = self.adder(&prod, &r2, self.lit_false());
        let mut n2: Vec<Lit> = n.to_vec();
        n2.resize(2 * w, self.lit_false());
        let eq = self.equal(&sum, &n2);
        let rlt = self.ult(&r, d);
        self.sat.add_clause(&[!d_nonzero, eq]);
        self.sat.add_clause(&[!d_nonzero, rlt]);
        (q, r)
    }

    // ---- expressions -------------------------------------------------------

    /// Encodes an expression to its literal vector (cached by DAG node).
    pub fn encode_expr(&mut self, e: &SymExpr) -> Vec<Lit> {
        let key = e.sym() as *const Sym as usize;
        if let Some((_, bits)) = self.expr_cache.get(&key) {
            return bits.clone();
        }
        let bits = match e.sym() {
            Sym::Const(bv) => self.const_bits(*bv),
            Sym::InputByte(off) => self.input_byte_bits(*off),
            Sym::Un(op, a) => {
                let ab = self.encode_expr(a);
                match op {
                    UnOp::Not => ab.into_iter().map(|l| !l).collect(),
                    UnOp::Neg => {
                        let nb: Vec<Lit> = ab.iter().map(|&l| !l).collect();
                        let one = self.const_bits(Bv::new(a.width(), 1));
                        self.adder(&nb, &one, self.lit_false()).0
                    }
                }
            }
            Sym::Bin(op, a, b) => {
                let ab = self.encode_expr(a);
                let bb = self.encode_expr(b);
                match op {
                    BinOp::Add => self.adder(&ab, &bb, self.lit_false()).0,
                    BinOp::Sub => self.subtractor(&ab, &bb).0,
                    BinOp::Mul => {
                        let full = self.mul_full(&ab, &bb);
                        full[..ab.len()].to_vec()
                    }
                    BinOp::UDiv => self.divider(&ab, &bb).0,
                    BinOp::URem => self.divider(&ab, &bb).1,
                    BinOp::And => (0..ab.len()).map(|i| self.gate_and(ab[i], bb[i])).collect(),
                    BinOp::Or => (0..ab.len()).map(|i| self.gate_or(ab[i], bb[i])).collect(),
                    BinOp::Xor => (0..ab.len()).map(|i| self.gate_xor(ab[i], bb[i])).collect(),
                    BinOp::Shl => self.shifter(&ab, &bb, true, false),
                    BinOp::LShr => self.shifter(&ab, &bb, false, false),
                    BinOp::AShr => self.shifter(&ab, &bb, false, true),
                }
            }
            Sym::Cast(kind, w, a) => {
                let ab = self.encode_expr(a);
                match kind {
                    CastKind::Zext => {
                        let mut bits = ab;
                        bits.resize(*w as usize, self.lit_false());
                        bits
                    }
                    CastKind::Sext => {
                        let sign = *ab.last().expect("width >= 1");
                        let mut bits = ab;
                        bits.resize(*w as usize, sign);
                        bits
                    }
                    CastKind::Trunc => ab[..*w as usize].to_vec(),
                }
            }
        };
        self.expr_cache.insert(key, (e.clone(), bits.clone()));
        bits
    }

    /// Encodes a condition to a single literal.
    ///
    /// Iterative over the connective spine (Not/And/Or): compressed branch
    /// conditions can be conjunction chains thousands of links long, so
    /// recursion depth must not scale with them. Leaf encodings
    /// (comparisons, overflow atoms) recurse over expression DAGs whose
    /// depth is bounded by the program's arithmetic, not by trip counts.
    pub fn encode_bool(&mut self, c: &SymBool) -> Lit {
        enum Task<'a> {
            Visit(&'a SymBool),
            Not,
            And,
            Or,
        }
        let mut tasks = vec![Task::Visit(c)];
        let mut lits: Vec<Lit> = Vec::new();
        while let Some(task) = tasks.pop() {
            match task {
                Task::Visit(node) => match node {
                    SymBool::Const(true) => lits.push(self.lit_true),
                    SymBool::Const(false) => lits.push(self.lit_false()),
                    SymBool::Cmp(op, a, b) => {
                        let ab = self.encode_expr(a);
                        let bb = self.encode_expr(b);
                        let l = self.encode_cmp(*op, &ab, &bb);
                        lits.push(l);
                    }
                    SymBool::Not(inner) => {
                        tasks.push(Task::Not);
                        tasks.push(Task::Visit(inner));
                    }
                    SymBool::And(x, y) => {
                        tasks.push(Task::And);
                        tasks.push(Task::Visit(x));
                        tasks.push(Task::Visit(y));
                    }
                    SymBool::Or(x, y) => {
                        tasks.push(Task::Or);
                        tasks.push(Task::Visit(x));
                        tasks.push(Task::Visit(y));
                    }
                    SymBool::Ovf(kind, a, b) => {
                        let l = self.encode_ovf(*kind, a, b);
                        lits.push(l);
                    }
                },
                Task::Not => {
                    let l = lits.pop().expect("operand");
                    lits.push(!l);
                }
                Task::And => {
                    let (a, b) = (lits.pop().expect("lhs"), lits.pop().expect("rhs"));
                    let l = self.gate_and(a, b);
                    lits.push(l);
                }
                Task::Or => {
                    let (a, b) = (lits.pop().expect("lhs"), lits.pop().expect("rhs"));
                    let l = self.gate_or(a, b);
                    lits.push(l);
                }
            }
        }
        lits.pop().expect("result")
    }

    fn encode_cmp(&mut self, op: CmpOp, a: &[Lit], b: &[Lit]) -> Lit {
        match op {
            CmpOp::Eq => self.equal(a, b),
            CmpOp::Ne => {
                let e = self.equal(a, b);
                !e
            }
            CmpOp::Ult => self.ult(a, b),
            CmpOp::Ugt => self.ult(b, a),
            CmpOp::Ule => {
                let gt = self.ult(b, a);
                !gt
            }
            CmpOp::Uge => {
                let lt = self.ult(a, b);
                !lt
            }
            CmpOp::Slt | CmpOp::Sle | CmpOp::Sgt | CmpOp::Sge => {
                // Signed comparisons: flip both sign bits and compare
                // unsigned.
                let mut af = a.to_vec();
                let mut bf = b.to_vec();
                let last = af.len() - 1;
                af[last] = !af[last];
                bf[last] = !bf[last];
                match op {
                    CmpOp::Slt => self.ult(&af, &bf),
                    CmpOp::Sgt => self.ult(&bf, &af),
                    CmpOp::Sle => {
                        let gt = self.ult(&bf, &af);
                        !gt
                    }
                    _ => {
                        let lt = self.ult(&af, &bf);
                        !lt
                    }
                }
            }
        }
    }

    fn encode_ovf(&mut self, kind: OvfKind, a: &SymExpr, b: &SymExpr) -> Lit {
        let ab = self.encode_expr(a);
        match kind {
            OvfKind::Add => {
                let bb = self.encode_expr(b);
                self.adder(&ab, &bb, self.lit_false()).1
            }
            OvfKind::Sub => {
                let bb = self.encode_expr(b);
                self.subtractor(&ab, &bb).1
            }
            OvfKind::Mul => {
                let bb = self.encode_expr(b);
                let full = self.mul_full(&ab, &bb);
                let high = full[ab.len()..].to_vec();
                self.big_or(&high)
            }
            OvfKind::Shl => {
                let bb = self.encode_expr(b);
                let shifted = self.shifter(&ab, &bb, true, false);
                let back = self.shifter(&shifted, &bb, false, false);
                let same = self.equal(&back, &ab);
                !same
            }
            OvfKind::Neg => self.is_nonzero(&ab),
            OvfKind::Trunc(w) => {
                let high = ab[w as usize..].to_vec();
                self.big_or(&high)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;
    use diode_symbolic::overflow_condition;

    /// Solves `cond` and returns the model as a byte lookup (0 default).
    fn solve_model(cond: &SymBool) -> Option<BTreeMap<u32, u8>> {
        let mut sat = Sat::default();
        let mut bl = Blaster::new(&mut sat);
        bl.assert_cond(cond);
        let offsets: Vec<u32> = bl.byte_bits().keys().copied().collect();
        match bl.sat_mut().solve() {
            SatOutcome::Sat => {
                let m = offsets
                    .into_iter()
                    .map(|o| (o, bl.model_byte(o).expect("encoded byte")))
                    .collect();
                Some(m)
            }
            SatOutcome::Unsat => None,
            SatOutcome::Unknown => panic!("unexpected budget exhaustion"),
        }
    }

    fn check_model_satisfies(cond: &SymBool, model: &BTreeMap<u32, u8>) {
        assert!(
            cond.eval(&|o| model.get(&o).copied().unwrap_or(0)),
            "model does not satisfy condition"
        );
    }

    fn byte32(off: u32) -> SymExpr {
        SymExpr::input_byte(off).cast(CastKind::Zext, 32)
    }

    fn c(width: u8, v: u128) -> SymExpr {
        SymExpr::constant(Bv::new(width, v))
    }

    fn field32(base: u32) -> SymExpr {
        let b0 = byte32(base).bin(BinOp::Shl, c(32, 24));
        let b1 = byte32(base + 1).bin(BinOp::Shl, c(32, 16));
        let b2 = byte32(base + 2).bin(BinOp::Shl, c(32, 8));
        b0.bin(BinOp::Or, b1)
            .bin(BinOp::Or, b2)
            .bin(BinOp::Or, byte32(base + 3))
    }

    #[test]
    fn eq_constant_pins_bytes() {
        let cond = SymBool::cmp(CmpOp::Eq, field32(0), c(32, 0xDEAD_BEEF));
        let m = solve_model(&cond).expect("sat");
        assert_eq!(m[&0], 0xDE);
        assert_eq!(m[&1], 0xAD);
        assert_eq!(m[&2], 0xBE);
        assert_eq!(m[&3], 0xEF);
    }

    #[test]
    fn arithmetic_circuit_agrees_with_eval() {
        // (in[0]*in[1] + in[2]) == 977 has solutions; the model must agree
        // with concrete evaluation.
        let e = byte32(0)
            .bin(BinOp::Mul, byte32(1))
            .bin(BinOp::Add, byte32(2));
        let cond = SymBool::cmp(CmpOp::Eq, e.clone(), c(32, 977));
        let m = solve_model(&cond).expect("sat");
        check_model_satisfies(&cond, &m);
        let get = |o: u32| m.get(&o).copied().unwrap_or(0);
        assert_eq!(e.eval(&get).value(), 977);
    }

    #[test]
    fn unsat_when_range_impossible() {
        // A single byte cannot exceed 255.
        let cond = SymBool::cmp(CmpOp::Ugt, byte32(0), c(32, 300));
        assert!(solve_model(&cond).is_none());
    }

    #[test]
    fn subtraction_and_comparison() {
        let cond = SymBool::cmp(
            CmpOp::Eq,
            byte32(0).bin(BinOp::Sub, byte32(1)),
            c(32, 0xffff_fffb), // -5: requires in[0] + 5 == in[1] (mod 2^32)
        );
        let m = solve_model(&cond).expect("sat");
        check_model_satisfies(&cond, &m);
        assert_eq!(i64::from(m[&1]) - i64::from(m[&0]), 5);
    }

    #[test]
    fn division_circuit() {
        // in[0] / in[1] == 7 ∧ in[0] % in[1] == 3 (nonzero divisor > 3).
        let q = byte32(0).bin(BinOp::UDiv, byte32(1));
        let r = byte32(0).bin(BinOp::URem, byte32(1));
        let cond = SymBool::cmp(CmpOp::Eq, q, c(32, 7)).and(&SymBool::cmp(CmpOp::Eq, r, c(32, 3)));
        let m = solve_model(&cond).expect("sat");
        check_model_satisfies(&cond, &m);
        let (n, d) = (u32::from(m[&0]), u32::from(m[&1]));
        assert_eq!(n / d, 7);
        assert_eq!(n % d, 3);
    }

    #[test]
    fn division_by_zero_is_all_ones() {
        let q = byte32(0).bin(BinOp::UDiv, c(32, 0));
        let cond = SymBool::cmp(CmpOp::Eq, q, c(32, 0xffff_ffff));
        let m = solve_model(&cond).expect("sat — any in[0] works");
        check_model_satisfies(&cond, &m);
    }

    #[test]
    fn variable_shifts() {
        // (1 << in[0]) == 4096 forces in[0] == 12.
        let e = c(32, 1).bin(BinOp::Shl, byte32(0));
        let cond = SymBool::cmp(CmpOp::Eq, e, c(32, 4096));
        let m = solve_model(&cond).expect("sat");
        assert_eq!(m[&0], 12);
        // (0x8000 >> in[0]) == 8 forces in[0] == 12.
        let e = c(32, 0x8000).bin(BinOp::LShr, byte32(0));
        let cond = SymBool::cmp(CmpOp::Eq, e, c(32, 8));
        let m = solve_model(&cond).expect("sat");
        assert_eq!(m[&0], 12);
    }

    #[test]
    fn overshift_yields_zero() {
        // in[0] >= 32 and (1 << in[0]) == 0 simultaneously: satisfiable.
        let sh = c(32, 1).bin(BinOp::Shl, byte32(0));
        let cond = SymBool::cmp(CmpOp::Eq, sh, c(32, 0)).and(&SymBool::cmp(
            CmpOp::Uge,
            byte32(0),
            c(32, 32),
        ));
        let m = solve_model(&cond).expect("sat");
        assert!(m[&0] >= 32);
    }

    #[test]
    fn ashr_fills_sign() {
        // sext32(in[0]) ashr 4 == 0xFFFFFFFF requires a negative byte
        // with high nibble all ones: in[0] in 0xF0..=0xFF.
        let e = SymExpr::input_byte(0)
            .cast(CastKind::Sext, 32)
            .bin(BinOp::AShr, c(32, 4));
        let cond = SymBool::cmp(CmpOp::Eq, e, c(32, 0xffff_ffff));
        let m = solve_model(&cond).expect("sat");
        assert!(m[&0] >= 0xf0);
    }

    #[test]
    fn signed_comparison() {
        // slt(sext32(in[0]), 0) requires in[0] >= 0x80.
        let cond = SymBool::cmp(
            CmpOp::Slt,
            SymExpr::input_byte(0).cast(CastKind::Sext, 32),
            c(32, 0),
        );
        let m = solve_model(&cond).expect("sat");
        assert!(m[&0] >= 0x80);
    }

    #[test]
    fn add_overflow_atom() {
        // x + 2 overflows at 32 bits only for x in {0xFFFFFFFE, 0xFFFFFFFF}.
        let beta = overflow_condition(&field32(0).bin(BinOp::Add, c(32, 2)));
        let m = solve_model(&beta).expect("sat");
        let x = u32::from_be_bytes([m[&0], m[&1], m[&2], m[&3]]);
        assert!(x >= 0xffff_fffe, "x = {x:#x}");
    }

    #[test]
    fn mul_overflow_atom_sat_and_model_checked() {
        let beta = overflow_condition(&field32(0).bin(BinOp::Mul, field32(4)));
        let m = solve_model(&beta).expect("sat");
        check_model_satisfies(&beta, &m);
        let get = |o: u32| m.get(&o).copied().unwrap_or(0);
        let a = field32(0).eval(&get).value();
        let b = field32(4).eval(&get).value();
        assert!(a * b > u128::from(u32::MAX));
    }

    #[test]
    fn mul_overflow_atom_unsat_when_bounded() {
        // (in[0] zext32) * (in[1] zext32) ≤ 255*255 — never overflows; but
        // overflow_condition already discharges this statically, so force
        // the atom through the encoder to check the circuit itself.
        let a = byte32(0);
        let b = byte32(1);
        let atom = SymBool::Ovf(OvfKind::Mul, a, b);
        assert!(solve_model(&atom).is_none());
    }

    #[test]
    fn shl_overflow_atom() {
        // in[0] << 25 at width 32 overflows iff in[0] >= 2^7.
        let atom = SymBool::Ovf(OvfKind::Shl, byte32(0), c(32, 25));
        let m = solve_model(&atom).expect("sat");
        assert!(m[&0] >= 128, "in[0] = {}", m[&0]);
        check_model_satisfies(&atom, &m);
    }

    #[test]
    fn trunc_overflow_atom() {
        let atom = SymBool::Ovf(OvfKind::Trunc(8), field32(0), field32(0));
        let m = solve_model(&atom).expect("sat");
        let x = u32::from_be_bytes([m[&0], m[&1], m[&2], m[&3]]);
        assert!(x > 0xff);
    }

    #[test]
    fn sub_overflow_atom() {
        let atom = SymBool::Ovf(OvfKind::Sub, byte32(0), byte32(1));
        let m = solve_model(&atom).expect("sat");
        assert!(m[&0] < m[&1]);
    }

    #[test]
    fn neg_overflow_atom() {
        let atom = SymBool::Ovf(OvfKind::Neg, byte32(0), byte32(0));
        let m = solve_model(&atom).expect("sat");
        assert_ne!(m[&0], 0);
    }

    #[test]
    fn dillo_style_target_constraint_solves() {
        // rowbytes(width, depth) * height with 4-byte width/height fields
        // and a 1-byte depth — the Figure 2 shape.
        let width = field32(0);
        let height = field32(4);
        let depth = byte32(8);
        let rowbytes = width
            .bin(BinOp::Mul, depth.bin(BinOp::Mul, c(32, 4)))
            .bin(BinOp::LShr, c(32, 3));
        let target = rowbytes.bin(BinOp::Mul, height);
        let beta = overflow_condition(&target);
        let m = solve_model(&beta).expect("sat");
        check_model_satisfies(&beta, &m);
        // And the concrete evaluation indeed overflows.
        let get = |o: u32| m.get(&o).copied().unwrap_or(0);
        assert!(target.eval_overflow(&get).1);
    }

    #[test]
    fn conjunction_with_branch_constraint() {
        // β ∧ (width < 1_000_000): the enforcement loop's φ' ∧ β query.
        let width = field32(0);
        let height = field32(4);
        let target = width.bin(BinOp::Mul, height);
        let beta = overflow_condition(&target);
        let sanity = SymBool::cmp(CmpOp::Ult, width.clone(), c(32, 1_000_000));
        let both = sanity.and(&beta);
        let m = solve_model(&both).expect("sat");
        check_model_satisfies(&both, &m);
        let get = |o: u32| m.get(&o).copied().unwrap_or(0);
        assert!(width.eval(&get).value() < 1_000_000);
        assert!(target.eval_overflow(&get).1);
    }

    #[test]
    fn unsat_conjunction_of_tight_sanity_checks() {
        // width < 1000 ∧ height < 1000 ∧ overflow(width*height): 1000*1000
        // < 2^32, so no input passes both checks and overflows.
        let width = field32(0);
        let height = field32(4);
        let beta = overflow_condition(&width.bin(BinOp::Mul, height.clone()));
        let s1 = SymBool::cmp(CmpOp::Ult, width, c(32, 1000));
        let s2 = SymBool::cmp(CmpOp::Ult, height, c(32, 1000));
        assert!(solve_model(&s1.and(&s2).and(&beta)).is_none());
    }
}
