//! Property tests for the solver: soundness of SAT answers (models really
//! satisfy the constraint), agreement of UNSAT answers with brute force
//! over small byte spaces, interval-analysis soundness, and enumeration
//! completeness.

use diode_lang::{BinOp, Bv, CastKind, CmpOp};
use diode_solver::{enumerate, interval, solve, SolverConfig};
use diode_symbolic::{overflow_condition, SymBool, SymExpr};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Recipe {
    Byte(u32),
    Const(u32),
    Bin(BinOp, Box<Recipe>, Box<Recipe>),
}

fn build(r: &Recipe) -> SymExpr {
    match r {
        Recipe::Byte(o) => SymExpr::input_byte(*o).cast(CastKind::Zext, 32),
        Recipe::Const(v) => SymExpr::constant(Bv::u32(*v)),
        Recipe::Bin(op, a, b) => build(a).bin(*op, build(b)),
    }
}

fn arb_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
    ]
}

/// Expressions over at most TWO input bytes so brute force is feasible.
fn arb_recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u32..2).prop_map(Recipe::Byte),
        // Shift-friendly constants keep Shl interesting without blowup.
        prop_oneof![0u32..40, 0x100u32..0x2000, Just(0xffff_fff0u32)].prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (arb_op(), inner.clone(), inner)
            .prop_map(|(op, a, b)| Recipe::Bin(op, Box::new(a), Box::new(b)))
    })
}

fn arb_cond() -> impl Strategy<Value = SymBool> {
    let cmp = prop_oneof![
        Just(CmpOp::Ult),
        Just(CmpOp::Ule),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Slt),
    ];
    prop_oneof![
        (arb_recipe(), cmp, 0u32..0x300).prop_map(|(r, op, k)| SymBool::cmp(
            op,
            build(&r),
            SymExpr::constant(Bv::u32(k))
        )),
        arb_recipe().prop_map(|r| overflow_condition(&build(&r))),
    ]
}

fn brute_force(cond: &SymBool) -> Vec<(u8, u8)> {
    let mut models = Vec::new();
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            if cond.eval(&|o| if o == 0 { a } else { b }) {
                models.push((a, b));
            }
        }
    }
    models
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_agrees_with_brute_force(c1 in arb_cond(), c2 in arb_cond()) {
        let cond = c1.and(&c2);
        let brute = brute_force(&cond);
        match solve(&cond) {
            diode_solver::SolveResult::Sat(m) => {
                prop_assert!(!brute.is_empty(), "solver SAT but brute force found nothing");
                // The model must actually satisfy the condition.
                prop_assert!(cond.eval(&m.lookup_over(&[])));
            }
            diode_solver::SolveResult::Unsat => {
                prop_assert!(brute.is_empty(), "solver UNSAT but {} models exist", brute.len());
            }
            diode_solver::SolveResult::Unknown => prop_assert!(false, "budget exhausted"),
        }
    }

    #[test]
    fn interval_analysis_is_sound(c in arb_cond()) {
        // Tri::False must imply no models; Tri::True must imply all inputs
        // are models.
        match interval::cond_range(&c) {
            interval::Tri::False => {
                prop_assert!(brute_force(&c).is_empty(), "interval refuted a satisfiable condition");
            }
            interval::Tri::True => {
                prop_assert_eq!(brute_force(&c).len(), 256 * 256);
            }
            interval::Tri::Unknown => {}
        }
    }

    #[test]
    fn enumeration_matches_brute_force_when_small(c in arb_cond()) {
        let brute = brute_force(&c);
        prop_assume!(brute.len() <= 6);
        let e = enumerate(&c, 8, &SolverConfig::default());
        prop_assert!(e.complete);
        let mut got: Vec<(u8, u8)> = e
            .models
            .iter()
            .map(|m| (m.byte(0).unwrap_or(0), m.byte(1).unwrap_or(0)))
            .collect();
        got.sort_unstable();
        // Every enumerated model is a brute-force model…
        for g in &got {
            prop_assert!(brute.contains(g));
        }
        // …and when the condition constrains both bytes, counts match.
        let bytes = c.input_bytes();
        if bytes.contains(&0) && bytes.contains(&1) {
            prop_assert_eq!(got.len(), brute.len());
        }
    }
}
