//! Criterion benchmark for the Table 2 per-site experiments: discovery of
//! the Figure 2 overflow (goal-directed enforcement end to end) and one
//! success-rate sampling batch.

use criterion::{criterion_group, criterion_main, Criterion};
use diode_core::{analyze_site, identify_target_sites, success_rate, DiodeConfig, SiteOutcome};

fn bench_discovery(c: &mut Criterion) {
    let app = diode_apps::dillo::app();
    let config = DiodeConfig::default();
    let targets = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = targets
        .iter()
        .find(|t| &*t.site == "png.c@203")
        .expect("figure 2 site");

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("discover_png.c@203_with_enforcement", |b| {
        b.iter(|| {
            let report = analyze_site(&app.program, &app.seed, &app.format, fig2, &config);
            assert!(matches!(report.outcome, SiteOutcome::Exposed(_)));
            std::hint::black_box(report.discovery_time)
        })
    });

    let report = analyze_site(&app.program, &app.seed, &app.format, fig2, &config);
    let extraction = report.extraction.as_ref().unwrap();
    group.bench_function("success_rate_10_samples", |b| {
        b.iter(|| {
            std::hint::black_box(success_rate(
                &app.program,
                &app.seed,
                &app.format,
                report.label,
                &extraction.beta,
                10,
                7,
                &config,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
