//! Criterion benchmarks for the interpreter substrate: concrete execution
//! vs taint tracing vs symbolic recording on the benchmark seeds —
//! the staging overheads of §1.3.

use criterion::{criterion_group, criterion_main, Criterion};
use diode_interp::{run, Concrete, MachineConfig, Symbolic, Taint};

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_seed_run");
    group.sample_size(30);
    for app in diode_apps::all_apps() {
        let cfg = MachineConfig::default();
        group.bench_function(format!("{}_concrete", app.name), |b| {
            b.iter(|| std::hint::black_box(run(&app.program, &app.seed, Concrete, &cfg).steps))
        });
        group.bench_function(format!("{}_taint", app.name), |b| {
            b.iter(|| std::hint::black_box(run(&app.program, &app.seed, Taint, &cfg).steps))
        });
        group.bench_function(format!("{}_symbolic", app.name), |b| {
            b.iter(|| {
                std::hint::black_box(
                    run(&app.program, &app.seed, Symbolic::all_bytes(), &cfg).steps,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
