//! Criterion benchmark for the §5.4 full-path experiment and the
//! interval-presolve ablation on whole-suite classification.

use criterion::{criterion_group, criterion_main, Criterion};
use diode_core::{
    analyze_program, extract, full_path_constraint_satisfiable, identify_target_sites, DiodeConfig,
};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let app = diode_apps::dillo::app();
    let config = DiodeConfig::default();
    let targets = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = targets.iter().find(|t| &*t.site == "png.c@203").unwrap();
    let extraction = extract(&app.program, &app.seed, fig2, &config.machine).unwrap();
    group.bench_function("full_path_unsat_png.c@203", |b| {
        b.iter(|| {
            assert_eq!(
                full_path_constraint_satisfiable(&extraction, &config.solver),
                Some(false)
            )
        })
    });

    let vlc = diode_apps::vlc::app();
    for presolve in [true, false] {
        let mut cfg = DiodeConfig::default();
        cfg.solver.interval_presolve = presolve;
        group.bench_function(format!("classify_vlc_presolve_{presolve}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    analyze_program(&vlc.program, &vlc.seed, &vlc.format, &cfg).counts(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
