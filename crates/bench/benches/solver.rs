//! Criterion benchmarks for the solver substrate: bit-blasting + CDCL on
//! the kinds of constraints DIODE generates.

use criterion::{criterion_group, criterion_main, Criterion};
use diode_lang::{BinOp, Bv, CastKind};
use diode_solver::{enumerate, solve, solve_with, SolverConfig};
use diode_symbolic::{overflow_condition, SymExpr};

fn byte32(off: u32) -> SymExpr {
    SymExpr::input_byte(off).cast(CastKind::Zext, 32)
}

fn c32(v: u32) -> SymExpr {
    SymExpr::constant(Bv::u32(v))
}

fn field32(base: u32) -> SymExpr {
    byte32(base)
        .bin(BinOp::Shl, c32(24))
        .bin(BinOp::Or, byte32(base + 1).bin(BinOp::Shl, c32(16)))
        .bin(BinOp::Or, byte32(base + 2).bin(BinOp::Shl, c32(8)))
        .bin(BinOp::Or, byte32(base + 3))
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    let beta_mul = overflow_condition(&field32(0).bin(BinOp::Mul, field32(4)));
    group.bench_function("sat_overflow_mul32", |b| {
        b.iter(|| std::hint::black_box(solve(&beta_mul).model().is_some()))
    });

    let beta_add = overflow_condition(&field32(0).bin(BinOp::Add, c32(2)));
    group.bench_function("enumerate_x_plus_2", |b| {
        b.iter(|| {
            let e = enumerate(&beta_add, 10, &SolverConfig::default());
            assert_eq!(e.models.len(), 2);
        })
    });

    // Division-heavy constraint (the dec.c@277 shape).
    let samples = field32(0).bin(BinOp::UDiv, byte32(8).bin(BinOp::Or, c32(1)));
    let beta_div = overflow_condition(&samples.bin(BinOp::Mul, field32(4)));
    group.bench_function("sat_overflow_with_division", |b| {
        b.iter(|| std::hint::black_box(solve(&beta_div).model().is_some()))
    });

    // Unsat proof: bounded arithmetic, with and without interval presolve.
    let bounded = byte32(0).bin(BinOp::Mul, c32(100)).bin(BinOp::Add, c32(7));
    let atom = diode_symbolic::SymBool::Ovf(diode_symbolic::OvfKind::Mul, field32(0), field32(4))
        .and(&diode_symbolic::SymBool::cmp(
            diode_lang::CmpOp::Ult,
            field32(0),
            c32(1000),
        ))
        .and(&diode_symbolic::SymBool::cmp(
            diode_lang::CmpOp::Ult,
            field32(4),
            c32(1000),
        ));
    let _ = bounded;
    group.bench_function("unsat_guarded_mul", |b| {
        b.iter(|| assert!(solve(&atom).is_unsat()))
    });
    let no_presolve = SolverConfig {
        interval_presolve: false,
        ..SolverConfig::default()
    };
    group.bench_function("unsat_guarded_mul_no_interval", |b| {
        b.iter(|| assert!(solve_with(&atom, &no_presolve, None).0.is_unsat()))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
