//! Criterion benchmark for the fuzzing baselines (throughput of a fixed
//! 50-trial campaign against the Figure 2 site).

use criterion::{criterion_group, criterion_main, Criterion};
use diode_core::{identify_target_sites, DiodeConfig};
use diode_fuzz::{RandomFuzzer, TaintFuzzer};

fn bench_fuzz(c: &mut Criterion) {
    let app = diode_apps::dillo::app();
    let config = DiodeConfig::default();
    let targets = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = targets.iter().find(|t| &*t.site == "png.c@203").unwrap();

    let mut group = c.benchmark_group("fuzz_50_trials");
    group.sample_size(10);
    group.bench_function("random", |b| {
        let fz = RandomFuzzer {
            trials: 50,
            ..RandomFuzzer::default()
        };
        b.iter(|| {
            std::hint::black_box(fz.run(
                &app.program,
                &app.seed,
                &app.format,
                fig2.label,
                &config.machine,
            ))
        })
    });
    group.bench_function("taint_directed", |b| {
        let fz = TaintFuzzer {
            trials: 50,
            ..TaintFuzzer::default()
        };
        b.iter(|| {
            std::hint::black_box(fz.run(
                &app.program,
                &app.seed,
                &app.format,
                fig2.label,
                &fig2.relevant_bytes,
                &config.machine,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fuzz);
criterion_main!(benches);
