//! Criterion benchmark regenerating Table 1: full DIODE classification of
//! every target site, per application — sequential `diode-core` vs the
//! `diode-engine` parallel scheduler (with and without the shared query
//! cache), plus the whole suite as one campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use diode_core::{analyze_program, DiodeConfig};
use diode_engine::{analyze_program_parallel, CampaignApp, CampaignSpec, SolverCache};

fn bench_table1(c: &mut Criterion) {
    let apps = diode_apps::all_apps();
    let config = DiodeConfig::default();
    let mut group = c.benchmark_group("table1_classification");
    group.sample_size(10);
    for app in &apps {
        group.bench_function(format!("{}_sequential", app.name), |b| {
            b.iter(|| {
                let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
                std::hint::black_box(analysis.counts())
            })
        });
        group.bench_function(format!("{}_engine", app.name), |b| {
            b.iter(|| {
                let analysis =
                    analyze_program_parallel(&app.program, &app.seed, &app.format, &config, None);
                std::hint::black_box(analysis.counts())
            })
        });
        group.bench_function(format!("{}_engine_cached", app.name), |b| {
            let cached = config
                .clone()
                .with_query_cache(std::sync::Arc::new(SolverCache::new()));
            b.iter(|| {
                let analysis =
                    analyze_program_parallel(&app.program, &app.seed, &app.format, &cached, None);
                std::hint::black_box(analysis.counts())
            })
        });
    }
    group.bench_function("whole_suite_campaign", |b| {
        b.iter(|| {
            let spec = CampaignSpec::new(
                diode_apps::all_apps()
                    .into_iter()
                    .map(|a| CampaignApp::new(a.name, a.program, a.format, a.seed))
                    .collect(),
            );
            std::hint::black_box(spec.run().counts())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
