//! Criterion benchmark regenerating Table 1: full DIODE classification of
//! every target site, per application and for the whole benchmark suite.

use criterion::{criterion_group, criterion_main, Criterion};
use diode_core::{analyze_program, DiodeConfig};

fn bench_table1(c: &mut Criterion) {
    let apps = diode_apps::all_apps();
    let config = DiodeConfig::default();
    let mut group = c.benchmark_group("table1_classification");
    group.sample_size(10);
    for app in &apps {
        group.bench_function(app.name, |b| {
            b.iter(|| {
                let analysis =
                    analyze_program(&app.program, &app.seed, &app.format, &config);
                std::hint::black_box(analysis.counts())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
