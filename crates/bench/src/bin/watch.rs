//! watch — render a diode-pulse telemetry stream as a campaign summary.
//!
//! Three modes over the same renderer:
//!
//! * `watch --replay PATH` parses a recorded telemetry JSONL (written by
//!   `synth_campaign --telemetry PATH`) and prints the per-worker /
//!   per-outcome / cache-pressure summary plus the anomaly digest the
//!   watchdog raises over the replayed stream.
//! * `watch --flight PATH` renders a flight recording (written by
//!   `diode-serve` when a watchdog anomaly fires or a job fails):
//!   the dump's own header and recorded anomalies first — those are
//!   the incident, the watchdog is not re-run — then the retained
//!   event window through the standard summary.
//! * `watch --follow PATH` attaches to a live run: it tails the growing
//!   JSONL, printing site completions as they land, until the `finished`
//!   record appears — a truncated tail (the writer mid-line) just means
//!   "not yet" and is retried, and a stream that *shrinks* (the daemon
//!   truncating the file to start its next job) is a rotation: the new
//!   stream is followed from its first event. `--poll-ms` sets the tail
//!   interval
//!   (default 200); `--timeout-ms` bounds the wait (default unbounded),
//!   rendering whatever arrived and exiting 1 on expiry.
//!
//! Watchdog thresholds mirror the library defaults and can be tuned with
//! `--slow-factor F`, `--slow-floor-ms N`, `--min-sites N`,
//! `--idle-heartbeats N`, `--cache-ceiling BYTES`. `--anomalies PATH`
//! writes the schema-versioned digest JSONL; `--fail-on-anomaly` turns
//! any raised anomaly into exit code 1 (the CI gate). `--json` emits the
//! whole summary as one JSON object instead of text.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use diode_bench::jsonout::Json;
use diode_bench::{flag_f64, flag_num, flag_str};
use diode_obs::{
    anomalies_to_jsonl, AnomalyReport, FlightDump, PulseEvent, TelemetryLog, Watchdog,
    WatchdogConfig, WorkerState,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let replay = flag_str(&args, "--replay");
    let follow = flag_str(&args, "--follow");
    let flight = flag_str(&args, "--flight");
    let config = watchdog_config(&args);
    let anomalies_path = flag_str(&args, "--anomalies");
    let fail_on_anomaly = args.iter().any(|a| a == "--fail-on-anomaly");

    let (log, recorded) = match (replay, follow, flight) {
        (Some(path), None, None) => (replay_log(&path), None),
        (None, Some(path), None) => (follow_log(&path, &args, json), None),
        (None, None, Some(path)) => {
            let dump = flight_dump(&path, json);
            (
                TelemetryLog {
                    threads: dump.threads,
                    events: dump.events,
                },
                Some(dump.anomalies),
            )
        }
        _ => {
            eprintln!("watch: pass exactly one of --replay PATH, --follow PATH, or --flight PATH");
            std::process::exit(2);
        }
    };

    // A flight dump carries the incident's own anomalies; re-running
    // the watchdog over a truncated window would mis-judge medians.
    let anomalies = recorded.unwrap_or_else(|| run_watchdog(&log, config));
    if let Some(path) = anomalies_path {
        if let Err(e) = std::fs::write(&path, anomalies_to_jsonl(&anomalies)) {
            eprintln!("watch: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    let summary = Summary::from_log(&log);
    if json {
        println!("{}", summary.to_json(&anomalies));
    } else {
        summary.render(&anomalies);
    }
    if fail_on_anomaly && !anomalies.is_empty() {
        std::process::exit(1);
    }
}

fn replay_log(path: &str) -> TelemetryLog {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("watch: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match TelemetryLog::from_jsonl(&text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("watch: {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Parses a flight recording and narrates its header: which job, why
/// the dump was cut, and how much of the stream the ring retained.
fn flight_dump(path: &str, json: bool) -> FlightDump {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("watch: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let dump = match FlightDump::from_jsonl(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("watch: {path}: {e}");
            std::process::exit(2);
        }
    };
    if !json {
        println!(
            "flight: job {} dumped ({}); ring retained {} of {} event(s)",
            dump.job,
            dump.reason,
            dump.events.len(),
            dump.seen
        );
    }
    dump
}

/// Tails `path` until the stream carries a `finished` record. Every
/// successful parse is a consistent prefix of the stream; a parse error
/// only means the writer is mid-line, so it is retried until the
/// deadline (if any) expires.
fn follow_log(path: &str, args: &[String], json: bool) -> TelemetryLog {
    let poll = Duration::from_millis(flag_num(args, "--poll-ms").unwrap_or(200));
    let timeout = flag_num(args, "--timeout-ms").unwrap_or(0);
    let deadline = (timeout > 0).then(|| Instant::now() + Duration::from_millis(timeout));
    let mut shown = 0usize;
    let mut last: Option<TelemetryLog> = None;
    let mut last_err = String::new();
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            match TelemetryLog::from_jsonl(&text) {
                Ok(log) => {
                    if log.events.len() < shown {
                        // The stream shrank: the writer truncated and
                        // recreated the file (daemon job rotation).
                        // This is a new stream — narrate it from its
                        // first event instead of swallowing the prefix.
                        if !json {
                            eprintln!("watch: stream rotated; following the new stream");
                        }
                        shown = 0;
                    }
                    if !json {
                        for event in &log.events[shown.min(log.events.len())..] {
                            if let Some(line) = live_line(event) {
                                println!("{line}");
                            }
                        }
                    }
                    shown = log.events.len();
                    let finished = log
                        .events
                        .last()
                        .is_some_and(|e| matches!(e, PulseEvent::Finished { .. }));
                    if finished {
                        return log;
                    }
                    last = Some(log);
                }
                Err(e) => last_err = e,
            }
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Render what we have; an unfinished stream is still exit 1.
            if let Some(log) = last {
                eprintln!("watch: timed out after {timeout}ms without a finished record");
                let summary = Summary::from_log(&log);
                if json {
                    println!("{}", summary.to_json(&[]));
                } else {
                    summary.render(&[]);
                }
            } else {
                eprintln!(
                    "watch: timed out after {timeout}ms without a parseable stream: {last_err}"
                );
            }
            std::process::exit(1);
        }
        std::thread::sleep(poll);
    }
}

/// One-line live narration for follow mode; heartbeats and worker noise
/// stay silent — the summary covers them.
fn live_line(event: &PulseEvent) -> Option<String> {
    match event {
        PulseEvent::SitesIdentified { app, seed, sites } => {
            Some(format!("identified {app}/{seed}: {sites} site(s)"))
        }
        PulseEvent::SiteFinished {
            app,
            seed,
            site,
            outcome,
            wall_ns,
            ..
        } => Some(format!(
            "site {app}/{seed}/{site}: {outcome} in {}",
            fmt_ms(*wall_ns)
        )),
        PulseEvent::Finished {
            wall_ns,
            sites,
            exposed,
        } => Some(format!(
            "finished: {sites} site(s), {exposed} exposed, wall {}",
            fmt_ms(*wall_ns)
        )),
        PulseEvent::UnitStarted { .. } | PulseEvent::Heartbeat(_) => None,
    }
}

fn watchdog_config(args: &[String]) -> WatchdogConfig {
    let mut config = WatchdogConfig::default();
    if let Some(f) = flag_f64(args, "--slow-factor") {
        config.slow_site_factor = f;
    }
    if let Some(ms) = flag_num(args, "--slow-floor-ms") {
        config.slow_site_floor_ns = ms * 1_000_000;
    }
    if let Some(n) = flag_num(args, "--min-sites") {
        config.min_sites_for_median = n as usize;
    }
    if let Some(n) = flag_num(args, "--idle-heartbeats") {
        config.idle_heartbeats = n as u32;
    }
    if let Some(b) = flag_num(args, "--cache-ceiling") {
        config.cache_ceiling_bytes = Some(b);
    }
    config
}

fn run_watchdog(log: &TelemetryLog, config: WatchdogConfig) -> Vec<AnomalyReport> {
    let mut watchdog = Watchdog::new(config);
    for event in &log.events {
        watchdog.feed(event);
    }
    watchdog.finish()
}

/// Per-outcome aggregate over finished sites.
#[derive(Default)]
struct OutcomeAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Per-worker busy tally over heartbeats.
#[derive(Default, Clone)]
struct WorkerAgg {
    unit: u64,
    site: u64,
    sampled: u64,
}

/// Everything the renderer needs, folded out of one telemetry stream.
struct Summary {
    threads: u32,
    events: usize,
    heartbeats: u64,
    units: u64,
    sites_identified: u64,
    workers: Vec<WorkerAgg>,
    outcomes: BTreeMap<String, OutcomeAgg>,
    slowest: Vec<(String, String, u64)>,
    max_queued: u64,
    steals: u64,
    jobs_done: u64,
    peak_cache_bytes: u64,
    peak_snapshot_bytes: u64,
    peak_heap_bytes: u64,
    finished: Option<(u64, u64, u64)>,
}

impl Summary {
    fn from_log(log: &TelemetryLog) -> Summary {
        let mut s = Summary {
            threads: log.threads,
            events: log.events.len(),
            heartbeats: 0,
            units: 0,
            sites_identified: 0,
            workers: vec![WorkerAgg::default(); log.threads as usize],
            outcomes: BTreeMap::new(),
            slowest: Vec::new(),
            max_queued: 0,
            steals: 0,
            jobs_done: 0,
            peak_cache_bytes: 0,
            peak_snapshot_bytes: 0,
            peak_heap_bytes: 0,
            finished: None,
        };
        for event in &log.events {
            match event {
                PulseEvent::UnitStarted { .. } => s.units += 1,
                PulseEvent::SitesIdentified { sites, .. } => s.sites_identified += sites,
                PulseEvent::SiteFinished {
                    app,
                    seed,
                    site,
                    outcome,
                    wall_ns,
                    cache_bytes,
                    snapshot_bytes,
                    peak_heap_bytes,
                } => {
                    let agg = s.outcomes.entry(outcome.clone()).or_default();
                    agg.count += 1;
                    agg.total_ns += wall_ns;
                    agg.max_ns = agg.max_ns.max(*wall_ns);
                    s.slowest
                        .push((format!("{app}/{seed}/{site}"), outcome.clone(), *wall_ns));
                    s.peak_cache_bytes = s.peak_cache_bytes.max(*cache_bytes);
                    s.peak_snapshot_bytes = s.peak_snapshot_bytes.max(*snapshot_bytes);
                    s.peak_heap_bytes = s.peak_heap_bytes.max(*peak_heap_bytes);
                }
                PulseEvent::Heartbeat(hb) => {
                    s.heartbeats += 1;
                    if s.workers.len() < hb.workers.len() {
                        s.workers.resize(hb.workers.len(), WorkerAgg::default());
                    }
                    for (i, state) in hb.workers.iter().enumerate() {
                        let agg = &mut s.workers[i];
                        agg.sampled += 1;
                        match state {
                            WorkerState::Idle => {}
                            WorkerState::Unit { .. } => agg.unit += 1,
                            WorkerState::Site { .. } => agg.site += 1,
                        }
                    }
                    s.max_queued = s.max_queued.max(hb.queued);
                    s.steals = s.steals.max(hb.steals);
                    s.jobs_done = s.jobs_done.max(hb.jobs_done);
                    s.peak_cache_bytes = s.peak_cache_bytes.max(hb.cache_bytes);
                    s.peak_snapshot_bytes = s.peak_snapshot_bytes.max(hb.snapshot_bytes);
                    s.peak_heap_bytes = s.peak_heap_bytes.max(hb.interp_peak_heap_bytes);
                }
                PulseEvent::Finished {
                    wall_ns,
                    sites,
                    exposed,
                } => s.finished = Some((*wall_ns, *sites, *exposed)),
            }
        }
        s.slowest.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        s.slowest.truncate(5);
        s
    }

    fn render(&self, anomalies: &[AnomalyReport]) {
        match self.finished {
            Some((wall, sites, exposed)) => println!(
                "watch: {sites} site(s), {exposed} exposed, wall {}, {} worker(s), \
                 {} heartbeat(s), {} event(s)",
                fmt_ms(wall),
                self.threads,
                self.heartbeats,
                self.events
            ),
            None => println!(
                "watch: stream still running — {} worker(s), {} heartbeat(s), {} event(s)",
                self.threads, self.heartbeats, self.events
            ),
        }
        println!(
            "  progress: {} unit(s) started, {} site(s) identified; \
             scheduler max queue {}, {} steal(s), {} job(s) done",
            self.units, self.sites_identified, self.max_queued, self.steals, self.jobs_done
        );
        for (i, w) in self.workers.iter().enumerate() {
            let pct = |n: u64| {
                if w.sampled == 0 {
                    0.0
                } else {
                    n as f64 * 100.0 / w.sampled as f64
                }
            };
            println!(
                "  worker {i}: busy {:.0}% of {} sample(s) (site {:.0}%, unit {:.0}%)",
                pct(w.unit + w.site),
                w.sampled,
                pct(w.site),
                pct(w.unit)
            );
        }
        println!("  outcomes:");
        for (outcome, agg) in &self.outcomes {
            let mean = agg.total_ns / agg.count.max(1);
            println!(
                "    {outcome}: {} site(s), mean {}, max {}",
                agg.count,
                fmt_ms(mean),
                fmt_ms(agg.max_ns)
            );
        }
        if !self.slowest.is_empty() {
            println!("  slowest sites:");
            for (subject, outcome, wall) in &self.slowest {
                println!("    {subject}: {} ({outcome})", fmt_ms(*wall));
            }
        }
        println!(
            "  cache pressure: solver {} peak, snapshots {} peak, interp heap {} peak",
            fmt_bytes(self.peak_cache_bytes),
            fmt_bytes(self.peak_snapshot_bytes),
            fmt_bytes(self.peak_heap_bytes)
        );
        if anomalies.is_empty() {
            println!("  watchdog: no anomalies");
        } else {
            println!("  watchdog: {} anomaly(ies)", anomalies.len());
            for a in anomalies {
                println!("    [{}] {}: {}", a.kind.as_str(), a.subject, a.detail);
            }
        }
    }

    fn to_json(&self, anomalies: &[AnomalyReport]) -> Json {
        let workers: Vec<Json> = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Json::obj()
                    .field("worker", i)
                    .field("sampled", w.sampled)
                    .field("unit", w.unit)
                    .field("site", w.site)
            })
            .collect();
        let outcomes: Vec<Json> = self
            .outcomes
            .iter()
            .map(|(outcome, agg)| {
                Json::obj()
                    .field("outcome", outcome.as_str())
                    .field("count", agg.count)
                    .field(
                        "mean_ms",
                        agg.total_ns as f64 / agg.count.max(1) as f64 / 1e6,
                    )
                    .field("max_ms", agg.max_ns as f64 / 1e6)
            })
            .collect();
        let slowest: Vec<Json> = self
            .slowest
            .iter()
            .map(|(subject, outcome, wall)| {
                Json::obj()
                    .field("site", subject.as_str())
                    .field("outcome", outcome.as_str())
                    .field("wall_ms", *wall as f64 / 1e6)
            })
            .collect();
        let anomaly_rows: Vec<Json> = anomalies
            .iter()
            .map(|a| {
                Json::obj()
                    .field("kind", a.kind.as_str())
                    .field("subject", a.subject.as_str())
                    .field("detail", a.detail.as_str())
                    .field("value", a.value)
                    .field("threshold", a.threshold)
            })
            .collect();
        let finished = self.finished.map(|(wall, sites, exposed)| {
            Json::obj()
                .field("wall_ms", wall as f64 / 1e6)
                .field("sites", sites)
                .field("exposed", exposed)
        });
        Json::obj()
            .field("table", "pulse_watch")
            .field("threads", self.threads)
            .field("events", self.events)
            .field("heartbeats", self.heartbeats)
            .field("units", self.units)
            .field("sites_identified", self.sites_identified)
            .field("finished", finished)
            .field("workers", workers)
            .field("outcomes", outcomes)
            .field("slowest", slowest)
            .field("max_queued", self.max_queued)
            .field("steals", self.steals)
            .field("jobs_done", self.jobs_done)
            .field("peak_cache_bytes", self.peak_cache_bytes)
            .field("peak_snapshot_bytes", self.peak_snapshot_bytes)
            .field("peak_heap_bytes", self.peak_heap_bytes)
            .field("anomalies", anomaly_rows)
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}
