//! Inspect, validate, and diff decision-provenance records.
//!
//! Every audited campaign (`synth_campaign --audit`, `corpus replay
//! --audit`) leaves one [`ProvenanceRecord`] per site: the extraction,
//! solver queries, enforcement steps, and final verdict that produced
//! the site's outcome. This bin answers three questions about them:
//!
//! * `audit explain` — *why* did this site get this verdict? Prints the
//!   per-site derivation tree.
//! * `audit check` — is every verdict *justified*? Fails when any
//!   record's event chain is broken (an `exposed` verdict without a
//!   witness, an enforcement count that does not match the enforced
//!   steps, a missing extraction, ...).
//! * `audit diff OLD NEW` — did a change alter *how* verdicts are
//!   derived, even where the verdicts themselves are unchanged? For two
//!   audit documents, reports derivation drift. For two profiled runs
//!   (JSONL traces, `profile --json` documents, or `BENCH_engine.json`
//!   artifacts), delegates to the profile differ and attributes
//!   wall-clock regressions to phases, sites, and solver-cache shifts.
//!
//! Record sources (explain/check):
//!
//! * `--file PATH` — a `diode_audit` document written by
//!   `synth_campaign --audit PATH`;
//! * `--root DIR [--suite ID] [--label LABEL]` — an audit set recorded
//!   in a corpus store (`corpus replay --audit`); suite defaults to
//!   `latest`, label to `replay`.
//!
//! Filters (explain): `--app NAME`, `--seed N`, `--site SITE` narrow
//! the printed records; `--site` matches substrings.
//!
//! Exit codes: 0 clean, 1 failed check / attributed regression /
//! derivation drift, 2 invalid input.

use diode_bench::profload::{load_audit_records, load_profile};
use diode_bench::{flag_num, flag_str};
use diode_corpus::{record_key, AuditSet, CorpusStore, DerivationDrift, Json};
use diode_obs::{ProfileDiff, ProvenanceRecord};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("audit: usage: audit <explain|check|diff> [FLAGS]");
        std::process::exit(2);
    };
    match command {
        "explain" => run_explain(&args),
        "check" => run_check(&args),
        "diff" => run_diff(&args),
        other => {
            eprintln!("audit: unknown command {other:?} (expected explain, check, or diff)");
            std::process::exit(2);
        }
    }
}

/// Flags that consume a value, for positional-argument extraction.
const VALUE_FLAGS: &[&str] = &[
    "--file",
    "--root",
    "--suite",
    "--label",
    "--app",
    "--seed",
    "--site",
    "--top",
    "--threshold",
];

fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip = true;
        } else if !arg.starts_with("--") {
            out.push(arg);
        }
    }
    out
}

/// Loads the records named by `--file` or `--root/--suite/--label`.
fn load_records(args: &[String]) -> Vec<ProvenanceRecord> {
    if let Some(path) = flag_str(args, "--file") {
        match load_audit_records(&path) {
            Ok(records) => records,
            Err(e) => {
                eprintln!("audit: {e}");
                std::process::exit(2);
            }
        }
    } else if let Some(root) = flag_str(args, "--root") {
        let suite = flag_str(args, "--suite").unwrap_or_else(|| "latest".to_string());
        let label = flag_str(args, "--label").unwrap_or_else(|| "replay".to_string());
        let store = match CorpusStore::open(&root) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("audit: {root}: {e}");
                std::process::exit(2);
            }
        };
        match store.load_audit(&suite, &label) {
            Ok(Some(set)) => set.records,
            Ok(None) => {
                eprintln!(
                    "audit: suite {suite:?} has no audit set labelled {label:?} \
                     (record one with `corpus replay --audit`)"
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("audit: {e}");
                std::process::exit(2);
            }
        }
    } else {
        eprintln!("audit: need --file PATH or --root DIR [--suite ID] [--label LABEL]");
        std::process::exit(2);
    }
}

fn matches_filters(args: &[String], r: &ProvenanceRecord) -> bool {
    if let Some(app) = flag_str(args, "--app") {
        if r.app != app {
            return false;
        }
    }
    if let Some(seed) = flag_num(args, "--seed") {
        if u64::from(r.seed) != seed {
            return false;
        }
    }
    if let Some(site) = flag_str(args, "--site") {
        if !r.site.contains(&site) {
            return false;
        }
    }
    true
}

fn run_explain(args: &[String]) {
    let records = load_records(args);
    let total = records.len();
    let selected: Vec<&ProvenanceRecord> = records
        .iter()
        .filter(|r| matches_filters(args, r))
        .collect();
    if selected.is_empty() {
        eprintln!("audit: no records match the given filters ({total} in the set)");
        std::process::exit(1);
    }
    for (i, r) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", r.explain());
    }
    println!("\n{} of {} record(s) shown", selected.len(), total);
}

fn run_check(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let records = load_records(args);
    let mut broken = Vec::new();
    for r in &records {
        if let Some(reason) = r.chain_error() {
            broken.push((record_key(r), reason));
        }
    }
    if json {
        let rows: Vec<Json> = broken
            .iter()
            .map(|(key, reason)| {
                Json::obj()
                    .field("site", key.to_string())
                    .field("reason", reason.as_str())
            })
            .collect();
        let doc = Json::obj()
            .field("table", "diode_audit_check")
            .field("v", 1u64)
            .field("records", records.len() as u64)
            .field("broken", Json::Arr(rows))
            .field("ok", broken.is_empty() && !records.is_empty());
        println!("{doc}");
    } else {
        for (key, reason) in &broken {
            println!("BROKEN  {key}: {reason}");
        }
    }
    if records.is_empty() {
        eprintln!("audit: check FAILED — the set holds no records (was the run audited?)");
        std::process::exit(1);
    }
    if !broken.is_empty() {
        eprintln!(
            "audit: check FAILED — {} of {} record(s) have broken derivation chains",
            broken.len(),
            records.len()
        );
        std::process::exit(1);
    }
    if !json {
        println!(
            "audit check passed: {} record(s), every verdict chains to its evidence",
            records.len()
        );
    }
}

/// True when `path` parses as a single JSON document tagged
/// `diode_audit` (as opposed to a trace/profile/artifact).
fn is_audit_doc(path: &str) -> bool {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("table").and_then(Json::as_str).map(String::from))
        .is_some_and(|table| table == "diode_audit")
}

fn run_diff(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let pos = positionals(args);
    let [old_path, new_path] = pos.as_slice() else {
        eprintln!("audit: usage: audit diff OLD NEW [--json] [--top N] [--threshold F]");
        std::process::exit(2);
    };
    match (is_audit_doc(old_path), is_audit_doc(new_path)) {
        (true, true) => diff_audits(old_path, new_path, json),
        (false, false) => diff_profiles(args, old_path, new_path, json),
        _ => {
            eprintln!(
                "audit: cannot diff {old_path} against {new_path}: one is a diode_audit \
                 document and the other is not"
            );
            std::process::exit(2);
        }
    }
}

fn load_set(path: &str) -> AuditSet {
    match load_audit_records(path) {
        Ok(records) => AuditSet {
            suite_id: String::new(),
            label: path.to_string(),
            records,
        },
        Err(e) => {
            eprintln!("audit: {e}");
            std::process::exit(2);
        }
    }
}

fn diff_audits(old_path: &str, new_path: &str, json: bool) {
    let old = load_set(old_path);
    let new = load_set(new_path);
    let drift = DerivationDrift::between(&old, &new);
    if json {
        let drifted: Vec<Json> = drift
            .drifted
            .iter()
            .map(|k| Json::Str(k.to_string()))
            .collect();
        let doc = Json::obj()
            .field("table", "diode_audit_diff")
            .field("v", 1u64)
            .field("compared", drift.compared as u64)
            .field("verdict_changed", drift.verdict_changed as u64)
            .field("drifted", Json::Arr(drifted))
            .field("clean", drift.is_clean());
        println!("{doc}");
    } else {
        print!("{drift}");
    }
    if !drift.is_clean() {
        std::process::exit(1);
    }
}

fn diff_profiles(args: &[String], old_path: &str, new_path: &str, json: bool) {
    let top = flag_num(args, "--top").unwrap_or(10) as usize;
    let threshold = flag_str(args, "--threshold")
        .map(|v| match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => f,
            _ => {
                eprintln!("audit: --threshold expects a positive number, got {v:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(0.15);
    let load = |path: &str| match load_profile(path, top) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("audit: {e}");
            std::process::exit(2);
        }
    };
    let old = load(old_path);
    let new = load(new_path);
    let diff = ProfileDiff::between(&old, &new, top, threshold);
    if json {
        println!("{}", diff.to_json());
    } else {
        println!("{}", diff.render());
    }
    if diff.is_regression() {
        std::process::exit(1);
    }
}
