//! The BENCH trajectory: a committed, per-commit record of the engine's
//! benchmark curve, with a regression gate on the prefix-snapshot
//! speedup.
//!
//! Reads the `BENCH_engine.json` artifact that `synth_campaign --sweep
//! --bench-replay` wrote, appends one record — including the per-phase
//! duration breakdown when the artifact carries one — to
//! `BENCH_trajectory.json` (creating it if absent). The existing
//! trajectory is schema-validated on load (clear per-record errors,
//! exit 2); records that predate an axis (`threads`/`sizes`/`replay`/
//! `phases`/`telemetry`/`serve`) are tolerated and backfilled with
//! `null`. The gate **fails** when
//!
//! * the snapshot-on configuration is slower than snapshot-off
//!   (`replay.speedup < --min-speedup`, default 1.0), or
//! * the snapshot-on wall time regressed by more than `--max-regress`
//!   (default 0.15 = 15%) against the previous record's.
//!
//! Usage: `trajectory [--bench BENCH_engine.json]
//! [--out BENCH_trajectory.json] [--commit SHA] [--date YYYY-MM-DD]
//! [--min-speedup F] [--max-regress F] [--json]`
//!
//! `--commit` defaults to `$GITHUB_SHA`; `--date` to today (UTC). CI
//! uploads the updated trajectory as an artifact on pull requests and
//! commits it back to the repository on `main`, so the curve across
//! commits is a versioned fact.
//!
//! `trajectory check [--out PATH] [--max-age N] [--json]` validates the
//! *committed* trajectory instead of appending to it: the newest record
//! must have no null axes (a trajectory holding only the hand-written
//! seed record means the append pipeline never ran) and must be no
//! older than `--max-age` commits (default 50) behind `HEAD`, measured
//! with `git rev-list --count` — when the commit is unknown to git
//! (shallow clone, seed record) the age gate degrades to a warning.
//! Exits 1 when the trajectory is stale or still null-axed.

use std::time::{SystemTime, UNIX_EPOCH};

use diode_bench::jsonout::Json;
use diode_bench::{flag_f64, flag_str};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if args.first().map(String::as_str) == Some("check") {
        run_check(&args, json);
        return;
    }
    let bench_path = flag_str(&args, "--bench").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let out_path = flag_str(&args, "--out").unwrap_or_else(|| "BENCH_trajectory.json".to_string());
    let min_speedup = flag_f64(&args, "--min-speedup").unwrap_or(1.0);
    let max_regress = flag_f64(&args, "--max-regress").unwrap_or(0.15);
    let commit = flag_str(&args, "--commit")
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let date = flag_str(&args, "--date").unwrap_or_else(today_utc);

    let bench_text = match std::fs::read_to_string(&bench_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trajectory: cannot read {bench_path}: {e}");
            std::process::exit(2);
        }
    };
    let bench = match Json::parse(&bench_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trajectory: {bench_path}: {e}");
            std::process::exit(2);
        }
    };

    let record = build_record(&commit, &date, &bench);
    let replay_on_ms = bench
        .get("replay")
        .and_then(|r| r.get("on_ms"))
        .and_then(Json::as_f64);
    let replay_speedup = bench
        .get("replay")
        .and_then(|r| r.get("speedup"))
        .and_then(Json::as_f64);
    let replay_identical = bench
        .get("replay")
        .and_then(|r| r.get("identical"))
        .and_then(Json::as_bool);

    // Previous trajectory (absent file = empty trajectory), validated
    // and normalised so downstream consumers see a uniform shape.
    let mut records = load_records(&out_path);
    let prev_on_ms = records
        .iter()
        .rev()
        .filter_map(|r| r.get("replay").and_then(|x| x.get("on_ms")))
        .find_map(Json::as_f64);

    // Gates.
    let mut failures: Vec<String> = Vec::new();
    match (replay_speedup, replay_identical) {
        (Some(speedup), identical) => {
            if identical == Some(false) {
                failures
                    .push("snapshot-on report diverged from the snapshot-off report".to_string());
            }
            if speedup < min_speedup {
                failures.push(format!(
                    "snapshot speedup {speedup:.3}x below the {min_speedup:.2}x gate \
                     (snapshot-on must not be slower than snapshot-off)"
                ));
            }
        }
        (None, _) => failures.push(format!(
            "{bench_path} has no replay section — run synth_campaign with --bench-replay"
        )),
    }
    if let (Some(on), Some(prev)) = (replay_on_ms, prev_on_ms) {
        let limit = prev * (1.0 + max_regress);
        if on > limit {
            failures.push(format!(
                "snapshot-on wall time {on:.1}ms regressed more than {:.0}% over the previous \
                 main record ({prev:.1}ms, limit {limit:.1}ms)",
                max_regress * 100.0
            ));
        }
    }

    records.push(record);
    let trajectory = Json::obj()
        .field("table", "bench_trajectory")
        .field("records", Json::Arr(records.clone()));
    if let Err(e) = std::fs::write(&out_path, format!("{trajectory}\n")) {
        eprintln!("trajectory: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    if json {
        let out = Json::obj()
            .field("table", "trajectory_gate")
            .field("commit", commit)
            .field("date", date)
            .field("records", records.len())
            .field("speedup", replay_speedup)
            .field("previous_on_ms", prev_on_ms)
            .field("min_speedup", min_speedup)
            .field("max_regress", max_regress)
            .field(
                "failures",
                failures
                    .iter()
                    .map(|f| Json::Str(f.clone()))
                    .collect::<Vec<_>>(),
            )
            .field("passed", failures.is_empty());
        println!("{out}");
    } else {
        println!(
            "trajectory: appended record #{} for {commit} ({date}) to {out_path}",
            records.len()
        );
        if let Some(s) = replay_speedup {
            let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{v:.1}ms"));
            println!(
                "  snapshot speedup {s:.2}x (gate ≥ {min_speedup:.2}x); on-wall {}, \
                 previous {} (regress limit {:.0}%)",
                fmt(replay_on_ms),
                fmt(prev_on_ms),
                max_regress * 100.0
            );
        }
        for f in &failures {
            println!("  GATE FAIL: {f}");
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Axis keys every record carries; absent or omitted ones (e.g. in the
/// hand-written seed record) are backfilled with an explicit `null`.
const AXES: [&str; 7] = [
    "config",
    "threads",
    "sizes",
    "replay",
    "phases",
    "telemetry",
    "serve",
];

/// `trajectory check`: the committed trajectory must be alive — its
/// newest record fully populated and recent. This is what catches a
/// benchmark pipeline that silently stopped appending.
fn run_check(args: &[String], json: bool) {
    let out_path = flag_str(args, "--out").unwrap_or_else(|| "BENCH_trajectory.json".to_string());
    let max_age = flag_f64(args, "--max-age").unwrap_or(50.0) as u64;
    if !std::path::Path::new(&out_path).exists() {
        eprintln!("trajectory check: {out_path} does not exist — the trajectory was never seeded");
        std::process::exit(1);
    }
    let records = load_records(&out_path);
    let Some(newest) = records.last() else {
        eprintln!("trajectory check: {out_path} holds no records");
        std::process::exit(1);
    };
    let commit = newest
        .get("commit")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let date = newest
        .get("date")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();

    let mut failures: Vec<String> = Vec::new();
    let null_axes: Vec<&str> = AXES
        .iter()
        .copied()
        .filter(|axis| newest.get(axis).is_none_or(Json::is_null))
        .collect();
    if !null_axes.is_empty() {
        failures.push(format!(
            "newest record ({commit}, {date}) has null axes [{}] — the per-commit append \
             pipeline (synth_campaign --sweep --bench-replay + trajectory) never ran",
            null_axes.join(", ")
        ));
    }

    // Age: commits on HEAD since the record's commit. A commit git
    // cannot resolve (shallow clone, the seed record's placeholder)
    // degrades to a warning — CI checkouts are not always deep.
    let age = commit_age(&commit);
    match age {
        Some(age) if age > max_age => failures.push(format!(
            "newest record ({commit}, {date}) is {age} commits behind HEAD \
             (limit {max_age}) — the trajectory stopped being appended to"
        )),
        Some(_) => {}
        None => eprintln!(
            "trajectory check: warning: cannot measure the age of {commit:?} with git \
             (shallow clone or unknown commit); skipping the age gate"
        ),
    }

    if json {
        let out = Json::obj()
            .field("table", "trajectory_check")
            .field("records", records.len())
            .field("commit", commit)
            .field("date", date)
            .field("age_commits", age)
            .field("max_age", max_age)
            .field(
                "null_axes",
                null_axes
                    .iter()
                    .map(|a| Json::Str((*a).to_string()))
                    .collect::<Vec<_>>(),
            )
            .field(
                "failures",
                failures
                    .iter()
                    .map(|f| Json::Str(f.clone()))
                    .collect::<Vec<_>>(),
            )
            .field("passed", failures.is_empty());
        println!("{out}");
    } else {
        println!(
            "trajectory check: {} record(s) in {out_path}, newest {commit} ({date}){}",
            records.len(),
            age.map_or_else(String::new, |a| format!(", {a} commit(s) behind HEAD")),
        );
        for f in &failures {
            println!("  CHECK FAIL: {f}");
        }
        if failures.is_empty() {
            println!("  trajectory is alive: axes populated, within the {max_age}-commit window");
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// How many commits `HEAD` is ahead of `commit`, via `git rev-list
/// --count commit..HEAD`. `None` when git is unavailable or the commit
/// cannot be resolved.
fn commit_age(commit: &str) -> Option<u64> {
    if commit.is_empty() || commit == "unknown" {
        return None;
    }
    let out = std::process::Command::new("git")
        .args(["rev-list", "--count", &format!("{commit}..HEAD")])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()?.trim().parse().ok()
}

/// Load and validate the existing trajectory. An absent file is an empty
/// trajectory; a present file must be an object with a `records` array
/// whose entries each carry string `commit` and `date` fields — anything
/// else is a clear, line-item error (exit 2), not a silent drop. Records
/// that predate an axis (the seed record has no `threads`/`sizes`/
/// `replay`, pre-observability records have no `phases`, pre-pulse
/// records have no `telemetry`, pre-daemon records have no `serve`) are
/// tolerated:
/// the missing keys are backfilled with `null` so consumers can index
/// every record identically.
fn load_records(out_path: &str) -> Vec<Json> {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        return Vec::new();
    };
    let doc = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trajectory: {out_path}: {e}");
            std::process::exit(2);
        }
    };
    let Some(records) = doc.get("records").and_then(Json::as_arr) else {
        eprintln!(
            "trajectory: {out_path}: expected an object with a \"records\" array \
             (is this really a bench_trajectory file?)"
        );
        std::process::exit(2);
    };
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let Json::Obj(fields) = r else {
                eprintln!("trajectory: {out_path}: record #{i} is not an object: {r}");
                std::process::exit(2);
            };
            for key in ["commit", "date"] {
                if r.get(key).and_then(Json::as_str).is_none() {
                    eprintln!(
                        "trajectory: {out_path}: record #{i} is missing a string {key:?} field"
                    );
                    std::process::exit(2);
                }
            }
            let mut fields = fields.clone();
            for axis in AXES {
                if r.get(axis).is_none() {
                    fields.push((axis.to_string(), Json::Null));
                }
            }
            Json::Obj(fields)
        })
        .collect()
}

/// One trajectory record: commit + date, the benchmark config, per-config
/// wall times from both sweep axes, the snapshot-replay comparison,
/// (since the observability layer) the per-phase duration breakdown, and
/// (since the daemon) the serve-bench throughput section.
fn build_record(commit: &str, date: &str, bench: &Json) -> Json {
    let axis = |key: &str, fields: &[&str]| -> Json {
        match bench.get(key).and_then(Json::as_arr) {
            None => Json::Null,
            Some(runs) => Json::Arr(
                runs.iter()
                    .map(|r| {
                        fields.iter().fold(Json::obj(), |o, f| {
                            o.field(f, r.get(f).cloned().unwrap_or(Json::Null))
                        })
                    })
                    .collect(),
            ),
        }
    };
    Json::obj()
        .field("commit", commit)
        .field("date", date)
        .field("config", bench.get("config").cloned().unwrap_or(Json::Null))
        .field("threads", axis("runs", &["threads", "wall_ms", "speedup"]))
        .field("sizes", axis("size_runs", &["apps", "sites", "wall_ms"]))
        .field("replay", bench.get("replay").cloned().unwrap_or(Json::Null))
        .field("phases", bench.get("phases").cloned().unwrap_or(Json::Null))
        .field(
            "telemetry",
            bench.get("telemetry").cloned().unwrap_or(Json::Null),
        )
        .field("serve", bench.get("serve").cloned().unwrap_or(Json::Null))
}

/// Today's UTC date as `YYYY-MM-DD`, via the standard civil-from-days
/// algorithm (no external time crates in this workspace).
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
