//! The §5.4 blocking-check experiment: for each exposed site, is the
//! constraint "β ∧ follow the seed path through every relevant branch"
//! satisfiable? The paper: satisfiable for exactly 2 of 14 sites.
//! Also reports the interval-presolve ablation. Analyses run through the
//! `diode-engine` scheduler.
//!
//! Usage: `cargo run --release -p diode-bench --bin ablation [-- FLAGS]`
//! (`--sequential` / `--threads N` select the analysis backend).

use std::time::Instant;

use diode_bench::{ablation_rows, config_with_cache, render_ablation, AnalysisBackend};
use diode_core::DiodeConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backend = AnalysisBackend::from_args(&args);
    let apps = diode_apps::all_apps();
    let (config, cache) = config_with_cache(DiodeConfig::default());
    let rows = ablation_rows(&apps, &config, backend);
    println!(
        "Ablation A (§5.4): full seed-path constraint satisfiability (backend: {})\n",
        backend.name()
    );
    println!("{}", render_ablation(&rows));
    let sat = rows
        .iter()
        .filter(|r| r.full_path_sat == Some(true))
        .count();
    println!(
        "\n{} of {} exposed sites have a satisfiable full-path constraint (paper: 2 of 14).",
        sat,
        rows.len()
    );
    let stats = cache.stats();
    println!(
        "Solver cache: {} hits / {} misses ({:.0}% hit rate)\n",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );

    println!("Ablation B: interval pre-solve on/off (full Table 1 classification)");
    for presolve in [true, false] {
        let mut cfg = DiodeConfig::default();
        cfg.solver.interval_presolve = presolve;
        let t = Instant::now();
        for app in &apps {
            let _ = backend.analyze(app, &cfg);
        }
        println!("  interval_presolve = {presolve:<5} -> {:?}", t.elapsed());
    }
}
