//! The §5.4 blocking-check experiment: for each exposed site, is the
//! constraint "β ∧ follow the seed path through every relevant branch"
//! satisfiable? The paper: satisfiable for exactly 2 of 14 sites.
//! Also reports the interval-presolve ablation.
//!
//! Usage: `cargo run --release -p diode-bench --bin ablation`

use std::time::Instant;

use diode_bench::{ablation_rows, render_ablation};
use diode_core::{analyze_program, DiodeConfig};

fn main() {
    let apps = diode_apps::all_apps();
    let config = DiodeConfig::default();
    let rows = ablation_rows(&apps, &config);
    println!("Ablation A (§5.4): full seed-path constraint satisfiability\n");
    println!("{}", render_ablation(&rows));
    let sat = rows.iter().filter(|r| r.full_path_sat == Some(true)).count();
    println!("\n{} of {} exposed sites have a satisfiable full-path constraint (paper: 2 of 14).\n", sat, rows.len());

    println!("Ablation B: interval pre-solve on/off (full Table 1 classification)");
    for presolve in [true, false] {
        let mut cfg = DiodeConfig::default();
        cfg.solver.interval_presolve = presolve;
        let t = Instant::now();
        for app in &apps {
            let _ = analyze_program(&app.program, &app.seed, &app.format, &cfg);
        }
        println!("  interval_presolve = {presolve:<5} -> {:?}", t.elapsed());
    }
}
