//! Fold a `diode-obs` JSONL campaign trace into a per-phase / per-site
//! breakdown report.
//!
//! Usage: `cargo run --release -p diode-bench --bin profile -- --trace PATH [FLAGS]`
//!
//! * `--trace PATH`          the JSONL trace to fold (written by
//!   `synth_campaign --trace`); required
//! * `--json`                machine-readable single-line JSON instead
//!   of the human table
//! * `--top N`               keep the N slowest sites (default 10)
//! * `--collapsed PATH`      additionally write collapsed stacks
//!   (`app;site;phase... weight` lines) for flamegraph tooling, e.g.
//!   `flamegraph.pl PATH > flame.svg`
//! * `--require-phases a,b`  exit non-zero unless every named phase
//!   appears in the trace with nonzero total duration (the CI
//!   `obs-profile` gate)
//!
//! Diff mode: `profile --diff OLD NEW [--json] [--top N] [--threshold F]`
//! compares two profiled runs — each argument may be a JSONL trace, a
//! `profile --json` document, or a `BENCH_engine.json` artifact — and
//! attributes any wall-clock regression to phases, sites, and
//! solver-cache hit-rate shifts. Exits 1 when a regression is attributed
//! (growth above `--threshold`, default 0.15, as a fraction of
//! instrumented compute), so diffing a run against itself exits 0.
//!
//! Exits 2 on unreadable/invalid traces, 1 on a failed phase gate.

use diode_bench::flag_str;
use diode_bench::profload::load_profile;
use diode_obs::{collapsed_stacks, Phase, ProfileDiff, ProfileReport, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let top = flag_str(&args, "--top")
        .map(|v| match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("profile: --top expects a number, got {v:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(10);
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        let (Some(old_path), Some(new_path)) = (args.get(pos + 1), args.get(pos + 2)) else {
            eprintln!("profile: --diff needs two paths: --diff OLD NEW");
            std::process::exit(2);
        };
        run_diff(&args, old_path, new_path, json, top);
        return;
    }
    let Some(path) = flag_str(&args, "--trace") else {
        eprintln!("profile: --trace PATH is required (or use --diff OLD NEW)");
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("profile: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let trace = match Trace::from_jsonl(&text) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("profile: {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = ProfileReport::from_trace(&trace, top);

    if let Some(out) = flag_str(&args, "--collapsed") {
        if let Err(e) = std::fs::write(&out, collapsed_stacks(&trace)) {
            eprintln!("profile: cannot write {out}: {e}");
            std::process::exit(2);
        }
        if !json {
            println!("Wrote collapsed stacks to {out} (fold with flamegraph.pl)");
        }
    }

    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render());
    }

    if let Some(required) = flag_str(&args, "--require-phases") {
        let mut missing = Vec::new();
        for name in required.split(',').filter(|n| !n.is_empty()) {
            let Some(phase) = Phase::parse(name) else {
                eprintln!("profile: --require-phases: unknown phase {name:?}");
                std::process::exit(2);
            };
            match report.breakdown.phase(phase) {
                Some(row) if row.count > 0 && row.total_ns > 0 => {}
                _ => missing.push(name),
            }
        }
        if !missing.is_empty() {
            eprintln!(
                "profile: phase gate FAILED — no spans (or zero duration) for: {}",
                missing.join(", ")
            );
            std::process::exit(1);
        }
        if !json {
            println!("Phase gate passed: {required}");
        }
    }
}

/// `--diff OLD NEW`: load both runs (trace, profile JSON, or artifact),
/// attribute the regression, exit 1 when one is attributed.
fn run_diff(args: &[String], old_path: &str, new_path: &str, json: bool, top: usize) {
    let threshold = flag_str(args, "--threshold")
        .map(|v| match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => f,
            _ => {
                eprintln!("profile: --threshold expects a positive number, got {v:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(0.15);
    let load = |path: &str| match load_profile(path, top) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("profile: {e}");
            std::process::exit(2);
        }
    };
    let old = load(old_path);
    let new = load(new_path);
    let diff = ProfileDiff::between(&old, &new, top, threshold);
    if json {
        println!("{}", diff.to_json());
    } else {
        println!("{}", diff.render());
    }
    if diff.is_regression() {
        std::process::exit(1);
    }
}
