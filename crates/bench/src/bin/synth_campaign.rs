//! Campaign-scale benchmarking on forged suites: forge N applications
//! with a by-construction oracle, run them through the engine, and grade
//! the report for recall/precision — the workload generator the five §5
//! apps can never provide.
//!
//! Usage: `cargo run --release -p diode-bench --bin synth_campaign [-- FLAGS]`
//!
//! * `--apps N`          forged applications (default 25)
//! * `--depth D`         guard-chain depth per site (default 3)
//! * `--seed S`          forge RNG seed (default from `SynthConfig`)
//! * `--seeds-per-app K` seed inputs per app (default 1)
//! * `--min-recall F`    recall gate in `[0, 1]` (default 1.0). At 1.0
//!   the gate additionally demands exact three-way classification (the
//!   historical perfect-recall behaviour); below 1.0 only recall is
//!   gated. The achieved recall is printed either way.
//! * `--sites N`         pin planted sites per app (min = max = N)
//! * `--sweep`           scaling sweep: run the same suite at 1/2/4/8
//!   worker threads **and** across 10/25/50-app suite sizes, writing
//!   both axes into the `BENCH_engine.json` artifact (path via
//!   `--sweep-out`)
//! * `--bench-replay`    prefix-snapshot benchmark: run the same suite
//!   with snapshots off and on, require byte-identical reports, and
//!   emit the wall-time speedup into the `BENCH_engine.json` artifact
//! * `--no-snapshots`    disable prefix-snapshot re-execution for the
//!   plain (non-artifact) run
//! * `--trace PATH`      record a structured `diode-obs` trace of the
//!   campaign and write it to PATH as versioned JSONL (works in plain
//!   and artifact modes; fold it with the `profile` bin)
//! * `--profile`         run with tracing and print the per-phase /
//!   per-site breakdown after the campaign (adds a `profile` field in
//!   `--json` mode)
//! * `--audit PATH`      record decision provenance — the extraction,
//!   solver queries, enforcement steps, and verdict behind every site —
//!   and write the `diode_audit` document to PATH (plain mode only;
//!   inspect it with the `audit` bin)
//! * `--no-cache`        disable the shared solver cache for the plain
//!   run (isolates solve-phase cost for `profile --diff` attribution)
//! * `--progress`        stream per-site progress lines to stderr with
//!   live solver-cache and snapshot hit rates
//! * `--telemetry PATH`  attach the diode-pulse bus and write the full
//!   event stream (progress events + heartbeats) to PATH as versioned
//!   telemetry JSONL — replay it with the `watch` bin. Works in plain
//!   and artifact modes.
//! * `--watchdog`        run the stall/anomaly watchdog over the pulse
//!   stream and exit non-zero if any anomaly fires (implies attaching
//!   the bus; CI's zero-anomaly gate)
//! * `--anomalies PATH`  write the watchdog's anomaly digest JSONL to
//!   PATH (implies `--watchdog`'s detectors, but not its exit gate)
//! * `--heartbeat-ms N`  heartbeat sampling interval (default 50)
//! * `--json`            machine-readable output (throughput, cache
//!   hit/miss counters, recall/precision) in the BENCH json schema
//! * `--sequential`      single-threaded reference path (also
//!   `DIODE_SEQUENTIAL=1`)
//! * `--threads N`       pin the engine's worker count
//!
//! Exits non-zero when the recall gate fails — this is the CI
//! `synth-smoke` gate — or when `--bench-replay` finds the snapshot-on
//! report diverging from the snapshot-off report.

use std::sync::Arc;
use std::time::{Duration, Instant};

use diode_bench::jsonout::{cache_json, counts_json, ms, score_json, snapshot_json, Json};
use diode_bench::profload::audit_document;
use diode_bench::{flag_f64, flag_num, flag_str, render_synth, synth_rows, AnalysisBackend};
use diode_engine::{
    CampaignEvent, CampaignReport, CampaignSpec, ExecutionMode, ProgressSink, PulseConfig, Recorder,
};
use diode_obs::{
    anomalies_to_jsonl, AnomalyReport, JsonlFileSink, ProfileReport, PulseBus, PulseEvent,
    TelemetryLog, Trace, TraceSink, Watchdog, WatchdogConfig,
};
use diode_synth::{forge, score, ForgedSuite, ScoreCard, SynthConfig};

/// Worker counts of the `--sweep` scaling curve.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Suite sizes of the `--sweep` size curve (the second axis).
const SWEEP_APPS: [usize; 3] = [10, 25, 50];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let sweep = args.iter().any(|a| a == "--sweep");
    let bench_replay = args.iter().any(|a| a == "--bench-replay");
    let backend = AnalysisBackend::from_args(&args);
    if (sweep || bench_replay) && backend != (AnalysisBackend::Engine { threads: None }) {
        eprintln!(
            "--sweep/--bench-replay pin their own execution ladder; drop \
             --sequential/--threads (and DIODE_SEQUENTIAL) when benchmarking"
        );
        std::process::exit(2);
    }

    let apps = flag_num(&args, "--apps").unwrap_or(25) as usize;
    if apps == 0 {
        eprintln!("--apps must be at least 1");
        std::process::exit(2);
    }
    let min_recall = flag_f64(&args, "--min-recall").unwrap_or(1.0);
    if !(0.0..=1.0).contains(&min_recall) {
        eprintln!("--min-recall must lie in [0, 1], got {min_recall}");
        std::process::exit(2);
    }
    let mut cfg = SynthConfig::default()
        .with_apps(apps)
        .with_depth(flag_num(&args, "--depth").unwrap_or(3) as usize);
    if let Some(seed) = flag_num(&args, "--seed") {
        cfg = cfg.with_rng_seed(seed);
    }
    if let Some(k) = flag_num(&args, "--seeds-per-app") {
        cfg.seeds_per_app = (k as usize).max(1);
    }
    if let Some(n) = flag_num(&args, "--sites") {
        let n = (n as usize).max(1);
        cfg.min_sites = n;
        cfg.max_sites = n;
    }
    if let Some(w) = flag_num(&args, "--site-work") {
        cfg.site_work = w as u32;
    }

    let forge_start = Instant::now();
    let suite = forge(&cfg);
    let forge_time = forge_start.elapsed();

    if sweep || bench_replay {
        run_artifact(&cfg, &suite, &args, json, min_recall, sweep, bench_replay);
        return;
    }

    let snapshots = !args.iter().any(|a| a == "--no-snapshots");
    let shared_cache = !args.iter().any(|a| a == "--no-cache");
    let trace_path = flag_str(&args, "--trace");
    let audit_path = flag_str(&args, "--audit");
    let profile = args.iter().any(|a| a == "--profile");
    let progress = args.iter().any(|a| a == "--progress");
    let recorder = (trace_path.is_some() || profile || audit_path.is_some()).then(|| {
        let mut r = Recorder::new();
        if audit_path.is_some() {
            r = r.with_audit();
        }
        Arc::new(r)
    });
    let pulse_opts = PulseOpts::from_args(&args);
    let capture = pulse_opts.attach();
    let (report, card) = run_campaign_observed(
        &suite,
        backend.execution_mode(),
        snapshots,
        shared_cache,
        recorder.clone(),
        progress,
        capture.as_ref().map(|c| c.config.clone()),
    );
    let pulse_outcome = capture.map(|c| c.finish(report.threads));
    let trace = recorder.as_ref().map(|r| stamped_trace(r, &report));
    if let (Some(path), Some(trace)) = (&trace_path, &trace) {
        write_trace(path, trace);
    }
    if let Some(path) = &audit_path {
        write_audit(path, &report, json);
    }
    let rows = synth_rows(&report, &suite.oracle);

    let wall_s = report.wall_time.as_secs_f64().max(1e-9);
    let sites = report.counts().0;
    let units = report.units.len();
    let passed = gate_passes(&card, min_recall);

    if json {
        let mut out = Json::obj()
            .field("table", "synth_campaign")
            .field("backend", backend.name())
            .field("config", config_json(&cfg))
            .field("forge_ms", ms(forge_time))
            .field("wall_ms", ms(report.wall_time))
            .field("threads", report.threads)
            .field("jobs", report.jobs)
            .field(
                "throughput",
                Json::obj()
                    .field("sites_per_sec", sites as f64 / wall_s)
                    .field("units_per_sec", units as f64 / wall_s),
            )
            .field("cache", cache_json(report.cache))
            .field("snapshots", snapshot_json(report.snapshots))
            .field("peak_heap_bytes", report.peak_heap_bytes)
            .field("counts", counts_json(report.counts()))
            .field("oracle", counts_json(suite.oracle.expected_counts()))
            .field("score", score_json(&card))
            .field(
                "gate",
                Json::obj()
                    .field("min_recall", min_recall)
                    .field("achieved_recall", card.recall())
                    .field("passed", passed),
            );
        if let Some(trace) = &trace {
            if profile {
                out = out.field("profile", profile_json(trace));
            }
        }
        if let Some(outcome) = &pulse_outcome {
            out = out.field("telemetry", outcome.json());
        }
        println!("{out}");
    } else {
        println!(
            "Forged campaign: {} apps x {} seed(s), depth {}, rng seed {:#x} (backend: {})\n",
            cfg.apps,
            cfg.seeds_per_app,
            cfg.branch_depth,
            cfg.rng_seed,
            backend.name()
        );
        println!("{}", render_synth(&rows));
        println!(
            "Forged in {:.1}ms, analyzed {} sites in {} units in {:.1}ms \
             ({:.0} sites/s on {} thread(s), {} jobs)",
            forge_time.as_secs_f64() * 1e3,
            sites,
            units,
            wall_s * 1e3,
            sites as f64 / wall_s,
            report.threads,
            report.jobs,
        );
        if let Some(stats) = report.cache {
            println!(
                "Solver cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
                stats.hits,
                stats.misses,
                stats.hit_rate() * 100.0,
                stats.entries
            );
        }
        if let Some(stats) = report.snapshots {
            println!(
                "Prefix snapshots: {} resumed / {} candidate runs ({} captured, {} held)",
                stats.resumes,
                stats.hits + stats.misses,
                stats.captures,
                stats.entries
            );
        }
        println!("Score vs oracle: {card}");
        for m in &card.mismatches {
            println!("  MISMATCH {m}");
        }
        println!(
            "Achieved recall {:.3} against gate {:.3}: {}",
            card.recall(),
            min_recall,
            if passed { "PASS" } else { "FAIL" }
        );
        if min_recall >= 1.0 && !card.is_perfect() {
            println!("RESULT: MISCLASSIFICATION against the forge oracle.");
        }
        if let Some(trace) = &trace {
            if profile {
                println!("\n{}", ProfileReport::from_trace(trace, 10).render());
            }
            if let Some(path) = &trace_path {
                println!("Wrote JSONL trace to {path}");
            }
        }
    }
    let watchdog_ok = pulse_outcome
        .as_ref()
        .is_none_or(|o| o.emit(&pulse_opts, json));
    if !passed || !watchdog_ok {
        std::process::exit(1);
    }
}

fn config_json(cfg: &SynthConfig) -> Json {
    Json::obj()
        .field("apps", cfg.apps)
        .field("depth", cfg.branch_depth)
        .field("sites_min", cfg.min_sites)
        .field("sites_max", cfg.max_sites)
        .field("site_work", cfg.site_work)
        .field("seeds_per_app", cfg.seeds_per_app)
        .field("rng_seed", cfg.rng_seed)
}

fn run_campaign(
    suite: &ForgedSuite,
    mode: ExecutionMode,
    snapshots: bool,
) -> (CampaignReport, ScoreCard) {
    run_campaign_observed(suite, mode, snapshots, true, None, false, None)
}

/// [`run_campaign`] with an optional `diode-obs` recorder attached,
/// optional live per-site progress streaming to stderr, and an optional
/// diode-pulse telemetry bus.
#[allow(clippy::too_many_arguments)]
fn run_campaign_observed(
    suite: &ForgedSuite,
    mode: ExecutionMode,
    snapshots: bool,
    shared_cache: bool,
    recorder: Option<Arc<Recorder>>,
    progress: bool,
    pulse: Option<PulseConfig>,
) -> (CampaignReport, ScoreCard) {
    let mut spec = CampaignSpec {
        mode,
        ..CampaignSpec::from_corpus(suite)
    };
    spec.config.prefix_snapshots = snapshots;
    spec.shared_cache = shared_cache;
    spec.recorder = recorder;
    spec.pulse = pulse;
    let report = if progress {
        spec.run_with_progress(&LiveProgress)
    } else {
        spec.run()
    };
    let card = score(&report, &suite.oracle);
    (report, card)
}

/// The telemetry CLI surface shared by the plain and artifact modes.
struct PulseOpts {
    telemetry_path: Option<String>,
    watchdog: bool,
    anomalies_path: Option<String>,
    heartbeat: Duration,
}

impl PulseOpts {
    fn from_args(args: &[String]) -> PulseOpts {
        PulseOpts {
            telemetry_path: flag_str(args, "--telemetry"),
            watchdog: args.iter().any(|a| a == "--watchdog"),
            anomalies_path: flag_str(args, "--anomalies"),
            heartbeat: Duration::from_millis(flag_num(args, "--heartbeat-ms").unwrap_or(50).max(1)),
        }
    }

    fn enabled(&self) -> bool {
        self.telemetry_path.is_some() || self.watchdog || self.anomalies_path.is_some()
    }

    /// Attaches a fresh bus plus subscriber pump when any telemetry flag
    /// is set.
    fn attach(&self) -> Option<PulseCapture> {
        self.enabled().then(|| PulseCapture::start(self.heartbeat))
    }
}

/// A pulse subscriber pump: drains the bus on a side thread until the
/// campaign's `finished` event arrives, so even very long runs never
/// fill the bounded ring.
struct PulseCapture {
    config: PulseConfig,
    pump: std::thread::JoinHandle<(Vec<PulseEvent>, u64)>,
}

impl PulseCapture {
    fn start(heartbeat: Duration) -> PulseCapture {
        let bus = Arc::new(PulseBus::new());
        let sub = bus.subscribe(1 << 14);
        let pump = std::thread::spawn(move || {
            let mut events = Vec::new();
            loop {
                let mut drained = false;
                while let Some(ev) = sub.try_recv() {
                    drained = true;
                    let done = matches!(ev, PulseEvent::Finished { .. });
                    events.push(ev);
                    if done {
                        return (events, sub.dropped());
                    }
                }
                if !drained {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        let mut config = PulseConfig::new(bus);
        config.heartbeat = heartbeat;
        PulseCapture { config, pump }
    }

    /// Joins the pump (the campaign must have finished, so the
    /// `finished` event is guaranteed to arrive) and runs the watchdog
    /// plus peak-byte bookkeeping over the captured stream.
    fn finish(self, threads: usize) -> PulseOutcome {
        let (events, dropped) = self.pump.join().expect("telemetry pump panicked");
        let mut watchdog = Watchdog::new(WatchdogConfig::default());
        let mut heartbeats = 0u64;
        let mut peak_cache_bytes = 0u64;
        let mut peak_snapshot_bytes = 0u64;
        let mut peak_heap_bytes = 0u64;
        for ev in &events {
            watchdog.feed(ev);
            match ev {
                PulseEvent::Heartbeat(hb) => {
                    heartbeats += 1;
                    peak_cache_bytes = peak_cache_bytes.max(hb.cache_bytes);
                    peak_snapshot_bytes = peak_snapshot_bytes.max(hb.snapshot_bytes);
                    peak_heap_bytes = peak_heap_bytes.max(hb.interp_peak_heap_bytes);
                }
                PulseEvent::SiteFinished {
                    cache_bytes,
                    snapshot_bytes,
                    peak_heap_bytes: site_peak,
                    ..
                } => {
                    peak_cache_bytes = peak_cache_bytes.max(*cache_bytes);
                    peak_snapshot_bytes = peak_snapshot_bytes.max(*snapshot_bytes);
                    peak_heap_bytes = peak_heap_bytes.max(*site_peak);
                }
                _ => {}
            }
        }
        PulseOutcome {
            log: TelemetryLog {
                threads: threads as u32,
                events,
            },
            dropped,
            heartbeats,
            peak_cache_bytes,
            peak_snapshot_bytes,
            peak_heap_bytes,
            anomalies: watchdog.finish(),
        }
    }
}

/// Everything the campaign's pulse stream yielded, post-processed.
struct PulseOutcome {
    log: TelemetryLog,
    dropped: u64,
    heartbeats: u64,
    peak_cache_bytes: u64,
    peak_snapshot_bytes: u64,
    peak_heap_bytes: u64,
    anomalies: Vec<AnomalyReport>,
}

impl PulseOutcome {
    /// Writes the requested telemetry/anomaly files, prints the human
    /// digest unless `json`, and returns `false` when `--watchdog`
    /// gates and an anomaly fired.
    fn emit(&self, opts: &PulseOpts, json: bool) -> bool {
        if let Some(path) = &opts.telemetry_path {
            if let Err(e) = std::fs::write(path, self.log.to_jsonl()) {
                eprintln!("synth_campaign: cannot write {path}: {e}");
                std::process::exit(2);
            }
            if !json {
                println!(
                    "Wrote telemetry JSONL ({} event(s), {} heartbeat(s), {} drop(s)) to {path}",
                    self.log.events.len(),
                    self.heartbeats,
                    self.dropped
                );
            }
        }
        if let Some(path) = &opts.anomalies_path {
            if let Err(e) = std::fs::write(path, anomalies_to_jsonl(&self.anomalies)) {
                eprintln!("synth_campaign: cannot write {path}: {e}");
                std::process::exit(2);
            }
            if !json {
                println!(
                    "Wrote anomaly digest ({} record(s)) to {path}",
                    self.anomalies.len()
                );
            }
        }
        if !json && (opts.watchdog || opts.anomalies_path.is_some()) {
            if self.anomalies.is_empty() {
                println!("Watchdog: no anomalies");
            } else {
                println!("Watchdog: {} anomaly(ies)", self.anomalies.len());
                for a in &self.anomalies {
                    println!("  [{}] {}: {}", a.kind.as_str(), a.subject, a.detail);
                }
            }
        }
        !opts.watchdog || self.anomalies.is_empty()
    }

    /// The artifact/`--json` summary of the stream.
    fn json(&self) -> Json {
        Json::obj()
            .field("events", self.log.events.len())
            .field("heartbeats", self.heartbeats)
            .field("dropped", self.dropped)
            .field("peak_cache_bytes", self.peak_cache_bytes)
            .field("peak_snapshot_bytes", self.peak_snapshot_bytes)
            .field("peak_heap_bytes", self.peak_heap_bytes)
            .field("anomalies", self.anomalies.len())
            .field("host_parallelism", host_parallelism())
    }
}

/// Cores the host actually offers — the context for any thread-scaling
/// number in the artifact (a 1-core container cannot speed up at 2
/// threads no matter what the scheduler does).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `--progress`: streams one line per finished site to stderr, with the
/// live shared-cache and snapshot counters the events now carry.
struct LiveProgress;

impl ProgressSink for LiveProgress {
    fn on_event(&self, event: CampaignEvent<'_>) {
        if let CampaignEvent::SiteFinished {
            app,
            site,
            outcome,
            discovery_time,
            cache,
            snapshots,
            ..
        } = event
        {
            let kind = match outcome {
                diode_core::SiteOutcome::Exposed(_) => "exposed",
                diode_core::SiteOutcome::TargetUnsat => "unsat",
                diode_core::SiteOutcome::Prevented(_) => "prevented",
                diode_core::SiteOutcome::Unknown => "unknown",
            };
            let cache = cache
                .map(|c| format!("  cache {:.0}% hit", c.hit_rate() * 100.0))
                .unwrap_or_default();
            let snapshots = snapshots
                .map(|s| format!("  resume {:.0}%", s.resume_rate() * 100.0))
                .unwrap_or_default();
            eprintln!(
                "[live] {app}/{site}: {kind} in {:.1}ms{cache}{snapshots}",
                discovery_time.as_secs_f64() * 1e3,
            );
        }
    }
}

/// The recorder's merged trace, stamped with the campaign's wall time
/// and thread count so folded reports can compute coverage.
fn stamped_trace(recorder: &Recorder, report: &CampaignReport) -> Trace {
    let mut trace = recorder.trace();
    trace.wall_ns = Some(report.wall_time.as_nanos() as u64);
    trace.threads = Some(report.threads as u32);
    trace
}

fn write_trace(path: &str, trace: &Trace) {
    if let Err(e) = JsonlFileSink::new(path).emit(trace) {
        eprintln!("synth_campaign: {e}");
        std::process::exit(2);
    }
}

/// `--audit PATH`: writes the report's provenance records as a
/// `diode_audit` document for the `audit` bin.
fn write_audit(path: &str, report: &CampaignReport, json: bool) {
    let records = report.provenance.as_deref().unwrap_or(&[]);
    let doc = audit_document(records, report.threads);
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("synth_campaign: cannot write {path}: {e}");
        std::process::exit(2);
    }
    if !json {
        println!(
            "Wrote audit document ({} provenance record(s)) to {path}",
            records.len()
        );
    }
}

/// The folded profile as a `Json` value for embedding in artifacts.
fn profile_json(trace: &Trace) -> Json {
    Json::parse(&ProfileReport::from_trace(trace, 10).to_json())
        .expect("profile JSON is well-formed")
}

/// The recall gate. At the default (and maximum) threshold of 1.0 the
/// historical behaviour is preserved: every site must classify exactly
/// (a false negative is never an exact match, so perfection subsumes
/// recall). Below 1.0 only recall is gated, so CI can tolerate a
/// configured miss budget while still printing the achieved number.
fn gate_passes(card: &ScoreCard, min_recall: f64) -> bool {
    if min_recall >= 1.0 {
        card.is_perfect()
    } else {
        card.recall() >= min_recall
    }
}

/// `--sweep`/`--bench-replay`: assembles the `BENCH_engine.json`
/// artifact. `--sweep` contributes the 1/2/4/8-thread scaling curve
/// (`runs`) and the 10/25/50-app suite-size curve (`size_runs`);
/// `--bench-replay` contributes the prefix-snapshot off/on comparison
/// (`replay`), exiting non-zero unless the two reports are
/// byte-identical. Both sections gate on recall.
fn run_artifact(
    cfg: &SynthConfig,
    suite: &ForgedSuite,
    args: &[String],
    json: bool,
    min_recall: f64,
    sweep: bool,
    bench_replay: bool,
) {
    let out_path = flag_str(args, "--sweep-out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let sites = suite.total_sites();
    let mut all_passed = true;
    let mut artifact = Json::obj()
        .field("table", "bench_engine")
        .field("config", config_json(cfg))
        .field("sites", sites)
        .field("min_recall", min_recall);

    if sweep {
        let mut runs: Vec<Json> = Vec::new();
        let mut baseline_s = 0.0f64;
        if !json {
            println!(
                "Scaling sweep: {} apps, {} sites, depth {}, rng seed {:#x}",
                cfg.apps, sites, cfg.branch_depth, cfg.rng_seed
            );
        }
        for (i, &threads) in SWEEP_THREADS.iter().enumerate() {
            let (report, card) = run_campaign(
                suite,
                ExecutionMode::Parallel {
                    threads: Some(threads),
                },
                true,
            );
            let wall_s = report.wall_time.as_secs_f64().max(1e-9);
            if i == 0 {
                baseline_s = wall_s;
            }
            let speedup = baseline_s / wall_s;
            let passed = gate_passes(&card, min_recall);
            all_passed &= passed;
            if !json {
                let cache = report.cache.map_or_else(String::new, |c| {
                    format!(", cache {}h/{}m", c.hits, c.misses)
                });
                println!(
                    "  {threads} thread(s): {:8.1}ms  {:7.0} sites/s  speedup {speedup:4.2}x  \
                     recall {:.3}{cache}{}",
                    wall_s * 1e3,
                    sites as f64 / wall_s,
                    card.recall(),
                    if passed { "" } else { "  GATE FAIL" },
                );
            }
            runs.push(
                Json::obj()
                    .field("threads", threads)
                    .field("wall_ms", ms(report.wall_time))
                    .field("sites_per_sec", sites as f64 / wall_s)
                    .field("units_per_sec", report.units.len() as f64 / wall_s)
                    .field("speedup", speedup)
                    .field("jobs", report.jobs)
                    .field("cache", cache_json(report.cache))
                    .field("snapshots", snapshot_json(report.snapshots))
                    .field("recall", card.recall())
                    .field("exact_rate", card.exact_rate())
                    .field("gate_passed", passed),
            );
        }
        artifact = artifact.field("runs", Json::Arr(runs));

        // Second axis: suite size at the full worker complement. Each
        // size is forged from the same config, so the 25-app row re-uses
        // the sweep suite's apps (per-app RNG streams make prefixes of a
        // larger forge identical to a smaller one).
        let mut size_runs: Vec<Json> = Vec::new();
        for &apps in &SWEEP_APPS {
            let size_cfg = cfg.clone().with_apps(apps);
            let size_suite = forge(&size_cfg);
            let n_sites = size_suite.total_sites();
            let (report, card) =
                run_campaign(&size_suite, ExecutionMode::Parallel { threads: None }, true);
            let wall_s = report.wall_time.as_secs_f64().max(1e-9);
            let passed = gate_passes(&card, min_recall);
            all_passed &= passed;
            if !json {
                println!(
                    "  {apps:3} apps ({n_sites:3} sites): {:8.1}ms  {:7.0} sites/s  \
                     recall {:.3}{}",
                    wall_s * 1e3,
                    n_sites as f64 / wall_s,
                    card.recall(),
                    if passed { "" } else { "  GATE FAIL" },
                );
            }
            size_runs.push(
                Json::obj()
                    .field("apps", apps)
                    .field("sites", n_sites)
                    .field("threads", report.threads)
                    .field("wall_ms", ms(report.wall_time))
                    .field("sites_per_sec", n_sites as f64 / wall_s)
                    .field("units_per_sec", report.units.len() as f64 / wall_s)
                    .field("jobs", report.jobs)
                    .field("cache", cache_json(report.cache))
                    .field("snapshots", snapshot_json(report.snapshots))
                    .field("recall", card.recall())
                    .field("exact_rate", card.exact_rate())
                    .field("gate_passed", passed),
            );
        }
        artifact = artifact.field("size_runs", Json::Arr(size_runs));
    }

    if bench_replay {
        let (section, passed) = run_replay_bench(cfg, suite, json, min_recall);
        all_passed &= passed;
        artifact = artifact.field("replay", section);
    }

    // Phase attribution + telemetry: one traced run at the full worker
    // complement contributes per-phase totals and the pulse-stream
    // summary (peak cache/heap bytes, anomaly count) to the artifact,
    // so speed PRs can be gated on the phase they claim to improve and
    // resource regressions show up as byte deltas. `--trace PATH`
    // additionally writes the raw JSONL trace for the `profile` bin;
    // `--telemetry PATH` the pulse stream for the `watch` bin.
    {
        let pulse_opts = PulseOpts::from_args(args);
        let capture = PulseCapture::start(pulse_opts.heartbeat);
        let recorder = Arc::new(Recorder::new());
        let (report, card) = run_campaign_observed(
            suite,
            ExecutionMode::Parallel { threads: None },
            true,
            true,
            Some(Arc::clone(&recorder)),
            false,
            Some(capture.config.clone()),
        );
        all_passed &= gate_passes(&card, min_recall);
        let trace = stamped_trace(&recorder, &report);
        if let Some(path) = flag_str(args, "--trace") {
            write_trace(&path, &trace);
        }
        let profile = ProfileReport::from_trace(&trace, 10);
        if !json {
            println!(
                "Traced run: wall {:.1}ms, instrumented compute {:.1}ms, queue wait {:.1}ms",
                ms(report.wall_time),
                profile.breakdown.top_level_ns as f64 / 1e6,
                profile.breakdown.queue_wait_ns as f64 / 1e6,
            );
        }
        artifact = artifact.field("phases", profile_json(&trace));
        let outcome = capture.finish(report.threads);
        all_passed &= outcome.emit(&pulse_opts, json);
        artifact = artifact.field("telemetry", outcome.json());
    }

    let text = artifact.to_string();
    if let Err(e) = std::fs::write(&out_path, format!("{text}\n")) {
        eprintln!("synth_campaign: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    if json {
        println!("{text}");
    } else {
        println!("Wrote benchmark artifact to {out_path}");
    }
    if !all_passed {
        std::process::exit(1);
    }
}

/// The `--bench-replay` measurement: the same suite with prefix
/// snapshots off, then on, best of two runs each (first pair doubles as
/// warm-up), requiring byte-identical reports and a perfect recall gate
/// on both paths.
fn run_replay_bench(
    cfg: &SynthConfig,
    suite: &ForgedSuite,
    json: bool,
    min_recall: f64,
) -> (Json, bool) {
    let mode = ExecutionMode::Parallel { threads: None };
    let mut walls = [f64::INFINITY; 2]; // [off, on]
    let mut last: Vec<Option<(CampaignReport, ScoreCard)>> = vec![None, None];
    for round in 0..2 {
        for (i, &snapshots) in [false, true].iter().enumerate() {
            let (report, card) = run_campaign(suite, mode, snapshots);
            walls[i] = walls[i].min(report.wall_time.as_secs_f64().max(1e-9));
            if round == 1 || last[i].is_none() {
                last[i] = Some((report, card));
            }
        }
    }
    let (off_report, off_card) = last[0].take().expect("off run recorded");
    let (on_report, on_card) = last[1].take().expect("on run recorded");
    let identical = off_report.outcome_fingerprint() == on_report.outcome_fingerprint();
    let speedup = walls[0] / walls[1];
    let gates = gate_passes(&off_card, min_recall) && gate_passes(&on_card, min_recall);
    if !identical {
        eprintln!(
            "--bench-replay: snapshot-on report DIVERGES from the snapshot-off report — \
             the determinism contract is broken"
        );
    }
    if !json {
        println!(
            "Replay bench ({} apps, depth {}, {} sites): off {:.1}ms, on {:.1}ms, \
             speedup {speedup:.2}x, identical: {identical}",
            cfg.apps,
            cfg.branch_depth,
            suite.total_sites(),
            walls[0] * 1e3,
            walls[1] * 1e3,
        );
        if let Some(stats) = on_report.snapshots {
            println!(
                "  snapshots: {} resumed / {} candidate runs ({} captured)",
                stats.resumes,
                stats.hits + stats.misses,
                stats.captures
            );
        }
    }
    let section = Json::obj()
        .field("apps", cfg.apps)
        .field("depth", cfg.branch_depth)
        .field("sites", suite.total_sites())
        .field("off_ms", walls[0] * 1e3)
        .field("on_ms", walls[1] * 1e3)
        .field("speedup", speedup)
        .field("identical", identical)
        .field("snapshots", snapshot_json(on_report.snapshots))
        .field("recall", on_card.recall());
    (section, identical && gates)
}
