//! Campaign-scale benchmarking on forged suites: forge N applications
//! with a by-construction oracle, run them through the engine, and grade
//! the report for recall/precision — the workload generator the five §5
//! apps can never provide.
//!
//! Usage: `cargo run --release -p diode-bench --bin synth_campaign [-- FLAGS]`
//!
//! * `--apps N`          forged applications (default 25)
//! * `--depth D`         guard-chain depth per site (default 3)
//! * `--seed S`          forge RNG seed (default from `SynthConfig`)
//! * `--seeds-per-app K` seed inputs per app (default 1)
//! * `--json`            machine-readable output (throughput, cache
//!   hit-rate, recall/precision) in the BENCH json schema
//! * `--sequential`      single-threaded reference path (also
//!   `DIODE_SEQUENTIAL=1`)
//! * `--threads N`       pin the engine's worker count
//!
//! Exits non-zero when recall < 1.0 or any site is misclassified — this
//! is the CI `synth-smoke` gate.

use std::time::Instant;

use diode_bench::jsonout::{cache_json, counts_json, score_json, Json};
use diode_bench::{flag_num, render_synth, synth_rows, AnalysisBackend};
use diode_engine::CampaignSpec;
use diode_synth::{forge, score, SynthConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let backend = AnalysisBackend::from_args(&args);

    let apps = flag_num(&args, "--apps").unwrap_or(25) as usize;
    if apps == 0 {
        eprintln!("--apps must be at least 1");
        std::process::exit(2);
    }
    let mut cfg = SynthConfig::default()
        .with_apps(apps)
        .with_depth(flag_num(&args, "--depth").unwrap_or(3) as usize);
    if let Some(seed) = flag_num(&args, "--seed") {
        cfg = cfg.with_rng_seed(seed);
    }
    if let Some(k) = flag_num(&args, "--seeds-per-app") {
        cfg.seeds_per_app = (k as usize).max(1);
    }

    let forge_start = Instant::now();
    let suite = forge(&cfg);
    let forge_time = forge_start.elapsed();

    let spec = CampaignSpec {
        mode: backend.execution_mode(),
        ..CampaignSpec::new(suite.campaign_apps())
    };
    let report = spec.run();
    let card = score(&report, &suite.oracle);
    let rows = synth_rows(&report, &suite.oracle);

    let wall_s = report.wall_time.as_secs_f64().max(1e-9);
    let sites = report.counts().0;
    let units = report.units.len();

    if json {
        let out = Json::obj()
            .field("table", "synth_campaign")
            .field("backend", backend.name())
            .field(
                "config",
                Json::obj()
                    .field("apps", cfg.apps)
                    .field("depth", cfg.branch_depth)
                    .field("seeds_per_app", cfg.seeds_per_app)
                    .field("rng_seed", cfg.rng_seed),
            )
            .field("forge_ms", forge_time)
            .field("wall_ms", report.wall_time)
            .field("threads", report.threads)
            .field("jobs", report.jobs)
            .field(
                "throughput",
                Json::obj()
                    .field("sites_per_sec", sites as f64 / wall_s)
                    .field("units_per_sec", units as f64 / wall_s),
            )
            .field("cache", cache_json(report.cache))
            .field("counts", counts_json(report.counts()))
            .field("oracle", counts_json(suite.oracle.expected_counts()))
            .field("score", score_json(&card));
        println!("{out}");
    } else {
        println!(
            "Forged campaign: {} apps x {} seed(s), depth {}, rng seed {:#x} (backend: {})\n",
            cfg.apps,
            cfg.seeds_per_app,
            cfg.branch_depth,
            cfg.rng_seed,
            backend.name()
        );
        println!("{}", render_synth(&rows));
        println!(
            "Forged in {:.1}ms, analyzed {} sites in {} units in {:.1}ms \
             ({:.0} sites/s on {} thread(s), {} jobs)",
            forge_time.as_secs_f64() * 1e3,
            sites,
            units,
            wall_s * 1e3,
            sites as f64 / wall_s,
            report.threads,
            report.jobs,
        );
        if let Some(stats) = report.cache {
            println!(
                "Solver cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
                stats.hits,
                stats.misses,
                stats.hit_rate() * 100.0,
                stats.entries
            );
        }
        println!("Score vs oracle: {card}");
        for m in &card.mismatches {
            println!("  MISMATCH {m}");
        }
        if card.is_perfect() {
            println!("RESULT: every site classified exactly as the oracle predicts.");
        } else {
            println!("RESULT: MISCLASSIFICATION against the forge oracle.");
        }
    }
    // A false negative is never an exact match, so perfection subsumes
    // the recall gate.
    if !card.is_perfect() {
        std::process::exit(1);
    }
}
