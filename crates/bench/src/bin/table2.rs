//! Regenerates the paper's Table 2 (per-overflow evaluation summary),
//! including the success-rate experiments of §5.5/§5.6, with analyses
//! running through the `diode-engine` scheduler + shared query cache.
//!
//! Usage: `cargo run --release -p diode-bench --bin table2 [-- FLAGS]`
//!
//! * `--samples N`   inputs per success-rate column (default 200, as in
//!   the paper)
//! * `--json`        machine-readable output (per-site timings, rates,
//!   cache hit-rate)
//! * `--sequential`  original single-threaded analysis path
//! * `--threads N`   pin the engine's worker count

use std::time::Instant;

use diode_bench::jsonout::{cache_json, ms, Json};
use diode_bench::{
    config_with_cache, render_table2, table2_rows, table2_shape_matches_paper, AnalysisBackend,
    Table2Row,
};
use diode_core::DiodeConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let backend = AnalysisBackend::from_args(&args);
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let apps = diode_apps::all_apps();
    let (config, cache) = config_with_cache(DiodeConfig::default());

    let start = Instant::now();
    let rows = table2_rows(&apps, &config, samples, 0xD10DE, backend);
    let wall = start.elapsed();
    let problems = table2_shape_matches_paper(&rows, &apps);

    if json {
        let out = Json::obj()
            .field("table", "table2")
            .field("backend", backend.name())
            .field("samples", samples)
            .field("wall_ms", ms(wall))
            .field("shape_matches_paper", problems.is_empty())
            .field("problems", problems.clone())
            .field("cache", cache_json(Some(cache.stats())))
            .field("sites", rows.iter().map(site_json).collect::<Vec<_>>());
        println!("{out}");
    } else {
        println!(
            "Table 2: Evaluation Summary ({samples} samples per rate column; backend: {})\n",
            backend.name()
        );
        println!("{}", render_table2(&rows));
        let stats = cache.stats();
        println!(
            "Solver cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.entries
        );
        if problems.is_empty() {
            println!("RESULT: all shape invariants hold (14 exposed rows; 0-enforcement sites; enforcement bands; exhaustive CVE-2008-2430 enumeration).");
        } else {
            println!("RESULT: shape mismatches:");
            for p in &problems {
                println!("  - {p}");
            }
        }
    }
    if !problems.is_empty() {
        std::process::exit(1);
    }
}

fn site_json(r: &Table2Row) -> Json {
    Json::obj()
        .field("app", r.app)
        .field("site", r.site.clone())
        .field("cve", r.cve.clone())
        .field("error_type", r.error_type.clone())
        .field("analysis_ms", ms(r.analysis_time))
        .field("discovery_ms", ms(r.discovery_time))
        .field("enforced", r.enforced.0)
        .field("total_relevant", r.enforced.1)
        .field(
            "target_rate",
            Json::obj()
                .field("hits", r.target_rate.hits)
                .field("samples", r.target_rate.samples)
                .field("exhaustive", r.target_rate.exhaustive),
        )
        .field(
            "enforced_rate",
            r.enforced_rate.as_ref().map(|e| {
                Json::obj()
                    .field("hits", e.hits)
                    .field("samples", e.samples)
                    .field("exhaustive", e.exhaustive)
            }),
        )
}
