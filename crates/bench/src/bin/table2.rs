//! Regenerates the paper's Table 2 (per-overflow evaluation summary),
//! including the 200-input success-rate experiments of §5.5/§5.6.
//!
//! Usage: `cargo run --release -p diode-bench --bin table2 [-- --samples N]`
//! (default 200 samples per rate column, as in the paper).

use diode_bench::{render_table2, table2_rows, table2_shape_matches_paper};
use diode_core::DiodeConfig;

fn main() {
    let samples = std::env::args()
        .skip_while(|a| a != "--samples")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let apps = diode_apps::all_apps();
    let config = DiodeConfig::default();
    let rows = table2_rows(&apps, &config, samples, 0xD10DE);
    println!("Table 2: Evaluation Summary ({samples} samples per rate column)\n");
    println!("{}", render_table2(&rows));
    let problems = table2_shape_matches_paper(&rows, &apps);
    if problems.is_empty() {
        println!("RESULT: all shape invariants hold (14 exposed rows; 0-enforcement sites; enforcement bands; exhaustive CVE-2008-2430 enumeration).");
    } else {
        println!("RESULT: shape mismatches:");
        for p in &problems {
            println!("  - {p}");
        }
        std::process::exit(1);
    }
}
