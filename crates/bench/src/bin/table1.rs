//! Regenerates the paper's Table 1 (target-site classification), running
//! the whole-program analyses through the `diode-engine` work-stealing
//! scheduler with a shared solver-query cache.
//!
//! Usage: `cargo run --release -p diode-bench --bin table1 [-- FLAGS]`
//!
//! * `--json`        machine-readable output (per-app timings + counts,
//!   cache hit-rate, engine-vs-sequential speedup)
//! * `--app NAME`    single-app run: keep only benchmark apps whose name
//!   contains `NAME` (case-insensitive)
//! * `--synth N`     forged-suite run: replace the five §5 apps with `N`
//!   freshly forged scenarios and grade the result against the synth
//!   oracle (exit non-zero unless recall is 1.0 and every classification
//!   matches); combine with `--app` to filter forged app names
//! * `--sequential`  original single-threaded path (also
//!   `DIODE_SEQUENTIAL=1`)
//! * `--threads N`   pin the engine's worker count

use std::time::Instant;

use diode_bench::jsonout::{cache_json, counts_json, ms, score_json, Json};
use diode_bench::{
    config_with_cache, flag_num, flag_str, render_synth, render_table1, synth_rows,
    table1_matches_paper, table1_rows, AnalysisBackend, Table1Row,
};
use diode_core::DiodeConfig;
use diode_engine::CampaignSpec;
use diode_synth::{forge, score, SynthConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let backend = AnalysisBackend::from_args(&args);
    let app_filter = flag_str(&args, "--app").map(|f| f.to_lowercase());

    if let Some(n) = flag_num(&args, "--synth") {
        if n == 0 {
            eprintln!("--synth must be at least 1");
            std::process::exit(2);
        }
        run_forged_suite(n as usize, app_filter.as_deref(), backend, json);
        return;
    }

    let mut apps = diode_apps::all_apps();
    if let Some(filter) = &app_filter {
        apps.retain(|a| a.name.to_lowercase().contains(filter));
        if apps.is_empty() {
            eprintln!("--app {filter:?} matches none of the five benchmark applications");
            std::process::exit(2);
        }
    }
    let (config, cache) = config_with_cache(DiodeConfig::default());

    let start = Instant::now();
    let rows = table1_rows(&apps, &config, backend);
    let wall = start.elapsed();
    let matches = table1_matches_paper(&rows);

    if json {
        // Time the sequential reference once (cache-free, so the engine's
        // caching does not flatter the comparison) to report the speedup.
        let speedup = match backend {
            AnalysisBackend::Engine { .. } => {
                let seq_start = Instant::now();
                let _ = table1_rows(&apps, &DiodeConfig::default(), AnalysisBackend::Sequential);
                Some(seq_start.elapsed().as_secs_f64() / wall.as_secs_f64().max(1e-9))
            }
            AnalysisBackend::Sequential => None,
        };
        let out = Json::obj()
            .field("table", "table1")
            .field("backend", backend.name())
            .field("wall_ms", ms(wall))
            .field("engine_speedup", speedup)
            .field("matches_paper", matches)
            .field("cache", cache_json(Some(cache.stats())))
            .field("apps", rows.iter().map(app_json).collect::<Vec<_>>())
            .field(
                "totals",
                counts_json(rows.iter().fold((0, 0, 0, 0), |acc, r| {
                    (
                        acc.0 + r.measured.0,
                        acc.1 + r.measured.1,
                        acc.2 + r.measured.2,
                        acc.3 + r.measured.3,
                    )
                })),
            );
        println!("{out}");
    } else {
        println!(
            "Table 1: Target Site Classification (measured vs paper; backend: {})\n",
            backend.name()
        );
        println!("{}", render_table1(&rows));
        let stats = cache.stats();
        println!(
            "Solver cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.entries
        );
        if matches {
            println!("RESULT: every per-application classification count matches the paper.");
        } else {
            println!("RESULT: MISMATCH against the paper's Table 1.");
        }
    }
    if !matches {
        std::process::exit(1);
    }
}

/// The `--synth N` path: a Table 1-style run over a forged suite, graded
/// against the by-construction oracle instead of the paper.
fn run_forged_suite(n: usize, filter: Option<&str>, backend: AnalysisBackend, json: bool) {
    let cfg = SynthConfig::default().with_apps(n);
    let suite = forge(&cfg);
    let mut apps = suite.campaign_apps();
    if let Some(filter) = filter {
        apps.retain(|a| a.name.to_lowercase().contains(filter));
        if apps.is_empty() {
            eprintln!("--app {filter:?} matches no forged application");
            std::process::exit(2);
        }
    }
    let spec = CampaignSpec {
        mode: backend.execution_mode(),
        ..CampaignSpec::new(apps)
    };
    let report = spec.run();
    let card = score(&report, &suite.oracle);
    let rows = synth_rows(&report, &suite.oracle);

    if json {
        let out = Json::obj()
            .field("table", "table1-synth")
            .field("backend", backend.name())
            .field("forged_apps", n)
            .field("wall_ms", ms(report.wall_time))
            .field("cache", cache_json(report.cache))
            .field("counts", counts_json(report.counts()))
            .field("score", score_json(&card));
        println!("{out}");
    } else {
        println!(
            "Table 1 (forged suite of {n}; backend: {})\n",
            backend.name()
        );
        println!("{}", render_synth(&rows));
        println!("Score vs oracle: {card}");
        for m in &card.mismatches {
            println!("  MISMATCH {m}");
        }
    }
    // A false negative is never an exact match, so perfection subsumes
    // the recall gate.
    if !card.is_perfect() {
        std::process::exit(1);
    }
}

fn app_json(r: &Table1Row) -> Json {
    Json::obj()
        .field("app", r.app)
        .field("analysis_ms", ms(r.analysis_time))
        .field("measured", counts_json(r.measured))
        .field("paper", counts_json(r.paper))
        .field("matches", r.measured == r.paper)
}
