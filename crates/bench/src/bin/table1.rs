//! Regenerates the paper's Table 1 (target-site classification).
//!
//! Usage: `cargo run --release -p diode-bench --bin table1`

use diode_bench::{render_table1, table1_matches_paper, table1_rows};
use diode_core::DiodeConfig;

fn main() {
    let apps = diode_apps::all_apps();
    let config = DiodeConfig::default();
    let rows = table1_rows(&apps, &config);
    println!("Table 1: Target Site Classification (measured vs paper)\n");
    println!("{}", render_table1(&rows));
    if table1_matches_paper(&rows) {
        println!("RESULT: every per-application classification count matches the paper.");
    } else {
        println!("RESULT: MISMATCH against the paper's Table 1.");
        std::process::exit(1);
    }
}
