//! DIODE vs fuzzing baselines on every exposed site (§6's comparison:
//! random and taint-directed fuzzing rarely navigate the sanity checks).
//!
//! Usage: `cargo run --release -p diode-bench --bin fuzz_compare [-- --trials N]`

use diode_bench::{fuzz_rows, render_fuzz};
use diode_core::DiodeConfig;

fn main() {
    let trials = std::env::args()
        .skip_while(|a| a != "--trials")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let apps = diode_apps::all_apps();
    let config = DiodeConfig::default();
    let rows = fuzz_rows(&apps, &config, trials);
    println!("DIODE vs fuzzing baselines ({trials} trials per fuzzer)\n");
    println!("{}", render_fuzz(&rows));
    let diode_found = rows.iter().filter(|r| r.diode.is_some()).count();
    let fuzz_found = rows
        .iter()
        .filter(|r| r.random.hits > 0 || r.taint.hits > 0)
        .count();
    println!(
        "\nDIODE exposes {}/{} sites; fuzzing finds an overflow at {}/{} (mostly the check-free ones).",
        diode_found, rows.len(), fuzz_found, rows.len()
    );
}
