//! DIODE vs fuzzing baselines on every exposed site (§6's comparison:
//! random and taint-directed fuzzing rarely navigate the sanity checks).
//! DIODE's analyses run through the `diode-engine` scheduler.
//!
//! Usage: `cargo run --release -p diode-bench --bin fuzz_compare [-- FLAGS]`
//!
//! * `--trials N`    fuzzing trials per fuzzer per site (default 200)
//! * `--json`        machine-readable output
//! * `--sequential`  original single-threaded analysis path
//! * `--threads N`   pin the engine's worker count

use std::time::Instant;

use diode_bench::jsonout::{cache_json, ms, Json};
use diode_bench::{config_with_cache, fuzz_rows, render_fuzz, AnalysisBackend, FuzzRow};
use diode_core::DiodeConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let backend = AnalysisBackend::from_args(&args);
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let apps = diode_apps::all_apps();
    let (config, cache) = config_with_cache(DiodeConfig::default());

    let start = Instant::now();
    let rows = fuzz_rows(&apps, &config, trials, backend);
    let wall = start.elapsed();
    let diode_found = rows.iter().filter(|r| r.diode.is_some()).count();
    let fuzz_found = rows
        .iter()
        .filter(|r| r.random.hits > 0 || r.taint.hits > 0)
        .count();

    if json {
        let out = Json::obj()
            .field("table", "fuzz_compare")
            .field("backend", backend.name())
            .field("trials", trials)
            .field("wall_ms", ms(wall))
            .field("diode_found", diode_found)
            .field("fuzz_found", fuzz_found)
            .field("cache", cache_json(Some(cache.stats())))
            .field("sites", rows.iter().map(site_json).collect::<Vec<_>>());
        println!("{out}");
    } else {
        println!(
            "DIODE vs fuzzing baselines ({trials} trials per fuzzer; backend: {})\n",
            backend.name()
        );
        println!("{}", render_fuzz(&rows));
        println!(
            "\nDIODE exposes {}/{} sites; fuzzing finds an overflow at {}/{} (mostly the check-free ones).",
            diode_found,
            rows.len(),
            fuzz_found,
            rows.len()
        );
    }
}

fn site_json(r: &FuzzRow) -> Json {
    Json::obj()
        .field("app", r.app)
        .field("site", r.site.clone())
        .field("diode_enforced", r.diode)
        .field(
            "random",
            Json::obj()
                .field("hits", r.random.hits)
                .field("trials", r.random.trials),
        )
        .field(
            "taint",
            Json::obj()
                .field("hits", r.taint.hits)
                .field("trials", r.taint.trials),
        )
}
