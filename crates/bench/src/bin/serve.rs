//! serve — the client for a running `diode-serve` daemon, plus the
//! serve-bench load generator.
//!
//! Client subcommands (all take `--addr HOST:PORT`, default
//! `127.0.0.1:7070`):
//!
//! * `serve submit [--apps N] [--depth N] [--sites N] [--seeds-per-app N]
//!   [--site-work N] [--rng-seed N] [--suite ID] [--threads N] [--wait]`
//!   — enqueue a campaign job (forge spec by default, or a corpus suite
//!   id/prefix with `--suite`). Prints the daemon's JSON response line;
//!   with `--wait` that line is the full job report. Watchdog knobs
//!   ride along (`synth_campaign` parity): `--watchdog` runs the job
//!   under default thresholds and, with `--wait`, exits 1 if any
//!   anomaly fires; `--slow-factor F`, `--slow-floor-ms N`,
//!   `--min-sites N`, `--idle-heartbeats N` (0 disables), and
//!   `--cache-ceiling BYTES` tune it (each implies `--watchdog`'s
//!   detectors); `--anomalies PATH` saves the reply's anomaly digest
//!   JSONL (render with `watch --anomalies`). `--stall-work N` plants
//!   one deliberately slow site (the flight-recorder drill).
//! * `serve status [--job ID]` — daemon summary, or one job's state.
//! * `serve watch --job ID` — stream the job's telemetry JSONL to
//!   stdout until its `finished` record (pipe to a file and render it
//!   with `watch --replay`, or point `watch --follow` at the daemon's
//!   `--telemetry-file`).
//! * `serve metrics [--prometheus]` — scrape the daemon's service
//!   metrics: one JSON object by default, Prometheus text format with
//!   `--prometheus`.
//! * `serve health` — the typed readiness/liveness probe; exits 0 iff
//!   the daemon reports itself healthy.
//! * `serve shutdown` — drain the queue and stop the daemon.
//! * `serve assert-warmer COLD.json WARM.json` — exit 0 iff the WARM
//!   report's per-job solver-cache hit rate strictly exceeds COLD's
//!   (the CI warm-cache gate over two saved `submit --wait` replies).
//!
//! The load mode (the `--serve-bench` axis of `BENCH_engine.json`):
//!
//! * `serve bench [--addr A] [--clients N] [--jobs N] [--apps N]
//!   [--depth N] [--site-work N] [--workers N] [--bench-out PATH]
//!   [--json]` — run one cold job, then `--clients` concurrent client
//!   threads each submitting `--jobs` synchronous jobs of the same spec
//!   against the warm caches. Reports jobs/sec and p50/p99 latency,
//!   asserts the warm hit rate strictly exceeds the cold one (exit 1
//!   otherwise), and merges a `"serve"` section into `--bench-out`
//!   (default none) without disturbing the artifact's other axes —
//!   including the daemon's own scraped metrics as the section's
//!   `"daemon"` field. With no `--addr` it hosts an in-process daemon
//!   on an ephemeral port, so the bench is self-contained.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use diode_bench::jsonout::Json;
use diode_bench::{flag_f64, flag_num, flag_str};
use diode_obs::{anomalies_to_jsonl, AnomalyKind, AnomalyReport};
use diode_serve::{serve, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!(
            "serve: usage: serve submit|status|watch|metrics|health|shutdown|\
             assert-warmer|bench [FLAGS]"
        );
        std::process::exit(2);
    };
    let addr = flag_str(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    match cmd {
        "submit" => {
            let reply = request(&addr, &submit_line(&args));
            println!("{reply}");
            handle_anomalies(&args, &reply);
            exit_by_ok(&reply);
        }
        "status" => {
            let line = match flag_str(&args, "--job") {
                Some(job) => format!(r#"{{"op":"status","job":"{job}"}}"#),
                None => r#"{"op":"status"}"#.to_string(),
            };
            let reply = request(&addr, &line);
            println!("{reply}");
            exit_by_ok(&reply);
        }
        "watch" => {
            let Some(job) = flag_str(&args, "--job") else {
                eprintln!("serve watch: --job ID is required");
                std::process::exit(2);
            };
            stream_watch(&addr, &job);
        }
        "metrics" => {
            if args.iter().any(|a| a == "--prometheus") {
                let text = request_text(&addr, r#"{"op":"metrics","format":"prometheus"}"#);
                // A disabled registry answers with a one-line rejection.
                if let Ok(j) = Json::parse(text.trim()) {
                    if j.get("ok").and_then(Json::as_bool) == Some(false) {
                        eprintln!("serve: {j}");
                        std::process::exit(1);
                    }
                }
                print!("{text}");
            } else {
                let reply = request(&addr, r#"{"op":"metrics"}"#);
                println!("{reply}");
                exit_by_ok(&reply);
            }
        }
        "health" => {
            let reply = request(&addr, r#"{"op":"health"}"#);
            println!("{reply}");
            exit_by_ok(&reply);
            if reply.get("healthy").and_then(Json::as_bool) != Some(true) {
                std::process::exit(1);
            }
        }
        "shutdown" => {
            let reply = request(&addr, r#"{"op":"shutdown"}"#);
            println!("{reply}");
            exit_by_ok(&reply);
        }
        "assert-warmer" => assert_warmer(&args),
        "bench" => run_bench(&args),
        other => {
            eprintln!("serve: unknown subcommand {other:?}");
            std::process::exit(2);
        }
    }
}

/// Builds a submit request line from the spec/suite flags.
fn submit_line(args: &[String]) -> String {
    let mut obj = Json::obj();
    if let Some(suite) = flag_str(args, "--suite") {
        obj = obj.field("op", "submit").field("suite", suite);
    } else {
        let mut spec = Json::obj();
        for (flag, key) in [
            ("--apps", "apps"),
            ("--depth", "depth"),
            ("--sites", "sites"),
            ("--seeds-per-app", "seeds_per_app"),
            ("--site-work", "site_work"),
            ("--rng-seed", "rng_seed"),
            ("--stall-work", "stall_work"),
        ] {
            if let Some(v) = flag_num(args, flag) {
                spec = spec.field(key, v);
            }
        }
        obj = obj.field("op", "submit").field("spec", spec);
    }
    if args.iter().any(|a| a == "--wait") {
        obj = obj.field("wait", true);
    }
    if let Some(t) = flag_num(args, "--threads") {
        obj = obj.field("threads", t);
    }
    if let Some(w) = watchdog_json(args) {
        obj = obj.field("watchdog", w);
    }
    obj.to_string()
}

/// The submit request's `watchdog` field from the CLI knobs: `true`
/// for `--watchdog` alone, an override object when thresholds are
/// tuned, absent when neither is given.
fn watchdog_json(args: &[String]) -> Option<Json> {
    let mut overrides = Json::obj();
    let mut tuned = false;
    if let Some(f) = flag_f64(args, "--slow-factor") {
        overrides = overrides.field("slow_factor", f);
        tuned = true;
    }
    if let Some(ms) = flag_num(args, "--slow-floor-ms") {
        overrides = overrides.field("slow_floor_ms", ms);
        tuned = true;
    }
    if let Some(n) = flag_num(args, "--min-sites") {
        overrides = overrides.field("min_sites", n);
        tuned = true;
    }
    if let Some(n) = flag_num(args, "--idle-heartbeats") {
        overrides = overrides.field("idle_heartbeats", n);
        tuned = true;
    }
    if let Some(b) = flag_num(args, "--cache-ceiling") {
        overrides = overrides.field("cache_ceiling", b);
        tuned = true;
    }
    if tuned {
        Some(overrides)
    } else if args.iter().any(|a| a == "--watchdog") {
        Some(Json::from(true))
    } else {
        None
    }
}

/// Whether any watchdog knob was passed (the exit-gate opt-in).
fn watchdog_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--watchdog") || watchdog_json(args).is_some()
}

/// Post-processes a `submit --wait` reply's `anomalies` array:
/// optionally saves the digest JSONL, and applies the `synth_campaign`
/// exit gate (any anomaly under `--watchdog` exits 1).
fn handle_anomalies(args: &[String], reply: &Json) {
    let anomalies: Vec<AnomalyReport> = reply
        .get("anomalies")
        .and_then(Json::as_arr)
        .map(|rows| rows.iter().filter_map(anomaly_from_json).collect())
        .unwrap_or_default();
    if let Some(path) = flag_str(args, "--anomalies") {
        if reply.get("anomalies").is_none() {
            eprintln!(
                "serve submit: --anomalies needs a watchdog report (pass --watchdog and --wait)"
            );
            std::process::exit(2);
        }
        if let Err(e) = std::fs::write(&path, anomalies_to_jsonl(&anomalies)) {
            eprintln!("serve submit: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if watchdog_requested(args) && !anomalies.is_empty() {
        eprintln!(
            "serve submit: WATCHDOG FAIL: {} anomaly(ies) fired",
            anomalies.len()
        );
        for a in &anomalies {
            eprintln!("  [{}] {}: {}", a.kind.as_str(), a.subject, a.detail);
        }
        std::process::exit(1);
    }
}

/// One `anomalies` array row from a job report, back as a typed report.
fn anomaly_from_json(row: &Json) -> Option<AnomalyReport> {
    Some(AnomalyReport {
        kind: AnomalyKind::parse(row.get("kind")?.as_str()?)?,
        subject: row.get("subject")?.as_str()?.to_string(),
        detail: row.get("detail")?.as_str()?.to_string(),
        value: row.get("value")?.as_u64()?,
        threshold: row.get("threshold")?.as_u64()?,
    })
}

/// One request line, one response line.
fn request(addr: &str, line: &str) -> Json {
    let mut conn = connect(addr);
    if let Err(e) = writeln!(conn, "{line}") {
        eprintln!("serve: cannot send to {addr}: {e}");
        std::process::exit(2);
    }
    let mut reply = String::new();
    if let Err(e) = BufReader::new(conn).read_line(&mut reply) {
        eprintln!("serve: cannot read from {addr}: {e}");
        std::process::exit(2);
    }
    match Json::parse(reply.trim()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("serve: malformed response from {addr}: {e}");
            std::process::exit(2);
        }
    }
}

/// One request line, a free-form text response (the Prometheus
/// exposition is many lines, not one JSON line).
fn request_text(addr: &str, line: &str) -> String {
    let mut conn = connect(addr);
    if let Err(e) = writeln!(conn, "{line}") {
        eprintln!("serve: cannot send to {addr}: {e}");
        std::process::exit(2);
    }
    let mut text = String::new();
    if let Err(e) = BufReader::new(conn).read_to_string(&mut text) {
        eprintln!("serve: cannot read from {addr}: {e}");
        std::process::exit(2);
    }
    text
}

fn connect(addr: &str) -> TcpStream {
    match TcpStream::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve: cannot connect to {addr}: {e} (is diode-serve running?)");
            std::process::exit(2);
        }
    }
}

/// Streams a watch to stdout. The first line may be a typed rejection
/// (e.g. 404) rather than a telemetry header; detect it and exit 1.
fn stream_watch(addr: &str, job: &str) {
    let mut conn = connect(addr);
    if let Err(e) = writeln!(conn, r#"{{"op":"watch","job":"{job}"}}"#) {
        eprintln!("serve: cannot send to {addr}: {e}");
        std::process::exit(2);
    }
    let mut reader = BufReader::new(conn);
    let mut first = String::new();
    if reader.read_line(&mut first).is_err() || first.trim().is_empty() {
        eprintln!("serve: empty watch stream from {addr}");
        std::process::exit(2);
    }
    if let Ok(j) = Json::parse(first.trim()) {
        if j.get("ok").and_then(Json::as_bool) == Some(false) {
            eprintln!("serve: {j}");
            std::process::exit(1);
        }
    }
    print!("{first}");
    let mut rest = String::new();
    if let Err(e) = reader.read_to_string(&mut rest) {
        eprintln!("serve: watch stream interrupted: {e}");
        std::process::exit(2);
    }
    print!("{rest}");
}

fn exit_by_ok(reply: &Json) {
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        std::process::exit(1);
    }
}

/// Per-job solver-cache hit rate out of a saved `submit --wait` reply.
fn job_hit_rate(path: &str) -> f64 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("serve assert-warmer: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    // The reply may be the last line of a log that also carries other
    // output; scan lines from the end for a serve_job report.
    for line in text.lines().rev() {
        if let Ok(j) = Json::parse(line.trim()) {
            if let Some(rate) = j
                .get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_f64)
            {
                return rate;
            }
        }
    }
    eprintln!("serve assert-warmer: {path} holds no job report with a cache.hit_rate");
    std::process::exit(2);
}

/// `assert-warmer COLD.json WARM.json`: the warm-cache gate.
fn assert_warmer(args: &[String]) {
    let (Some(cold_path), Some(warm_path)) = (args.get(1), args.get(2)) else {
        eprintln!("serve assert-warmer: usage: serve assert-warmer COLD.json WARM.json");
        std::process::exit(2);
    };
    let (cold, warm) = (job_hit_rate(cold_path), job_hit_rate(warm_path));
    println!("serve assert-warmer: cold hit rate {cold:.4}, warm {warm:.4}");
    if warm > cold {
        println!("  warm strictly exceeds cold: PASS");
    } else {
        println!("  warm does not exceed cold: FAIL");
        std::process::exit(1);
    }
}

/// The serve-bench load mode.
fn run_bench(args: &[String]) {
    let clients = flag_num(args, "--clients").unwrap_or(4).max(1) as usize;
    let jobs_per_client = flag_num(args, "--jobs").unwrap_or(4).max(1) as usize;
    let apps = flag_num(args, "--apps").unwrap_or(5).max(1);
    let depth = flag_num(args, "--depth").unwrap_or(2);
    let site_work = flag_num(args, "--site-work").unwrap_or(0);
    let workers = flag_num(args, "--workers").unwrap_or(1).max(1) as usize;
    let json = args.iter().any(|a| a == "--json");
    let bench_out = flag_str(args, "--bench-out");

    // External daemon, or a self-hosted one on an ephemeral port.
    let (addr, hosted) = match flag_str(args, "--addr") {
        Some(a) => (a, None),
        None => {
            let handle = match serve(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                queue_depth: clients * jobs_per_client + 1,
                ..ServeConfig::default()
            }) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("serve bench: cannot host a daemon: {e}");
                    std::process::exit(2);
                }
            };
            (handle.addr().to_string(), Some(handle))
        }
    };

    let submit = format!(
        r#"{{"op":"submit","spec":{{"apps":{apps},"depth":{depth},"site_work":{site_work}}},"wait":true}}"#
    );

    // Cold reference job: the caches have never seen this suite.
    let cold = request(&addr, &submit);
    let rate = |r: &Json| {
        r.get("cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                eprintln!("serve bench: job reply has no cache.hit_rate: {r}");
                std::process::exit(2);
            })
    };
    let cold_rate = rate(&cold);

    // The load: `clients` threads, each submitting `jobs_per_client`
    // synchronous jobs of the same spec against now-warm caches.
    let started = Instant::now();
    let lat_and_rates: Vec<(f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    (0..jobs_per_client)
                        .map(|_| {
                            let t = Instant::now();
                            let reply = request(&addr, &submit);
                            (t.elapsed().as_secs_f64() * 1e3, rate(&reply))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    // Scrape the daemon's own service metrics before it goes away; a
    // `--no-metrics` daemon answers with a rejection, which degrades to
    // an absent `daemon` field rather than a failed bench.
    let daemon_metrics = {
        let reply = request(&addr, r#"{"op":"metrics"}"#);
        (reply.get("ok").and_then(Json::as_bool) == Some(true))
            .then(|| reply.get("metrics").cloned())
            .flatten()
    };

    if let Some(handle) = hosted {
        let _ = request(&addr, r#"{"op":"shutdown"}"#);
        handle.join();
    }

    let total_jobs = lat_and_rates.len();
    let mut latencies: Vec<f64> = lat_and_rates.iter().map(|(l, _)| *l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    let warm_rate = lat_and_rates
        .iter()
        .map(|(_, r)| *r)
        .fold(f64::NEG_INFINITY, f64::max);
    let jobs_per_sec = total_jobs as f64 / wall.max(1e-9);

    let mut section = Json::obj()
        .field("clients", clients)
        .field("jobs", total_jobs)
        .field("workers", workers)
        .field(
            "spec",
            Json::obj()
                .field("apps", apps)
                .field("depth", depth)
                .field("site_work", site_work),
        )
        .field("wall_ms", wall * 1e3)
        .field("jobs_per_sec", jobs_per_sec)
        .field("p50_ms", pct(0.50))
        .field("p99_ms", pct(0.99))
        .field("cold_hit_rate", cold_rate)
        .field("warm_hit_rate", warm_rate)
        .field("warmer", warm_rate > cold_rate);
    if let Some(metrics) = daemon_metrics {
        section = section.field("daemon", metrics);
    }

    if let Some(path) = &bench_out {
        merge_serve_section(path, &section);
    }
    if json {
        let Json::Obj(fields) = section.clone() else {
            unreachable!("section is an object")
        };
        let mut out = vec![("table".to_string(), Json::from("serve_bench"))];
        out.extend(fields);
        println!("{}", Json::Obj(out));
    } else {
        println!(
            "serve bench: {total_jobs} job(s) over {clients} client(s) against {workers} \
             worker(s): {jobs_per_sec:.1} jobs/s, p50 {:.1}ms, p99 {:.1}ms",
            pct(0.50),
            pct(0.99)
        );
        println!(
            "  solver-cache hit rate: cold {cold_rate:.4} -> warm {warm_rate:.4}{}",
            if let Some(p) = &bench_out {
                format!("; merged \"serve\" section into {p}")
            } else {
                String::new()
            }
        );
    }
    if warm_rate <= cold_rate {
        eprintln!(
            "serve bench: GATE FAIL: warm hit rate {warm_rate:.4} does not strictly \
             exceed cold {cold_rate:.4}"
        );
        std::process::exit(1);
    }
}

/// Read-modify-write the `"serve"` section of a `BENCH_engine.json`
/// artifact, creating the file if absent and preserving every other
/// axis if present.
fn merge_serve_section(path: &str, section: &Json) {
    let base = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("serve bench: {path}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => Json::obj().field("table", "bench_engine"),
    };
    let Json::Obj(mut fields) = base else {
        eprintln!("serve bench: {path} is not a JSON object");
        std::process::exit(2);
    };
    fields.retain(|(k, _)| k != "serve");
    fields.push(("serve".to_string(), section.clone()));
    if let Err(e) = std::fs::write(path, format!("{}\n", Json::Obj(fields))) {
        eprintln!("serve bench: cannot write {path}: {e}");
        std::process::exit(2);
    }
}
