//! The corpus CLI: forge suites into a persistent on-disk store, replay
//! them in later processes, diff recorded runs, and grow suites
//! incrementally.
//!
//! Usage: `cargo run --release -p diode-bench --bin corpus -- [--root DIR] <command>`
//!
//! * `forge  [--apps N --depth D --seed S --seeds-per-app K --label L]`
//!   — forge, save, replay once, and record witnesses (default label
//!   `baseline`). Prints the content-addressed suite ID.
//! * `replay <id|latest> [--label L --against BASE]` — load a stored
//!   suite, replay it through the engine, record witnesses (default
//!   label `replay`), and compare byte-for-byte against a recorded run
//!   (default `baseline`). **Exits non-zero on any drift.**
//! * `diff   <id|latest> <old-label> <new-label>` — structural diff of
//!   two recorded runs (new / lost / changed sites). When both runs
//!   also recorded decision provenance (`--audit`), additionally flags
//!   *derivation drift*: sites whose verdict is unchanged but whose
//!   derivation (extraction, solver queries, enforcement steps) changed.
//!   Exits non-zero when either diff is not clean.
//! * `grow   <id|latest> N [--label L]` — extend a stored suite by `N`
//!   freshly forged apps (existing apps are reused, never re-forged),
//!   save under the new content ID, replay, and record witnesses.
//! * `ls` — list stored suites and their recorded runs.
//!
//! `forge`, `replay`, and `grow` accept `--audit`: record per-site
//! decision provenance under `audit/<label>/` next to `witnesses/`
//! (inspect with the `audit` bin). Every command accepts `--json`
//! (machine-readable output on stdout), `--sequential`, and
//! `--threads N`. The store root defaults to `./corpus`.

use std::process::ExitCode;

use diode_bench::{flag_num, flag_str, AnalysisBackend};
use diode_corpus::{
    CorpusDiff, CorpusError, CorpusStore, DerivationDrift, Json, ReplayableSuite, WitnessSet,
};
use diode_engine::CampaignReport;
use diode_synth::{ScoreCard, SynthConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("corpus: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CorpusError> {
    let json = args.iter().any(|a| a == "--json");
    let root = flag_str(args, "--root").unwrap_or_else(|| "corpus".to_string());
    let store = CorpusStore::open(&root)?;
    let backend = AnalysisBackend::from_args(args);
    // First non-flag token is the command; flag values are consumed by
    // their flags, so skip the token after any `--x value` flag.
    let positional = positionals(args);
    let Some(command) = positional.first() else {
        eprintln!("usage: corpus [--root DIR] <forge|replay|diff|grow|ls> [...]");
        return Ok(ExitCode::from(2));
    };
    match command.as_str() {
        "forge" => forge(&store, args, json, backend),
        "replay" => replay(&store, args, &positional[1..], json, backend),
        "diff" => diff(&store, &positional[1..], json),
        "grow" => grow(&store, args, &positional[1..], json, backend),
        "ls" => ls(&store, json),
        other => {
            eprintln!("corpus: unknown command {other:?} (forge|replay|diff|grow|ls)");
            Ok(ExitCode::from(2))
        }
    }
}

/// Positional tokens: everything that is neither a flag nor a flag value.
fn positionals(args: &[String]) -> Vec<String> {
    const VALUE_FLAGS: &[&str] = &[
        "--root",
        "--apps",
        "--depth",
        "--seed",
        "--seeds-per-app",
        "--label",
        "--against",
        "--threads",
    ];
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a.clone());
    }
    out
}

fn scorecard_json(card: &ScoreCard) -> Json {
    Json::obj()
        .field("graded", card.graded)
        .field("recall", card.recall())
        .field("precision", card.precision())
        .field("exact", card.exact)
        .field("perfect", card.is_perfect())
}

/// Replays a suite — priming the snapshot cache from recorded
/// `snapshots.json` metadata when present, so candidate testing skips
/// straight to the recorded divergent suffixes — then records the run's
/// witnesses and refreshed snapshot metadata. With `audit`, decision
/// provenance is recorded alongside, under `audit/<label>/`.
fn replay_and_record(
    store: &CorpusStore,
    suite: &ReplayableSuite,
    label: &str,
    backend: AnalysisBackend,
    audit: bool,
) -> Result<(CampaignReport, ScoreCard, WitnessSet), CorpusError> {
    let recorded = store.load_snapshots(suite.id())?;
    let (report, card) = suite.replay_with(backend.execution_mode(), recorded.as_ref(), audit);
    let witnesses = suite.witnesses(label, &report);
    store.record_witnesses(&witnesses)?;
    store.record_snapshots(&suite.snapshot_meta(&report))?;
    if let Some(set) = suite.audit(label, &report) {
        store.record_audit(&set)?;
    }
    Ok((report, card, witnesses))
}

fn forge(
    store: &CorpusStore,
    args: &[String],
    json: bool,
    backend: AnalysisBackend,
) -> Result<ExitCode, CorpusError> {
    let apps = flag_num(args, "--apps").unwrap_or(10) as usize;
    if apps == 0 {
        eprintln!("corpus forge: --apps must be at least 1");
        return Ok(ExitCode::from(2));
    }
    let mut cfg = SynthConfig {
        apps,
        ..SynthConfig::default()
    };
    if let Some(d) = flag_num(args, "--depth") {
        cfg.branch_depth = d as usize;
    }
    if let Some(s) = flag_num(args, "--seed") {
        cfg.rng_seed = s;
    }
    if let Some(k) = flag_num(args, "--seeds-per-app") {
        cfg.seeds_per_app = (k as usize).max(1);
    }
    let label = flag_str(args, "--label").unwrap_or_else(|| "baseline".to_string());
    let audit = args.iter().any(|a| a == "--audit");
    let suite = store.forge_and_save(&cfg)?;
    let (report, card, _) = replay_and_record(store, &suite, &label, backend, audit)?;
    if json {
        let out = Json::obj()
            .field("command", "forge")
            .field("root", store.root().display().to_string())
            .field("suite_id", suite.id())
            .field("apps", suite.suite.apps.len())
            .field("sites", suite.suite.total_sites())
            .field("witness_label", label)
            .field("wall_ms", report.wall_time.as_secs_f64() * 1e3)
            .field("scorecard", scorecard_json(&card));
        println!("{out}");
    } else {
        println!("forged {} into {}", suite.id(), store.root().display());
        println!(
            "  {} apps, {} sites; recorded witnesses {label:?}",
            suite.suite.apps.len(),
            suite.suite.total_sites()
        );
        println!("  score: {card}");
    }
    Ok(ExitCode::SUCCESS)
}

fn replay(
    store: &CorpusStore,
    args: &[String],
    positional: &[String],
    json: bool,
    backend: AnalysisBackend,
) -> Result<ExitCode, CorpusError> {
    let Some(id) = positional.first() else {
        eprintln!("usage: corpus replay <suite-id|latest> [--label L --against BASE]");
        return Ok(ExitCode::from(2));
    };
    let label = flag_str(args, "--label").unwrap_or_else(|| "replay".to_string());
    let against = flag_str(args, "--against").unwrap_or_else(|| "baseline".to_string());
    if label == against {
        eprintln!(
            "corpus replay: --label {label:?} would overwrite the {against:?} run it is \
             compared against; pick a different label"
        );
        return Ok(ExitCode::from(2));
    }
    let audit = args.iter().any(|a| a == "--audit");
    let suite = store.load(id)?;
    // Load the comparison run before recording anything, so a recording
    // mishap can never make a run compare against itself.
    let baseline = store.load_witnesses(suite.id(), &against)?;
    let (report, card, witnesses) = replay_and_record(store, &suite, &label, backend, audit)?;
    let snapstats = report.snapshots;
    let scorecard_identical = baseline.scorecard == witnesses.scorecard;
    let findings_identical = baseline.fingerprint() == witnesses.fingerprint();
    let identical = scorecard_identical && findings_identical;
    if json {
        let out = Json::obj()
            .field("command", "replay")
            .field("suite_id", suite.id())
            .field("label", label.clone())
            .field("against", against.clone())
            .field("scorecard", scorecard_json(&card))
            .field("snapshots", diode_bench::jsonout::snapshot_json(snapstats))
            .field("scorecard_identical", scorecard_identical)
            .field("findings_identical", findings_identical)
            .field("identical", identical);
        println!("{out}");
    } else {
        println!("replayed {} ({} backend)", suite.id(), backend.name());
        println!("  score: {card}");
        if identical {
            println!("  identical to recorded {against:?} (scorecard + findings)");
        } else {
            println!("  DRIFT against recorded {against:?}:");
            println!("{}", CorpusDiff::between(&baseline, &witnesses));
        }
    }
    Ok(if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn diff(store: &CorpusStore, positional: &[String], json: bool) -> Result<ExitCode, CorpusError> {
    let [id, old_label, new_label] = positional else {
        eprintln!("usage: corpus diff <suite-id|latest> <old-label> <new-label>");
        return Ok(ExitCode::from(2));
    };
    let id = store.resolve(id)?;
    let old = store.load_witnesses(&id, old_label)?;
    let new = store.load_witnesses(&id, new_label)?;
    let diff = CorpusDiff::between(&old, &new);
    // Derivation drift is only comparable when both runs were audited.
    let drift = match (
        store.load_audit(&id, old_label)?,
        store.load_audit(&id, new_label)?,
    ) {
        (Some(old_audit), Some(new_audit)) => {
            Some(DerivationDrift::between(&old_audit, &new_audit))
        }
        _ => None,
    };
    let drift_clean = drift.as_ref().is_none_or(DerivationDrift::is_clean);
    if json {
        let keys = |ks: &[diode_corpus::SiteKey]| {
            Json::Arr(ks.iter().map(|k| Json::Str(k.to_string())).collect())
        };
        let changed: Vec<Json> = diff
            .changed
            .iter()
            .map(|c| {
                Json::obj()
                    .field("site", c.key.to_string())
                    .field("old", c.old.clone())
                    .field("new", c.new.clone())
            })
            .collect();
        let mut out = Json::obj()
            .field("command", "diff")
            .field("suite_id", id)
            .field("old", old_label.clone())
            .field("new", new_label.clone())
            .field("unchanged", diff.unchanged)
            .field("changed", Json::Arr(changed))
            .field("new_sites", keys(&diff.new_sites))
            .field("lost_sites", keys(&diff.lost_sites));
        if let Some(drift) = &drift {
            out = out.field(
                "derivation",
                Json::obj()
                    .field("compared", drift.compared)
                    .field("drifted", keys(&drift.drifted))
                    .field("verdict_changed", drift.verdict_changed)
                    .field("clean", drift.is_clean()),
            );
        }
        out = out.field("clean", diff.is_clean() && drift_clean);
        println!("{out}");
    } else {
        println!("diff {id} {old_label:?} -> {new_label:?}");
        print!("{diff}");
        if let Some(drift) = &drift {
            print!("{drift}");
        }
    }
    Ok(if diff.is_clean() && drift_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn grow(
    store: &CorpusStore,
    args: &[String],
    positional: &[String],
    json: bool,
    backend: AnalysisBackend,
) -> Result<ExitCode, CorpusError> {
    let (Some(id), Some(n)) = (positional.first(), positional.get(1)) else {
        eprintln!("usage: corpus grow <suite-id|latest> <n> [--label L]");
        return Ok(ExitCode::from(2));
    };
    let Ok(n) = n.parse::<usize>() else {
        eprintln!("corpus grow: <n> must be a number, got {n:?}");
        return Ok(ExitCode::from(2));
    };
    let label = flag_str(args, "--label").unwrap_or_else(|| "baseline".to_string());
    let audit = args.iter().any(|a| a == "--audit");
    let old_id = store.resolve(id)?;
    let grown = store.grow(&old_id, n)?;
    let (_, card, _) = replay_and_record(store, &grown, &label, backend, audit)?;
    if json {
        let out = Json::obj()
            .field("command", "grow")
            .field("from", old_id)
            .field("suite_id", grown.id())
            .field("apps", grown.suite.apps.len())
            .field("sites", grown.suite.total_sites())
            .field("scorecard", scorecard_json(&card));
        println!("{out}");
    } else {
        println!("grew {old_id} by {n} apps -> {}", grown.id());
        println!(
            "  {} apps, {} sites; recorded witnesses {label:?}",
            grown.suite.apps.len(),
            grown.suite.total_sites()
        );
        println!("  score: {card}");
    }
    Ok(ExitCode::SUCCESS)
}

fn ls(store: &CorpusStore, json: bool) -> Result<ExitCode, CorpusError> {
    let suites = store.list()?;
    if json {
        let rows: Vec<Json> = suites
            .iter()
            .map(|s| {
                Json::obj()
                    .field("suite_id", s.id.clone())
                    .field("apps", s.apps)
                    .field("sites", s.sites)
                    .field("seeds", s.seeds)
                    .field("rng_seed", s.rng_seed)
                    .field("witnesses", s.witnesses.clone())
            })
            .collect();
        let out = Json::obj()
            .field("command", "ls")
            .field("root", store.root().display().to_string())
            .field("suites", Json::Arr(rows));
        println!("{out}");
    } else if suites.is_empty() {
        println!("no suites under {}", store.root().display());
    } else {
        for s in &suites {
            println!(
                "{}  {} apps, {} sites, {} seed(s), rng {:#x}, witnesses: [{}]",
                s.id,
                s.apps,
                s.sites,
                s.seeds,
                s.rng_seed,
                s.witnesses.join(", ")
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}
