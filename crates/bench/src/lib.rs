//! # diode-bench — the evaluation harness
//!
//! Regenerates every data artefact of the paper's §5 evaluation:
//!
//! * **Table 1** (target-site classification): [`table1_rows`] +
//!   [`render_table1`], driven by `cargo run -p diode-bench --bin table1`;
//! * **Table 2** (per-overflow summary incl. the 200-input success-rate
//!   experiments): [`table2_rows`] + [`render_table2`], driven by
//!   `--bin table2`;
//! * the **§5.4 blocking-check experiment** (full seed-path constraint
//!   satisfiability) and the interval-presolve ablation: [`ablation_rows`],
//!   driven by `--bin ablation`;
//! * the **fuzzing comparison** of §6's discussion: [`fuzz_rows`], driven
//!   by `--bin fuzz_compare`;
//! * **forged campaigns** over `diode-synth` suites with recall/precision
//!   grading against the by-construction oracle: [`synth_rows`] +
//!   [`render_synth`], driven by `--bin synth_campaign` (and `table1
//!   --synth N`).
//!
//! Criterion micro/macro benchmarks live under `benches/`.
//!
//! Whole-program analyses run through the `diode-engine` work-stealing
//! scheduler by default ([`AnalysisBackend::Engine`]); pass
//! `--sequential` to any binary (or set `DIODE_SEQUENTIAL=1`) to fall
//! back to the original single-threaded `diode-core` path. Every binary
//! also accepts `--json` for machine-readable output ([`jsonout`]).

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use diode_apps::{App, SiteClass};
use diode_core::{
    analyze_program, full_path_constraint_satisfiable, success_rate, DiodeConfig, ProgramAnalysis,
    SiteOutcome, SuccessRate,
};
use diode_engine::{
    analyze_program_parallel, CampaignApp, CampaignReport, CampaignSpec, ExecutionMode,
    SnapshotKeys,
};
use diode_fuzz::{FuzzOutcome, RandomFuzzer, TaintFuzzer};
use diode_solver::SolverCache;
use diode_synth::SynthOracle;

pub mod jsonout;
pub mod profload;

/// How the harness runs whole-program analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisBackend {
    /// Fan per-site jobs out over the `diode-engine` work-stealing
    /// scheduler (`None` = all cores).
    Engine {
        /// Worker count override.
        threads: Option<usize>,
    },
    /// The original sequential `diode-core` path.
    Sequential,
}

impl Default for AnalysisBackend {
    fn default() -> Self {
        AnalysisBackend::Engine { threads: None }
    }
}

impl AnalysisBackend {
    /// Reads the backend from CLI args (`--sequential`, `--threads N`)
    /// and the `DIODE_SEQUENTIAL` environment variable.
    #[must_use]
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Self {
        let has = |flag: &str| args.iter().any(|a| a.as_ref() == flag);
        let sequential =
            has("--sequential") || std::env::var_os("DIODE_SEQUENTIAL").is_some_and(|v| v != "0");
        if sequential {
            return AnalysisBackend::Sequential;
        }
        let threads = flag_num(args, "--threads").map(|n| n as usize);
        AnalysisBackend::Engine { threads }
    }

    /// Short name for report headers.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AnalysisBackend::Engine { .. } => "engine",
            AnalysisBackend::Sequential => "sequential",
        }
    }

    /// The campaign [`ExecutionMode`] equivalent to this backend.
    #[must_use]
    pub fn execution_mode(&self) -> ExecutionMode {
        match self {
            AnalysisBackend::Engine { threads } => ExecutionMode::Parallel { threads: *threads },
            AnalysisBackend::Sequential => ExecutionMode::Sequential,
        }
    }

    /// Runs one whole-program analysis through this backend.
    #[must_use]
    pub fn analyze(&self, app: &App, config: &DiodeConfig) -> ProgramAnalysis {
        match self {
            AnalysisBackend::Engine { threads } => {
                analyze_program_parallel(&app.program, &app.seed, &app.format, config, *threads)
            }
            AnalysisBackend::Sequential => {
                analyze_program(&app.program, &app.seed, &app.format, config)
            }
        }
    }
}

/// Reads the string value following `flag` from CLI args.
#[must_use]
pub fn flag_str<S: AsRef<str>>(args: &[S], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a.as_ref() == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.as_ref().to_string())
}

/// Reads the numeric value following `flag` from CLI args.
///
/// A *present but unparsable* value is a hard usage error (exit 2): a
/// typo like `--apps 1OO` must not silently run a different workload.
#[must_use]
pub fn flag_num<S: AsRef<str>>(args: &[S], flag: &str) -> Option<u64> {
    let raw = flag_str(args, flag)?;
    match raw.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("{flag} expects a number, got {raw:?}");
            std::process::exit(2);
        }
    }
}

/// Reads the floating-point value following `flag` from CLI args, with
/// the same hard-usage-error semantics as [`flag_num`].
#[must_use]
pub fn flag_f64<S: AsRef<str>>(args: &[S], flag: &str) -> Option<f64> {
    let raw = flag_str(args, flag)?;
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() => Some(v),
        _ => {
            eprintln!("{flag} expects a finite number, got {raw:?}");
            std::process::exit(2);
        }
    }
}

/// A config with a fresh shared solver-query cache installed, plus a
/// handle to read its counters afterwards — the standard setup for every
/// harness binary.
#[must_use]
pub fn config_with_cache(base: DiodeConfig) -> (DiodeConfig, Arc<SolverCache>) {
    let cache = Arc::new(SolverCache::new());
    (base.with_query_cache(Arc::clone(&cache)), cache)
}

/// Renders an aligned plain-text table.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(n) {
            out.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// One Table 1 row: measured vs paper classification counts.
#[derive(Debug)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Measured (total, exposed, unsat, prevented).
    pub measured: (usize, usize, usize, usize),
    /// Paper's (total, exposed, unsat, prevented).
    pub paper: (usize, usize, usize, usize),
    /// Whole-app analysis time.
    pub analysis_time: Duration,
    /// The raw analysis, for further experiments.
    pub analysis: ProgramAnalysis,
}

/// Runs the Table 1 experiment over the given apps.
///
/// With [`AnalysisBackend::Engine`] the whole suite runs as **one
/// campaign**: every app's per-site jobs share the same work-stealing
/// pool, so a slow site in one application overlaps with every other
/// application's work. Per-app `analysis_time` then reports aggregate
/// work time (identification + extraction + discovery) rather than wall
/// clock, which interleaving makes meaningless per app.
#[must_use]
pub fn table1_rows(apps: &[App], config: &DiodeConfig, backend: AnalysisBackend) -> Vec<Table1Row> {
    let threads = match backend {
        AnalysisBackend::Sequential => {
            return apps
                .iter()
                .map(|app| {
                    let analysis = analyze_program(&app.program, &app.seed, &app.format, config);
                    Table1Row {
                        app: app.name,
                        measured: analysis.counts(),
                        paper: app.expected_counts(),
                        analysis_time: analysis.analysis_time,
                        analysis,
                    }
                })
                .collect();
        }
        AnalysisBackend::Engine { threads } => threads,
    };
    let spec = CampaignSpec {
        apps: apps
            .iter()
            .map(|a| CampaignApp::new(a.name, a.program.clone(), a.format.clone(), a.seed.clone()))
            .collect(),
        config: config.clone(),
        mode: ExecutionMode::Parallel { threads },
        // Respect the caller's cache decision (config.query_cache); an
        // implicit campaign cache would make backend timings incomparable.
        shared_cache: false,
        // Same reasoning for snapshots: honor config.prefix_snapshots
        // per-site (both backends then behave identically) without an
        // engine-only shared cache skewing the comparison.
        shared_snapshots: false,
        snapshot_cache: None,
        snapshot_keys: SnapshotKeys::default(),
        // Table 1 is pure classification; re-validation belongs to the
        // campaign API's bug-report consumers.
        verify_exposed: false,
        recorder: None,
        pulse: None,
    };
    let report = spec.run();
    report
        .units
        .into_iter()
        .zip(apps)
        .map(|(unit, app)| {
            let work: Duration = unit
                .sites
                .iter()
                .map(|s| {
                    s.report.discovery_time
                        + s.report
                            .extraction
                            .as_ref()
                            .map_or(Duration::ZERO, |e| e.extraction_time)
                })
                .sum();
            let analysis_time = unit.identify_time + work;
            let analysis = ProgramAnalysis {
                analysis_time,
                sites: unit.sites.into_iter().map(|s| s.report).collect(),
            };
            Table1Row {
                app: app.name,
                measured: analysis.counts(),
                paper: app.expected_counts(),
                analysis_time,
                analysis,
            }
        })
        .collect()
}

/// Renders Table 1 with measured-vs-paper columns.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let headers = [
        "Application",
        "Total Sites",
        "Exposes Overflow",
        "Constraint Unsat",
        "Checks Prevent",
        "(paper T/E/U/P)",
        "Time",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.measured.0.to_string(),
                r.measured.1.to_string(),
                r.measured.2.to_string(),
                r.measured.3.to_string(),
                format!("{}/{}/{}/{}", r.paper.0, r.paper.1, r.paper.2, r.paper.3),
                fmt_dur(r.analysis_time),
            ]
        })
        .collect();
    let mut out = render_table(&headers, &body);
    let t: (usize, usize, usize, usize) = rows.iter().fold((0, 0, 0, 0), |acc, r| {
        (
            acc.0 + r.measured.0,
            acc.1 + r.measured.1,
            acc.2 + r.measured.2,
            acc.3 + r.measured.3,
        )
    });
    out.push_str(&format!(
        "\nTotals: {} sites, {} exposed, {} unsat, {} prevented (paper: 40/14/17/9)\n",
        t.0, t.1, t.2, t.3
    ));
    out
}

/// One Table 2 row (an exposed site), measured and paper-reported.
#[derive(Debug)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// Site (`file@line`).
    pub site: String,
    /// CVE number or "New".
    pub cve: String,
    /// Measured error type.
    pub error_type: String,
    /// Paper's error type.
    pub paper_error: String,
    /// App analysis time (shared across the app's rows).
    pub analysis_time: Duration,
    /// Per-site discovery time.
    pub discovery_time: Duration,
    /// Measured enforced / total relevant.
    pub enforced: (usize, usize),
    /// Paper's enforced / total relevant.
    pub paper_enforced: (u32, u32),
    /// Measured target-only success rate.
    pub target_rate: SuccessRate,
    /// Paper's target-only success rate.
    pub paper_target_rate: (u32, u32),
    /// Measured target+enforced success rate (None when not applicable).
    pub enforced_rate: Option<SuccessRate>,
    /// Paper's target+enforced rate (None = "N/A").
    pub paper_enforced_rate: Option<(u32, u32)>,
}

/// Runs the full Table 2 experiment: per-site discovery plus the
/// success-rate sampling of §5.5/§5.6 with `samples` inputs per column.
#[must_use]
pub fn table2_rows(
    apps: &[App],
    config: &DiodeConfig,
    samples: u32,
    rng_seed: u64,
    backend: AnalysisBackend,
) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for app in apps {
        let analysis = backend.analyze(app, config);
        for report in &analysis.sites {
            let SiteOutcome::Exposed(bug) = &report.outcome else {
                continue;
            };
            let extraction = report.extraction.as_ref().expect("exposed site extraction");
            let target_rate = success_rate(
                &app.program,
                &app.seed,
                &app.format,
                report.label,
                &extraction.beta,
                samples,
                rng_seed,
                config,
            );
            // §5.6: run the enforced experiment only when enforcement was
            // needed (the paper marks the rest N/A).
            let enforced_rate = (bug.enforced > 0).then(|| {
                success_rate(
                    &app.program,
                    &app.seed,
                    &app.format,
                    report.label,
                    &bug.constraint,
                    samples,
                    rng_seed.wrapping_add(1),
                    config,
                )
            });
            let expected = app.expected_for(&report.site);
            rows.push(Table2Row {
                app: app.name,
                site: report.site.clone(),
                cve: expected.and_then(|e| e.cve).unwrap_or("New").to_string(),
                error_type: bug.error_type.clone(),
                paper_error: expected
                    .and_then(|e| e.paper_error)
                    .unwrap_or("-")
                    .to_string(),
                analysis_time: analysis.analysis_time,
                discovery_time: report.discovery_time,
                enforced: (bug.enforced, report.total_relevant),
                paper_enforced: expected.and_then(|e| e.paper_enforced).unwrap_or((0, 0)),
                target_rate,
                paper_target_rate: expected.and_then(|e| e.paper_target_rate).unwrap_or((0, 0)),
                enforced_rate,
                paper_enforced_rate: expected.and_then(|e| e.paper_enforced_rate),
            });
        }
    }
    rows
}

/// Renders Table 2 with measured-vs-paper columns.
#[must_use]
pub fn render_table2(rows: &[Table2Row]) -> String {
    let headers = [
        "Application",
        "Target",
        "CVE Number",
        "Error Type (paper)",
        "Time (A) B",
        "Enforced (paper)",
        "Target Rate (paper)",
        "+Enforced (paper)",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.site.clone(),
                r.cve.clone(),
                format!("{} ({})", r.error_type, r.paper_error),
                format!(
                    "({}) {}",
                    fmt_dur(r.analysis_time),
                    fmt_dur(r.discovery_time)
                ),
                format!(
                    "{}/{} ({}/{})",
                    r.enforced.0, r.enforced.1, r.paper_enforced.0, r.paper_enforced.1
                ),
                format!(
                    "{} ({}/{})",
                    r.target_rate, r.paper_target_rate.0, r.paper_target_rate.1
                ),
                match (&r.enforced_rate, &r.paper_enforced_rate) {
                    (Some(m), Some((h, n))) => format!("{m} ({h}/{n})"),
                    (Some(m), None) => format!("{m} (N/A)"),
                    (None, _) => "N/A".to_string(),
                },
            ]
        })
        .collect();
    render_table(&headers, &body)
}

/// One row of the §5.4 blocking-check ablation.
#[derive(Debug)]
pub struct AblationRow {
    /// Application name.
    pub app: &'static str,
    /// Exposed site.
    pub site: String,
    /// Is β ∧ (full relevant seed path) satisfiable?
    pub full_path_sat: Option<bool>,
    /// The paper reports satisfiable for exactly two sites: SwfPlay
    /// `jpeg.c@192` and CWebP `jpegdec.c@248`.
    pub paper_sat: bool,
}

/// Runs the §5.4 experiment over every exposed site.
#[must_use]
pub fn ablation_rows(
    apps: &[App],
    config: &DiodeConfig,
    backend: AnalysisBackend,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for app in apps {
        let analysis = backend.analyze(app, config);
        for report in &analysis.sites {
            if !matches!(report.outcome, SiteOutcome::Exposed(_)) {
                continue;
            }
            let extraction = report.extraction.as_ref().expect("extraction");
            let full_path_sat = full_path_constraint_satisfiable(extraction, &config.solver);
            let paper_sat = matches!(report.site.as_str(), "jpeg.c@192" | "jpegdec.c@248");
            rows.push(AblationRow {
                app: app.name,
                site: report.site.clone(),
                full_path_sat,
                paper_sat,
            });
        }
    }
    rows
}

/// Renders the §5.4 ablation table.
#[must_use]
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let headers = ["Application", "Target", "Full-path β satisfiable", "Paper"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.site.clone(),
                match r.full_path_sat {
                    Some(true) => "sat".into(),
                    Some(false) => "unsat".into(),
                    None => "unknown".into(),
                },
                if r.paper_sat {
                    "sat".into()
                } else {
                    "unsat".into()
                },
            ]
        })
        .collect();
    render_table(&headers, &body)
}

/// One row of the fuzzing comparison (§6 discussion).
#[derive(Debug)]
pub struct FuzzRow {
    /// Application name.
    pub app: &'static str,
    /// Exposed site.
    pub site: String,
    /// Did DIODE expose it (and with how many enforcements)?
    pub diode: Option<usize>,
    /// Random fuzzing hits.
    pub random: FuzzOutcome,
    /// Taint-directed fuzzing hits.
    pub taint: FuzzOutcome,
}

/// Runs the fuzzing comparison over every exposed site.
#[must_use]
pub fn fuzz_rows(
    apps: &[App],
    config: &DiodeConfig,
    trials: u32,
    backend: AnalysisBackend,
) -> Vec<FuzzRow> {
    let mut rows = Vec::new();
    for app in apps {
        let analysis = backend.analyze(app, config);
        for report in &analysis.sites {
            let diode = match &report.outcome {
                SiteOutcome::Exposed(bug) => Some(bug.enforced),
                _ => continue,
            };
            let random = RandomFuzzer {
                trials,
                ..RandomFuzzer::default()
            }
            .run(
                &app.program,
                &app.seed,
                &app.format,
                report.label,
                &config.machine,
            );
            let taint = TaintFuzzer {
                trials,
                ..TaintFuzzer::default()
            }
            .run(
                &app.program,
                &app.seed,
                &app.format,
                report.label,
                &report.relevant_bytes,
                &config.machine,
            );
            rows.push(FuzzRow {
                app: app.name,
                site: report.site.clone(),
                diode,
                random,
                taint,
            });
        }
    }
    rows
}

/// Renders the fuzzing-comparison table.
#[must_use]
pub fn render_fuzz(rows: &[FuzzRow]) -> String {
    let headers = [
        "Application",
        "Target",
        "DIODE (enforced)",
        "Random fuzz",
        "Taint fuzz",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.site.clone(),
                match r.diode {
                    Some(k) => format!("found ({k})"),
                    None => "not found".into(),
                },
                r.random.to_string(),
                r.taint.to_string(),
            ]
        })
        .collect();
    render_table(&headers, &body)
}

/// One row of a forged-campaign table: measured vs oracle-expected counts
/// for one `(app, seed)` unit.
#[derive(Debug)]
pub struct SynthRow {
    /// Forged application name.
    pub app: String,
    /// Seed index of the unit.
    pub seed_index: usize,
    /// Measured (total, exposed, unsat, prevented).
    pub measured: (usize, usize, usize, usize),
    /// Oracle-expected (total, exposable, unsat, prevented).
    pub expected: (usize, usize, usize, usize),
}

/// Builds per-unit rows for a forged campaign graded against its oracle.
#[must_use]
pub fn synth_rows(report: &CampaignReport, oracle: &SynthOracle) -> Vec<SynthRow> {
    report
        .units
        .iter()
        .filter(|u| oracle.app(&u.app).is_some())
        .map(|u| SynthRow {
            app: u.app.clone(),
            seed_index: u.seed_index,
            measured: u.counts(),
            expected: oracle.expected_counts_for(&u.app),
        })
        .collect()
}

/// Renders the forged-campaign table.
#[must_use]
pub fn render_synth(rows: &[SynthRow]) -> String {
    let headers = [
        "Forged App",
        "Seed",
        "Sites",
        "Exposed",
        "Unsat",
        "Prevented",
        "(oracle T/E/U/P)",
        "Match",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.seed_index.to_string(),
                r.measured.0.to_string(),
                r.measured.1.to_string(),
                r.measured.2.to_string(),
                r.measured.3.to_string(),
                format!(
                    "{}/{}/{}/{}",
                    r.expected.0, r.expected.1, r.expected.2, r.expected.3
                ),
                if r.measured == r.expected {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]
        })
        .collect();
    render_table(&headers, &body)
}

/// Verifies that measured Table 1 counts match the paper exactly; used by
/// integration tests and the table1 binary's exit code.
#[must_use]
pub fn table1_matches_paper(rows: &[Table1Row]) -> bool {
    rows.iter().all(|r| r.measured == r.paper)
}

/// Checks the headline Table 2 invariants that must reproduce: sites with
/// paper-enforced 0 need no enforcement; the rest need 1..=8; the CVE row
/// is exhaustively enumerable.
#[must_use]
pub fn table2_shape_matches_paper(rows: &[Table2Row], apps: &[App]) -> Vec<String> {
    let mut problems = Vec::new();
    let expected_exposed: usize = apps
        .iter()
        .map(|a| {
            a.expected
                .iter()
                .filter(|e| e.class == SiteClass::Exposed)
                .count()
        })
        .sum();
    if rows.len() != expected_exposed {
        problems.push(format!(
            "expected {expected_exposed} exposed rows, got {}",
            rows.len()
        ));
    }
    for r in rows {
        let (paper_enf, _) = r.paper_enforced;
        if paper_enf == 0 && r.enforced.0 != 0 {
            problems.push(format!(
                "{}: paper needs 0 enforcements, measured {}",
                r.site, r.enforced.0
            ));
        }
        if paper_enf > 0 && !(1..=8).contains(&r.enforced.0) {
            problems.push(format!(
                "{}: paper needs {} enforcements, measured {} (outside 1..=8)",
                r.site, paper_enf, r.enforced.0
            ));
        }
        if r.site == "wav.c@147" && !(r.target_rate.exhaustive && r.target_rate.samples == 2) {
            problems.push(format!(
                "wav.c@147: expected exhaustive 2-solution enumeration, got {}",
                r.target_rate
            ));
        }
    }
    problems
}
