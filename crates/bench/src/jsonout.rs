//! Minimal JSON emission for the `--json` harness outputs.
//!
//! The container builds offline (no serde), so this is a small value tree
//! with a compliant serializer — enough for the `BENCH_*.json` perf
//! trajectory: numbers, strings, bools, arrays, objects.

use std::fmt;
use std::time::Duration;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (serialized via `{:?}`, i.e. shortest roundtrip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Duration> for Json {
    /// Durations serialize as fractional milliseconds.
    fn from(v: Duration) -> Json {
        Json::Num(v.as_secs_f64() * 1e3)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serializes cache counters in the shape every binary shares.
#[must_use]
pub fn cache_json(stats: Option<diode_solver::CacheStats>) -> Json {
    match stats {
        None => Json::Null,
        Some(s) => Json::obj()
            .field("hits", s.hits)
            .field("misses", s.misses)
            .field("entries", s.entries)
            .field("hit_rate", s.hit_rate()),
    }
}

/// Serializes `(total, exposed, unsat, prevented)` counts.
#[must_use]
pub fn counts_json(c: (usize, usize, usize, usize)) -> Json {
    Json::obj()
        .field("total", c.0)
        .field("exposed", c.1)
        .field("unsat", c.2)
        .field("prevented", c.3)
}

/// Serializes a forge score card (recall/precision grading).
#[must_use]
pub fn score_json(card: &diode_synth::ScoreCard) -> Json {
    Json::obj()
        .field("graded", card.graded)
        .field("recall", card.recall())
        .field("precision", card.precision())
        .field("exact", card.exact)
        .field("exact_rate", card.exact_rate())
        .field("true_pos", card.true_pos)
        .field("false_pos", card.false_pos)
        .field("false_neg", card.false_neg)
        .field("true_neg", card.true_neg)
        .field(
            "mismatches",
            card.mismatches
                .iter()
                .map(|m| Json::Str(m.to_string()))
                .collect::<Vec<_>>(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_shapes() {
        let j = Json::obj()
            .field("name", "a\"b\\c\n")
            .field("n", 3usize)
            .field("frac", 1.5f64)
            .field("ok", true)
            .field("none", Json::Null)
            .field("list", vec![1u32, 2, 3]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"a\"b\\c\n","n":3,"frac":1.5,"ok":true,"none":null,"list":[1,2,3]}"#
        );
    }

    #[test]
    fn durations_are_fractional_ms() {
        let j: Json = Duration::from_micros(1500).into();
        assert_eq!(j.to_string(), "1.5");
    }

    #[test]
    fn counts_and_cache_helpers() {
        assert_eq!(
            counts_json((40, 14, 17, 9)).to_string(),
            r#"{"total":40,"exposed":14,"unsat":17,"prevented":9}"#
        );
        assert_eq!(cache_json(None).to_string(), "null");
        let s = diode_solver::CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        assert_eq!(
            cache_json(Some(s)).to_string(),
            r#"{"hits":3,"misses":1,"entries":1,"hit_rate":0.75}"#
        );
    }
}
