//! JSON emission for the `--json` harness outputs.
//!
//! The value type is `diode-corpus`'s round-tripping [`Json`] — one
//! codec for the whole workspace, so corpus documents and `BENCH_*.json`
//! artifacts share canonical formatting and `u64` payloads (RNG seeds,
//! guard limits) stay exact instead of passing through `f64`. This
//! module adds the harness-shared serializers on top.

use std::time::Duration;

pub use diode_corpus::{Json, JsonError};

/// Serializes a duration as fractional milliseconds (every `*_ms` field
/// in the BENCH schema).
#[must_use]
pub fn ms(d: Duration) -> Json {
    Json::from(d.as_secs_f64() * 1e3)
}

/// Serializes cache counters in the shape every binary shares.
#[must_use]
pub fn cache_json(stats: Option<diode_solver::CacheStats>) -> Json {
    match stats {
        None => Json::Null,
        Some(s) => Json::obj()
            .field("hits", s.hits)
            .field("misses", s.misses)
            .field("entries", s.entries)
            .field("bytes", s.bytes)
            .field("peak_bytes", s.peak_bytes)
            .field("hit_rate", s.hit_rate()),
    }
}

/// Serializes prefix-snapshot counters in the shared BENCH shape.
#[must_use]
pub fn snapshot_json(stats: Option<diode_core::SnapshotStats>) -> Json {
    match stats {
        None => Json::Null,
        Some(s) => Json::obj()
            .field("hits", s.hits)
            .field("misses", s.misses)
            .field("resumes", s.resumes)
            .field("captures", s.captures)
            .field("extract_resumes", s.extract_resumes)
            .field("entries", s.entries)
            .field("bytes", s.bytes)
            .field("peak_bytes", s.peak_bytes)
            .field("resume_rate", s.resume_rate()),
    }
}

/// Serializes `(total, exposed, unsat, prevented)` counts.
#[must_use]
pub fn counts_json(c: (usize, usize, usize, usize)) -> Json {
    Json::obj()
        .field("total", c.0)
        .field("exposed", c.1)
        .field("unsat", c.2)
        .field("prevented", c.3)
}

/// Serializes a forge score card (recall/precision grading).
#[must_use]
pub fn score_json(card: &diode_synth::ScoreCard) -> Json {
    Json::obj()
        .field("graded", card.graded)
        .field("recall", card.recall())
        .field("precision", card.precision())
        .field("exact", card.exact)
        .field("exact_rate", card.exact_rate())
        .field("true_pos", card.true_pos)
        .field("false_pos", card.false_pos)
        .field("false_neg", card.false_neg)
        .field("true_neg", card.true_neg)
        .field(
            "mismatches",
            card.mismatches
                .iter()
                .map(|m| Json::Str(m.to_string()))
                .collect::<Vec<_>>(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_shapes() {
        let j = Json::obj()
            .field("name", "a\"b\\c\n")
            .field("n", 3usize)
            .field("frac", 1.5f64)
            .field("ok", true)
            .field("none", Json::Null)
            .field("list", vec![1u32, 2, 3]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"a\"b\\c\n","n":3,"frac":1.5,"ok":true,"none":null,"list":[1,2,3]}"#
        );
    }

    #[test]
    fn durations_are_fractional_ms() {
        assert_eq!(ms(Duration::from_micros(1500)).to_string(), "1.5");
    }

    #[test]
    fn u64_payloads_stay_exact() {
        let j = Json::obj().field("rng_seed", u64::MAX);
        assert_eq!(j.to_string(), r#"{"rng_seed":18446744073709551615}"#);
    }

    #[test]
    fn counts_and_cache_helpers() {
        assert_eq!(
            counts_json((40, 14, 17, 9)).to_string(),
            r#"{"total":40,"exposed":14,"unsat":17,"prevented":9}"#
        );
        assert_eq!(cache_json(None).to_string(), "null");
        let s = diode_solver::CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            bytes: 96,
            peak_bytes: 120,
        };
        assert_eq!(
            cache_json(Some(s)).to_string(),
            r#"{"hits":3,"misses":1,"entries":1,"bytes":96,"peak_bytes":120,"hit_rate":0.75}"#
        );
    }
}
