//! Loading profiled runs and audit records back from disk — the input
//! side of `profile --diff` and the `audit` bin.
//!
//! [`load_profile`] accepts any of the three shapes the harness writes:
//!
//! * a raw JSONL trace (`synth_campaign --trace`), folded on load;
//! * an `obs_profile` JSON document (`profile --json` output);
//! * a `BENCH_engine.json` artifact, whose `phases` field embeds an
//!   `obs_profile` document (also accepts a `synth_campaign --json`
//!   line with a `profile` field).
//!
//! [`load_audit_records`] reads a `diode_audit` document
//! (`synth_campaign --audit`) back into [`ProvenanceRecord`]s.

use std::collections::BTreeMap;

use diode_corpus::{record_from_json, Json};
use diode_obs::{Phase, PhaseBreakdown, PhaseRow, ProfileReport, ProvenanceRecord, SiteRow, Trace};

fn ms_to_ns(ms: f64) -> u64 {
    (ms.max(0.0) * 1e6).round() as u64
}

fn ns_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(ms_to_ns)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// Reconstructs a [`ProfileReport`] from an `obs_profile` JSON document
/// (millisecond fields are converted back to nanoseconds, so round-trip
/// precision is 1ns — far below timing noise).
///
/// # Errors
///
/// A description of the first missing or malformed field.
pub fn profile_from_json(doc: &Json) -> Result<ProfileReport, String> {
    let rows = doc
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("missing \"phases\" array")?;
    let mut phases = Vec::with_capacity(rows.len());
    for row in rows {
        let name = row
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("phase row missing \"phase\"")?;
        let phase = Phase::parse(name).ok_or_else(|| format!("unknown phase {name:?}"))?;
        phases.push(PhaseRow {
            phase,
            count: row
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("phase row missing \"count\"")?,
            total_ns: ns_field(row, "total_ms")?,
            self_ns: ns_field(row, "self_ms")?,
            p50_ns: ns_field(row, "p50_ms")?,
            p99_ns: ns_field(row, "p99_ms")?,
        });
    }
    let breakdown = PhaseBreakdown {
        phases,
        top_level_ns: ns_field(doc, "top_level_ms")?,
        queue_wait_ns: ns_field(doc, "queue_wait_ms")?,
    };
    let mut top_sites = Vec::new();
    if let Some(rows) = doc.get("top_sites").and_then(Json::as_arr) {
        for row in rows {
            top_sites.push(SiteRow {
                app: row
                    .get("app")
                    .and_then(Json::as_str)
                    .ok_or("site row missing \"app\"")?
                    .to_string(),
                seed: row.get("seed").and_then(Json::as_u64).unwrap_or(0) as u32,
                site: row
                    .get("site")
                    .and_then(Json::as_str)
                    .ok_or("site row missing \"site\"")?
                    .to_string(),
                total_ns: ns_field(row, "total_ms")?,
                spans: row.get("spans").and_then(Json::as_u64).unwrap_or(0),
            });
        }
    }
    let mut counters = BTreeMap::new();
    if let Some(Json::Obj(fields)) = doc.get("counters") {
        for (name, value) in fields {
            if let Some(v) = value.as_u64() {
                counters.insert(name.clone(), v);
            }
        }
    }
    Ok(ProfileReport {
        breakdown,
        top_sites,
        wall_ns: doc.get("wall_ms").and_then(Json::as_f64).map(ms_to_ns),
        threads: doc.get("threads").and_then(Json::as_u64).map(|t| t as u32),
        counters,
    })
}

/// Loads a profiled run from any harness-written shape (see module
/// docs). `top_n` bounds the slowest-site list when folding a raw trace.
///
/// # Errors
///
/// Unreadable files and unrecognised document shapes.
pub fn load_profile(path: &str, top_n: usize) -> Result<ProfileReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Ok(doc) = Json::parse(&text) {
        let embedded = match doc.get("table").and_then(Json::as_str) {
            Some("obs_profile") => &doc,
            Some("bench_engine") => doc
                .get("phases")
                .filter(|p| !p.is_null())
                .ok_or_else(|| format!("{path}: bench_engine artifact has no phases section"))?,
            Some("synth_campaign") => {
                doc.get("profile").filter(|p| !p.is_null()).ok_or_else(|| {
                    format!("{path}: synth_campaign output has no profile section (use --profile)")
                })?
            }
            Some(other) => {
                return Err(format!(
                    "{path}: table {other:?} holds no profile (expected obs_profile, \
                     bench_engine, or a JSONL trace)"
                ))
            }
            None => return Err(format!("{path}: JSON document without a \"table\" field")),
        };
        return profile_from_json(embedded).map_err(|reason| format!("{path}: {reason}"));
    }
    // Not a single JSON document — treat as a JSONL trace.
    let trace = Trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(ProfileReport::from_trace(&trace, top_n))
}

/// Loads the provenance records of a `diode_audit` document (written by
/// `synth_campaign --audit`).
///
/// # Errors
///
/// Unreadable files, wrong table tags, and corrupt records.
pub fn load_audit_records(path: &str) -> Result<Vec<ProvenanceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("table").and_then(Json::as_str) {
        Some("diode_audit") => {}
        Some(other) => return Err(format!("{path}: table {other:?} is not \"diode_audit\"")),
        None => return Err(format!("{path}: missing \"table\" field")),
    }
    let rows = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"records\" array"))?;
    let mut records = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        records.push(record_from_json(&format!("{path}[{i}]"), row).map_err(|e| e.to_string())?);
    }
    Ok(records)
}

/// Serialises provenance records as a `diode_audit` document (the
/// inverse of [`load_audit_records`]). Records are written in canonical
/// form, so the document's record set is byte-identical across thread
/// counts (only the advisory `threads` field varies).
#[must_use]
pub fn audit_document(records: &[ProvenanceRecord], threads: usize) -> Json {
    let rows: Vec<Json> = records
        .iter()
        .map(diode_corpus::record_json_canonical)
        .collect();
    Json::obj()
        .field("table", "diode_audit")
        .field("v", diode_obs::AUDIT_SCHEMA_VERSION)
        .field("threads", threads)
        .field("records", Json::Arr(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_roundtrips_through_obs_profile_json() {
        let mut trace = Trace {
            spans: vec![
                diode_obs::Span {
                    phase: Phase::Enforce,
                    app: "a".into(),
                    seed: 0,
                    site: Some("s1".into()),
                    seq: 0,
                    parent: None,
                    start_ns: 0,
                    dur_ns: 2_000_000,
                    cache_hit: None,
                },
                diode_obs::Span {
                    phase: Phase::Solve,
                    app: "a".into(),
                    seed: 0,
                    site: Some("s1".into()),
                    seq: 1,
                    parent: Some(0),
                    start_ns: 100,
                    dur_ns: 1_000_000,
                    cache_hit: Some(true),
                },
            ],
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            wall_ns: Some(5_000_000),
            threads: Some(2),
        };
        trace.counters.insert("solver.queries".into(), 7);
        let report = ProfileReport::from_trace(&trace, 5);
        let doc = Json::parse(&report.to_json()).expect("report JSON parses");
        let back = profile_from_json(&doc).expect("reconstructs");
        assert_eq!(back.breakdown.phases.len(), report.breakdown.phases.len());
        assert_eq!(back.breakdown.top_level_ns, report.breakdown.top_level_ns);
        assert_eq!(back.counters, report.counters);
        assert_eq!(back.wall_ns, report.wall_ns);
        assert_eq!(back.threads, report.threads);
        assert_eq!(back.top_sites.len(), report.top_sites.len());
    }

    #[test]
    fn audit_document_roundtrips_records() {
        let rec = ProvenanceRecord {
            app: "a".into(),
            seed: 0,
            site: "s@1".into(),
            events: vec![diode_obs::ProvenanceEvent::Verdict {
                outcome: "unknown".into(),
                enforced: 0,
                witness: None,
            }],
        };
        let doc = audit_document(std::slice::from_ref(&rec), 4);
        let dir = std::env::temp_dir().join(format!("diode-profload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.json");
        std::fs::write(&path, doc.to_string()).unwrap();
        let back = load_audit_records(path.to_str().unwrap()).unwrap();
        assert_eq!(back, vec![rec]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
