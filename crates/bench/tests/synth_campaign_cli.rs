//! The `synth_campaign` binary's JSON contract: cache hit/miss counters
//! and the recall gate must be present in `--json` output, and `--sweep`
//! must emit the `BENCH_engine.json` scaling artifact.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_synth_campaign"))
        .args(args)
        .output()
        .expect("synth_campaign runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
    )
}

#[test]
fn json_output_carries_cache_counters_and_recall_gate() {
    let (ok, out) = run(&["--apps", "2", "--json"]);
    assert!(ok, "{out}");
    for needle in [
        "\"cache\":{\"hits\":",
        "\"misses\":",
        "\"hit_rate\":",
        "\"gate\":{\"min_recall\":1,\"achieved_recall\":",
        "\"passed\":true",
    ] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }
}

#[test]
fn min_recall_flag_gates_and_reports() {
    // A lenient gate still passes and prints the achieved recall.
    let (ok, out) = run(&["--apps", "2", "--min-recall", "0.5"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("Achieved recall 1.000 against gate 0.500: PASS"),
        "{out}"
    );
}

#[test]
fn sweep_writes_the_scaling_artifact() {
    let path = std::env::temp_dir().join(format!("BENCH_engine-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "2",
        "--sweep",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    assert!(
        artifact.contains("\"table\":\"bench_engine\""),
        "{artifact}"
    );
    for threads in [
        "\"threads\":1",
        "\"threads\":2",
        "\"threads\":4",
        "\"threads\":8",
    ] {
        assert!(artifact.contains(threads), "missing {threads}:\n{artifact}");
    }
    assert!(artifact.contains("\"speedup\":"), "{artifact}");
    assert!(artifact.contains("\"cache\":{\"hits\":"), "{artifact}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_emits_the_suite_size_axis() {
    let path = std::env::temp_dir().join(format!("BENCH_sizes-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "2",
        "--sweep",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    assert!(artifact.contains("\"size_runs\":["), "{artifact}");
    for apps in ["\"apps\":10", "\"apps\":25", "\"apps\":50"] {
        assert!(artifact.contains(apps), "missing {apps}:\n{artifact}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_replay_requires_identity_and_reports_speedup() {
    let path = std::env::temp_dir().join(format!("BENCH_replay-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "3",
        "--sites",
        "2",
        "--bench-replay",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "byte-identity or recall gate failed");
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    for needle in [
        "\"replay\":{",
        "\"off_ms\":",
        "\"on_ms\":",
        "\"speedup\":",
        "\"identical\":true",
        "\"snapshots\":{\"hits\":",
        "\"resumes\":",
        "\"extract_resumes\":",
    ] {
        assert!(artifact.contains(needle), "missing {needle}:\n{artifact}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_profile_flow_from_campaign_to_profile_bin() {
    let dir = std::env::temp_dir().join(format!("diode-obs-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let folded = dir.join("profile.folded");

    // A traced campaign emits the JSONL trace and an inline profile.
    let (ok, out) = run(&[
        "--apps",
        "3",
        "--trace",
        trace.to_str().unwrap(),
        "--profile",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(
        out.contains("\"profile\":{\"table\":\"obs_profile\""),
        "{out}"
    );
    assert!(out.contains("\"phases\":["), "{out}");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(text.starts_with("{\"type\":\"trace\",\"v\":1"), "{text}");

    // The profile bin folds it, passes the phase gate, and writes
    // collapsed stacks.
    let profile = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_profile"))
            .args(args)
            .output()
            .expect("profile runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };
    let (ok, out, err) = profile(&[
        "--trace",
        trace.to_str().unwrap(),
        "--json",
        "--collapsed",
        folded.to_str().unwrap(),
        "--require-phases",
        "identify,extract,solve,enforce,interp_run",
    ]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    for needle in [
        "\"table\":\"obs_profile\"",
        "\"phase\":\"solve\"",
        "\"top_sites\":[",
        "\"counters\":{",
        "\"solver.queries\":",
    ] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }
    let stacks = std::fs::read_to_string(&folded).expect("collapsed stacks written");
    let line = stacks.lines().next().expect("nonempty stacks");
    assert!(
        line.rsplit_once(' ').is_some_and(|(frames, weight)| {
            frames.contains(';') && weight.parse::<u64>().is_ok()
        }),
        "not a collapsed-stack line: {line}"
    );

    // A trace missing a required phase fails the gate with exit 1.
    let sparse = dir.join("sparse.jsonl");
    std::fs::write(
        &sparse,
        "{\"type\":\"trace\",\"v\":1}\n\
         {\"type\":\"span\",\"phase\":\"solve\",\"app\":\"a\",\"seed\":0,\
         \"seq\":0,\"start_ns\":0,\"dur_ns\":10}\n",
    )
    .unwrap();
    let (ok, _, err) = profile(&[
        "--trace",
        sparse.to_str().unwrap(),
        "--require-phases",
        "solve,identify",
    ]);
    assert!(!ok, "gate must fail for an absent phase");
    assert!(
        err.contains("phase gate FAILED") && err.contains("identify"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trajectory_tolerates_and_backfills_null_seed_records() {
    let dir = std::env::temp_dir().join(format!("diode-traj-null-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("BENCH_engine.json");
    let traj = dir.join("BENCH_trajectory.json");
    // A legacy trajectory: the hand-written seed record has null axes and
    // predates the `phases` key entirely.
    std::fs::write(
        &traj,
        "{\"table\":\"bench_trajectory\",\"records\":[{\"commit\":\"seed\",\
         \"date\":\"2026-07-29\",\"threads\":null,\"sizes\":null,\"replay\":null}]}\n",
    )
    .unwrap();
    let (ok, _) = run(&[
        "--apps",
        "3",
        "--sites",
        "2",
        "--bench-replay",
        "--sweep-out",
        bench.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_trajectory"))
        .args([
            "--bench",
            bench.to_str().unwrap(),
            "--out",
            traj.to_str().unwrap(),
            "--commit",
            "after-seed",
            "--date",
            "2026-08-08",
            "--min-speedup",
            "0.0",
            "--json",
        ])
        .output()
        .expect("trajectory runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = std::fs::read_to_string(&traj).unwrap();
    // The seed record survives, normalised: every axis key is present.
    assert!(
        text.contains("\"commit\":\"seed\""),
        "seed record dropped:\n{text}"
    );
    let seed_part = text
        .split("\"commit\":\"after-seed\"")
        .next()
        .expect("seed record precedes the new one");
    for key in [
        "\"config\":",
        "\"threads\":",
        "\"sizes\":",
        "\"replay\":",
        "\"phases\":",
    ] {
        assert!(
            seed_part.contains(key),
            "seed record missing {key}:\n{text}"
        );
    }

    // A malformed record is a clear, attributed error — not a silent drop.
    std::fs::write(
        &traj,
        "{\"table\":\"bench_trajectory\",\"records\":[{\"date\":\"2026-07-29\"}]}\n",
    )
    .unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_trajectory"))
        .args([
            "--bench",
            bench.to_str().unwrap(),
            "--out",
            traj.to_str().unwrap(),
        ])
        .output()
        .expect("trajectory runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("record #0 is missing a string \"commit\" field"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trajectory_appends_records_and_gates_on_the_replay_speedup() {
    let dir = std::env::temp_dir().join(format!("diode-traj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("BENCH_engine.json");
    let traj = dir.join("BENCH_trajectory.json");
    // A tiny real replay artifact to feed the trajectory gate.
    let (ok, _) = run(&[
        "--apps",
        "3",
        "--sites",
        "2",
        "--bench-replay",
        "--sweep-out",
        bench.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let trajectory = |extra: &[&str]| {
        let mut args = vec![
            "--bench",
            bench.to_str().unwrap(),
            "--out",
            traj.to_str().unwrap(),
            "--commit",
            "test-sha",
            "--date",
            "2026-07-29",
            "--json",
        ];
        args.extend_from_slice(extra);
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_trajectory"))
            .args(&args)
            .output()
            .expect("trajectory runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };
    // Record #1: no previous record, a permissive speedup gate passes.
    let (ok, out) = trajectory(&["--min-speedup", "0.0"]);
    assert!(ok, "{out}");
    assert!(out.contains("\"records\":1"), "{out}");
    // Record #2 gates against record #1's on-wall; identical numbers are
    // within any regression budget.
    let (ok, out) = trajectory(&["--min-speedup", "0.0"]);
    assert!(ok, "{out}");
    assert!(out.contains("\"records\":2"), "{out}");
    // An impossible speedup gate fails (exit 1) but still appends.
    let (ok, out) = trajectory(&["--min-speedup", "1000.0"]);
    assert!(!ok, "{out}");
    assert!(out.contains("\"passed\":false"), "{out}");
    let text = std::fs::read_to_string(&traj).unwrap();
    assert!(text.contains("\"table\":\"bench_trajectory\""));
    assert!(text.contains("\"commit\":\"test-sha\""));
    std::fs::remove_dir_all(&dir).ok();
}
