//! The `synth_campaign` binary's JSON contract: cache hit/miss counters
//! and the recall gate must be present in `--json` output, and `--sweep`
//! must emit the `BENCH_engine.json` scaling artifact.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_synth_campaign"))
        .args(args)
        .output()
        .expect("synth_campaign runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
    )
}

#[test]
fn json_output_carries_cache_counters_and_recall_gate() {
    let (ok, out) = run(&["--apps", "2", "--json"]);
    assert!(ok, "{out}");
    for needle in [
        "\"cache\":{\"hits\":",
        "\"misses\":",
        "\"hit_rate\":",
        "\"gate\":{\"min_recall\":1,\"achieved_recall\":",
        "\"passed\":true",
    ] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }
}

#[test]
fn min_recall_flag_gates_and_reports() {
    // A lenient gate still passes and prints the achieved recall.
    let (ok, out) = run(&["--apps", "2", "--min-recall", "0.5"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("Achieved recall 1.000 against gate 0.500: PASS"),
        "{out}"
    );
}

#[test]
fn sweep_writes_the_scaling_artifact() {
    let path = std::env::temp_dir().join(format!("BENCH_engine-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "2",
        "--sweep",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    assert!(
        artifact.contains("\"table\":\"bench_engine\""),
        "{artifact}"
    );
    for threads in [
        "\"threads\":1",
        "\"threads\":2",
        "\"threads\":4",
        "\"threads\":8",
    ] {
        assert!(artifact.contains(threads), "missing {threads}:\n{artifact}");
    }
    assert!(artifact.contains("\"speedup\":"), "{artifact}");
    assert!(artifact.contains("\"cache\":{\"hits\":"), "{artifact}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_emits_the_suite_size_axis() {
    let path = std::env::temp_dir().join(format!("BENCH_sizes-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "2",
        "--sweep",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    assert!(artifact.contains("\"size_runs\":["), "{artifact}");
    for apps in ["\"apps\":10", "\"apps\":25", "\"apps\":50"] {
        assert!(artifact.contains(apps), "missing {apps}:\n{artifact}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_replay_requires_identity_and_reports_speedup() {
    let path = std::env::temp_dir().join(format!("BENCH_replay-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "3",
        "--sites",
        "2",
        "--bench-replay",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "byte-identity or recall gate failed");
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    for needle in [
        "\"replay\":{",
        "\"off_ms\":",
        "\"on_ms\":",
        "\"speedup\":",
        "\"identical\":true",
        "\"snapshots\":{\"hits\":",
        "\"resumes\":",
        "\"extract_resumes\":",
    ] {
        assert!(artifact.contains(needle), "missing {needle}:\n{artifact}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trajectory_appends_records_and_gates_on_the_replay_speedup() {
    let dir = std::env::temp_dir().join(format!("diode-traj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("BENCH_engine.json");
    let traj = dir.join("BENCH_trajectory.json");
    // A tiny real replay artifact to feed the trajectory gate.
    let (ok, _) = run(&[
        "--apps",
        "3",
        "--sites",
        "2",
        "--bench-replay",
        "--sweep-out",
        bench.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let trajectory = |extra: &[&str]| {
        let mut args = vec![
            "--bench",
            bench.to_str().unwrap(),
            "--out",
            traj.to_str().unwrap(),
            "--commit",
            "test-sha",
            "--date",
            "2026-07-29",
            "--json",
        ];
        args.extend_from_slice(extra);
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_trajectory"))
            .args(&args)
            .output()
            .expect("trajectory runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };
    // Record #1: no previous record, a permissive speedup gate passes.
    let (ok, out) = trajectory(&["--min-speedup", "0.0"]);
    assert!(ok, "{out}");
    assert!(out.contains("\"records\":1"), "{out}");
    // Record #2 gates against record #1's on-wall; identical numbers are
    // within any regression budget.
    let (ok, out) = trajectory(&["--min-speedup", "0.0"]);
    assert!(ok, "{out}");
    assert!(out.contains("\"records\":2"), "{out}");
    // An impossible speedup gate fails (exit 1) but still appends.
    let (ok, out) = trajectory(&["--min-speedup", "1000.0"]);
    assert!(!ok, "{out}");
    assert!(out.contains("\"passed\":false"), "{out}");
    let text = std::fs::read_to_string(&traj).unwrap();
    assert!(text.contains("\"table\":\"bench_trajectory\""));
    assert!(text.contains("\"commit\":\"test-sha\""));
    std::fs::remove_dir_all(&dir).ok();
}
