//! The `synth_campaign` binary's JSON contract: cache hit/miss counters
//! and the recall gate must be present in `--json` output, and `--sweep`
//! must emit the `BENCH_engine.json` scaling artifact.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_synth_campaign"))
        .args(args)
        .output()
        .expect("synth_campaign runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
    )
}

#[test]
fn json_output_carries_cache_counters_and_recall_gate() {
    let (ok, out) = run(&["--apps", "2", "--json"]);
    assert!(ok, "{out}");
    for needle in [
        "\"cache\":{\"hits\":",
        "\"misses\":",
        "\"hit_rate\":",
        "\"gate\":{\"min_recall\":1,\"achieved_recall\":",
        "\"passed\":true",
    ] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }
}

#[test]
fn min_recall_flag_gates_and_reports() {
    // A lenient gate still passes and prints the achieved recall.
    let (ok, out) = run(&["--apps", "2", "--min-recall", "0.5"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("Achieved recall 1.000 against gate 0.500: PASS"),
        "{out}"
    );
}

#[test]
fn sweep_writes_the_scaling_artifact() {
    let path = std::env::temp_dir().join(format!("BENCH_engine-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (ok, _) = run(&[
        "--apps",
        "2",
        "--sweep",
        "--sweep-out",
        path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let artifact = std::fs::read_to_string(&path).expect("artifact written");
    assert!(
        artifact.contains("\"table\":\"bench_engine\""),
        "{artifact}"
    );
    for threads in [
        "\"threads\":1",
        "\"threads\":2",
        "\"threads\":4",
        "\"threads\":8",
    ] {
        assert!(artifact.contains(threads), "missing {threads}:\n{artifact}");
    }
    assert!(artifact.contains("\"speedup\":"), "{artifact}");
    assert!(artifact.contains("\"cache\":{\"hits\":"), "{artifact}");
    std::fs::remove_file(&path).ok();
}
