//! `watch --follow` must survive the daemon's per-job telemetry file
//! rotation: when the file is truncated and recreated mid-follow, the
//! tailer has to pick up the new stream from its first event instead of
//! swallowing the prefix it has "already shown".

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::Duration;

use diode_obs::{pulse_event_lines, telemetry_header, HeartbeatSample, PulseEvent};

fn header_and(events: &[PulseEvent]) -> String {
    let mut out = telemetry_header(1);
    for e in events {
        out.push_str(&pulse_event_lines(e));
    }
    out
}

fn site(app: &str, site: &str, wall_ns: u64) -> PulseEvent {
    PulseEvent::SiteFinished {
        app: app.to_string(),
        seed: 0,
        site: site.to_string(),
        outcome: "exposed".to_string(),
        wall_ns,
        cache_bytes: 0,
        snapshot_bytes: 0,
        peak_heap_bytes: 0,
    }
}

#[test]
fn follow_reopens_a_rotated_stream() {
    let path = std::env::temp_dir().join(format!("watch-rotate-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Job 1: a long unfinished stream (the follower will have "shown"
    // many events by the time the rotation lands).
    let mut first: Vec<PulseEvent> = vec![PulseEvent::UnitStarted {
        app: "app-old".to_string(),
        seed: 0,
    }];
    for i in 0..20 {
        first.push(site("app-old", &format!("s{i}"), 1_000_000));
        first.push(PulseEvent::Heartbeat(HeartbeatSample::default()));
    }
    std::fs::write(&path, header_and(&first)).expect("write job 1 stream");

    let follower = Command::new(env!("CARGO_BIN_EXE_watch"))
        .args([
            "--follow",
            path.to_str().unwrap(),
            "--poll-ms",
            "25",
            "--timeout-ms",
            "30000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("watch spawns");

    // Let the follower tail job 1 for a few polls, then rotate: truncate
    // and recreate with job 2's much shorter, *finished* stream.
    std::thread::sleep(Duration::from_millis(400));
    let second = [
        PulseEvent::UnitStarted {
            app: "app-new".to_string(),
            seed: 0,
        },
        PulseEvent::SitesIdentified {
            app: "app-new".to_string(),
            seed: 0,
            sites: 1,
        },
        site("app-new", "fresh", 2_000_000),
        PulseEvent::Finished {
            wall_ns: 5_000_000,
            sites: 1,
            exposed: 1,
        },
    ];
    {
        let mut f = std::fs::File::create(&path).expect("truncate + recreate");
        f.write_all(header_and(&second).as_bytes())
            .expect("write job 2 stream");
    }

    let out = follower.wait_with_output().expect("watch exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "follow must exit 0 on the rotated stream's finished record\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The new stream's earliest events sit below job 1's shown count —
    // a tailer that doesn't reset on rotation swallows them.
    assert!(
        stdout.contains("identified app-new/0: 1 site(s)"),
        "missing the rotated stream's first events:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("site app-new/0/fresh"),
        "missing the rotated stream's site line:\n{stdout}"
    );
    assert!(stderr.contains("stream rotated"), "{stderr}");

    let _ = std::fs::remove_file(&path);
}
