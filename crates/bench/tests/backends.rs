//! The harness must produce identical Table 1 classifications through the
//! engine and sequential backends, with or without a shared query cache.

use diode_bench::{config_with_cache, table1_matches_paper, table1_rows, AnalysisBackend};
use diode_core::DiodeConfig;

#[test]
fn backends_agree_on_table1() {
    let apps = diode_apps::all_apps();
    let (cached_config, cache) = config_with_cache(DiodeConfig::default());
    let engine = table1_rows(&apps, &cached_config, AnalysisBackend::default());
    let sequential = table1_rows(&apps, &DiodeConfig::default(), AnalysisBackend::Sequential);
    assert!(table1_matches_paper(&engine));
    assert!(table1_matches_paper(&sequential));
    for (e, s) in engine.iter().zip(&sequential) {
        assert_eq!(e.app, s.app);
        assert_eq!(e.measured, s.measured, "{}", e.app);
    }
    let stats = cache.stats();
    assert!(stats.misses > 0);
    assert!(
        stats.hits > 0,
        "structurally repeated queries across sites must hit: {stats:?}"
    );
}

#[test]
fn backend_flag_parsing() {
    assert_eq!(
        AnalysisBackend::from_args(&["--json"]),
        AnalysisBackend::Engine { threads: None }
    );
    assert_eq!(
        AnalysisBackend::from_args(&["--threads", "3"]),
        AnalysisBackend::Engine { threads: Some(3) }
    );
    assert_eq!(
        AnalysisBackend::from_args(&["--sequential", "--threads", "3"]),
        AnalysisBackend::Sequential
    );
}
