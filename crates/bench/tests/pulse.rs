//! diode-pulse end-to-end: telemetry must be passive (byte-identical
//! campaign outcomes at every thread count), complete (the event stream
//! covers every unit and site and ends with `finished`), non-blocking
//! (a never-drained subscriber only loses its own events), and useful
//! (a planted stall is exactly the anomaly the watchdog raises).

use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use diode_engine::{
    CampaignApp, CampaignReport, CampaignSpec, ExecutionMode, PulseBus, PulseConfig, PulseEvent,
    Subscriber,
};
use diode_obs::{Watchdog, WatchdogConfig};
use diode_synth::{forge, forge_range, SynthConfig};

fn suite_apps() -> Vec<CampaignApp> {
    forge(&SynthConfig::default().with_apps(4)).campaign_apps()
}

fn spec(apps: Vec<CampaignApp>, mode: ExecutionMode) -> CampaignSpec {
    let mut spec = CampaignSpec::new(apps);
    spec.mode = mode;
    spec
}

/// Runs `apps` with a fresh pulse bus attached and one subscriber of
/// `ring` capacity; returns the report and the drained stream.
fn run_pulsed(
    apps: Vec<CampaignApp>,
    mode: ExecutionMode,
    ring: usize,
) -> (CampaignReport, Subscriber) {
    let bus = Arc::new(PulseBus::new());
    let sub = bus.subscribe(ring);
    let mut spec = spec(apps, mode);
    let mut pulse = PulseConfig::new(bus);
    pulse.heartbeat = Duration::from_millis(1);
    spec.pulse = Some(pulse);
    (spec.run(), sub)
}

#[test]
fn telemetry_is_passive_and_byte_identical_across_thread_counts() {
    let baseline = spec(suite_apps(), ExecutionMode::Sequential).run();
    for threads in [1usize, 2, 4, 8] {
        let mode = ExecutionMode::Parallel {
            threads: Some(threads),
        };
        let plain = spec(suite_apps(), mode).run();
        let (pulsed, _sub) = run_pulsed(suite_apps(), mode, 1 << 14);
        assert_eq!(
            plain.outcome_fingerprint(),
            baseline.outcome_fingerprint(),
            "parallel({threads}) diverged from sequential"
        );
        assert_eq!(
            pulsed.outcome_fingerprint(),
            baseline.outcome_fingerprint(),
            "telemetry changed outcomes at {threads} thread(s)"
        );
        assert_eq!(
            pulsed.peak_heap_bytes, baseline.peak_heap_bytes,
            "peak heap accounting must be deterministic at {threads} thread(s)"
        );
        assert!(baseline.peak_heap_bytes > 0, "heap accounting is always on");
    }
}

#[test]
fn pulse_stream_covers_every_unit_and_site_and_finishes_last() {
    let (report, sub) = run_pulsed(
        suite_apps(),
        ExecutionMode::Parallel { threads: Some(2) },
        1 << 14,
    );
    let events = sub.drain();
    assert_eq!(sub.dropped(), 0, "a huge ring must not drop");
    let (total_sites, exposed, _, _) = report.counts();
    let units: usize = report.units.len();
    let started = events
        .iter()
        .filter(|e| matches!(e, PulseEvent::UnitStarted { .. }))
        .count();
    let identified: u64 = events
        .iter()
        .filter_map(|e| match e {
            PulseEvent::SitesIdentified { sites, .. } => Some(*sites),
            _ => None,
        })
        .sum();
    let finished_sites = events
        .iter()
        .filter(|e| matches!(e, PulseEvent::SiteFinished { .. }))
        .count();
    let heartbeats = events
        .iter()
        .filter(|e| matches!(e, PulseEvent::Heartbeat(_)))
        .count();
    assert_eq!(started, units, "one UnitStarted per unit");
    assert_eq!(identified, total_sites as u64, "identified sites add up");
    assert_eq!(finished_sites, total_sites, "one SiteFinished per site");
    assert!(heartbeats >= 1, "a 1ms sampler must land at least one beat");
    match events.last() {
        Some(PulseEvent::Finished {
            sites, exposed: ex, ..
        }) => {
            assert_eq!(*sites, total_sites as u64);
            assert_eq!(*ex, exposed as u64);
        }
        other => panic!("stream must end with Finished, got {other:?}"),
    }
}

#[test]
fn slow_subscriber_drops_without_changing_the_campaign() {
    let baseline = spec(suite_apps(), ExecutionMode::Sequential).run();
    let bus = Arc::new(PulseBus::new());
    let fast = bus.subscribe(1 << 14);
    let slow = bus.subscribe(2); // attached, never drained
    let mut spec = spec(suite_apps(), ExecutionMode::Parallel { threads: Some(2) });
    let mut pulse = PulseConfig::new(bus);
    pulse.heartbeat = Duration::from_millis(1);
    spec.pulse = Some(pulse);
    let report = spec.run();
    assert_eq!(
        report.outcome_fingerprint(),
        baseline.outcome_fingerprint(),
        "a stuck subscriber must not perturb the campaign"
    );
    let delivered = fast.drain().len() as u64;
    assert!(
        slow.dropped() + 2 >= delivered && slow.dropped() > 0,
        "slow ring (cap 2) kept {} and dropped {} of {delivered}",
        slow.drain().len(),
        slow.dropped()
    );
}

#[test]
fn planted_stall_raises_exactly_one_slow_site_anomaly() {
    // A healthy fast suite for the median, plus one single-site app
    // whose planted `site_work` loop dwarfs everything else (the fuel
    // bound is raised so the stall runs to completion instead of dying).
    let mut apps = forge(&SynthConfig::default().with_apps(5)).campaign_apps();
    let slow_cfg = SynthConfig {
        apps: 1,
        min_sites: 1,
        max_sites: 1,
        site_work: 2_000_000,
        ..SynthConfig::default()
    };
    let slow = forge_range(&slow_cfg, 100, 1);
    let slow_name = slow.campaign_apps()[0].name.clone();
    apps.extend(slow.campaign_apps());

    let bus = Arc::new(PulseBus::new());
    let sub = bus.subscribe(1 << 14);
    let mut spec = spec(apps, ExecutionMode::Parallel { threads: Some(2) });
    spec.config.machine.fuel = 200_000_000;
    let mut pulse = PulseConfig::new(bus);
    pulse.heartbeat = Duration::from_millis(1);
    spec.pulse = Some(pulse);
    let _report = spec.run();
    let mut watchdog = Watchdog::new(WatchdogConfig {
        slow_site_factor: 8.0,
        slow_site_floor_ns: 0,
        min_sites_for_median: 8,
        idle_heartbeats: u32::MAX, // single-core CI: idle workers are expected
        cache_ceiling_bytes: None,
    });
    for event in sub.drain() {
        watchdog.feed(&event);
    }
    let anomalies = watchdog.finish();
    assert_eq!(
        anomalies.len(),
        1,
        "exactly the planted stall must fire: {anomalies:?}"
    );
    assert_eq!(anomalies[0].kind.as_str(), "slow_site");
    assert!(
        anomalies[0].subject.contains(&slow_name),
        "anomaly {:?} must point at {slow_name}",
        anomalies[0].subject
    );
}

#[test]
fn watch_cli_renders_a_recorded_stream() {
    let dir = std::env::temp_dir().join(format!("diode-pulse-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let telemetry = dir.join("telemetry.jsonl");
    let digest = dir.join("anomalies.jsonl");

    let out = Command::new(env!("CARGO_BIN_EXE_synth_campaign"))
        .args([
            "--apps",
            "3",
            "--telemetry",
            telemetry.to_str().unwrap(),
            "--watchdog",
        ])
        .output()
        .expect("synth_campaign runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stream = std::fs::read_to_string(&telemetry).expect("telemetry written");
    assert!(
        stream.starts_with("{\"type\":\"pulse\",\"v\":1"),
        "{stream}"
    );
    assert!(stream.contains("\"type\":\"finished\""), "{stream}");

    let watch = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_watch"))
            .args(args)
            .output()
            .expect("watch runs");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };

    // Text mode: per-worker, per-outcome, cache-pressure, watchdog.
    let (ok, text) = watch(&[
        "--replay",
        telemetry.to_str().unwrap(),
        "--anomalies",
        digest.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    for needle in [
        "watch: ",
        "worker 0: busy",
        "outcomes:",
        "cache pressure: solver",
        "watchdog: no anomalies",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    let digest_text = std::fs::read_to_string(&digest).expect("digest written");
    assert!(
        digest_text.starts_with("{\"type\":\"anomalies\",\"v\":1,\"count\":0}"),
        "{digest_text}"
    );

    // JSON mode carries the same summary machine-readably.
    let (ok, json) = watch(&["--replay", telemetry.to_str().unwrap(), "--json"]);
    assert!(ok, "{json}");
    for needle in [
        "\"table\":\"pulse_watch\"",
        "\"finished\":{\"wall_ms\":",
        "\"workers\":[{\"worker\":0",
        "\"outcomes\":[{\"outcome\":",
        "\"peak_cache_bytes\":",
        "\"anomalies\":[]",
    ] {
        assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
    }

    // Follow mode on an already-finished stream narrates and exits.
    let (ok, live) = watch(&[
        "--follow",
        telemetry.to_str().unwrap(),
        "--timeout-ms",
        "10000",
    ]);
    assert!(ok, "{live}");
    assert!(live.contains("finished: "), "{live}");
    assert!(live.contains("watchdog: no anomalies"), "{live}");
    std::fs::remove_dir_all(&dir).ok();
}
