//! Cross-process corpus determinism, through the real `corpus` binary:
//! one process forges and saves a suite, a second process reloads and
//! replays it, and the recorded `ScoreCard` and findings must be
//! byte-identical. A third process runs `diff` over the two recorded
//! runs and must find them clean.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("diode-corpus-xproc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus(root: &PathBuf, args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_corpus"))
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("corpus binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    (out.status.success(), format!("{stdout}{stderr}"))
}

#[test]
fn forge_then_replay_in_separate_processes_is_byte_identical() {
    let root = scratch("roundtrip");

    // Process 1: forge, save, record baseline witnesses.
    let (ok, out) = corpus(&root, &["forge", "--apps", "4", "--json"]);
    assert!(ok, "forge failed:\n{out}");
    assert!(out.contains("\"perfect\":true"), "{out}");
    let suite_id = out
        .split("\"suite_id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("forge output names the suite id")
        .to_string();
    assert!(suite_id.starts_with("suite-"), "{suite_id}");

    // Process 2: reload from disk, replay, compare byte-for-byte.
    let (ok, out) = corpus(&root, &["replay", &suite_id, "--json"]);
    assert!(ok, "replay drifted from the recorded baseline:\n{out}");
    assert!(out.contains("\"scorecard_identical\":true"), "{out}");
    assert!(out.contains("\"findings_identical\":true"), "{out}");
    assert!(out.contains("\"identical\":true"), "{out}");

    // Process 3: diff the two recorded runs; must be clean.
    let (ok, out) = corpus(&root, &["diff", &suite_id, "baseline", "replay", "--json"]);
    assert!(ok, "diff of identical runs must be clean:\n{out}");
    assert!(out.contains("\"clean\":true"), "{out}");

    // Process 4: the sequential backend reproduces the parallel record.
    let (ok, out) = corpus(
        &root,
        &[
            "replay",
            &suite_id,
            "--sequential",
            "--label",
            "seq",
            "--json",
        ],
    );
    assert!(ok, "sequential replay drifted:\n{out}");
    assert!(out.contains("\"identical\":true"), "{out}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn grow_is_cross_process_deterministic() {
    let root_a = scratch("grow-a");
    let root_b = scratch("grow-b");

    // Store A: forge 2, grow by 2.
    let (ok, out) = corpus(&root_a, &["forge", "--apps", "2", "--seed", "77", "--json"]);
    assert!(ok, "{out}");
    let (ok, out) = corpus(&root_a, &["grow", "latest", "2", "--json"]);
    assert!(ok, "{out}");
    let grown_id = out
        .split("\"suite_id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("grow output names the suite id")
        .to_string();

    // Store B: forge 4 in one shot — same content-addressed identity.
    let (ok, out) = corpus(&root_b, &["forge", "--apps", "4", "--seed", "77", "--json"]);
    assert!(ok, "{out}");
    assert!(
        out.contains(&format!("\"suite_id\":\"{grown_id}\"")),
        "grown suite must equal the one-shot suite: {grown_id} vs\n{out}"
    );

    std::fs::remove_dir_all(&root_a).ok();
    std::fs::remove_dir_all(&root_b).ok();
}
