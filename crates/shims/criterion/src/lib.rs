//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion 0.5 API this workspace's `benches/`
//! targets use — [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timer that
//! reports min/mean per-iteration times. It has no statistical machinery;
//! it exists so `cargo bench` runs offline and the bench targets stay
//! compiled and honest.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    #[must_use]
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup {name}");
        BenchmarkGroup { sample_size: 10 }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: calls `f` with a [`Bencher`], times the
    /// iterations it registers, and prints a one-line summary.
    pub fn bench_function<S: std::fmt::Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!("  {id:<44} mean {mean:>12.2?}  min {min:>12.2?}  ({n} samples)");
        self
    }

    /// Ends the group (mirrors criterion's API; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing handle (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` once per sample after a single untimed warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.target_samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Prevents the compiler from optimising a value away (re-export shape of
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
