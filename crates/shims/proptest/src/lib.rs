//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no registry access, so this
//! crate implements the subset of the proptest API the test suites use:
//! the [`Strategy`] trait with `prop_map` and `prop_recursive`, [`Just`],
//! range and tuple strategies, [`any`]/[`Arbitrary`], uniform
//! [`collection::vec`], and the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_assume!` macros.
//!
//! Semantics: each test runs `cases` random cases (default 256) from a
//! deterministic per-test seed. There is **no shrinking** — on failure the
//! panic message carries the case number so the run can be replayed by
//! reading the generated values (all generation is seed-deterministic).

#![warn(missing_docs)]

use std::rc::Rc;

/// Deterministic generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Why a test case did not pass (mirrors `proptest::test_runner`).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!`).
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value-generation strategy (mirrors `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Gen<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        Gen::new(move |rng| f(inner.generate(rng)))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// builds one extra level from the strategy for the level below. The
    /// `_desired_size`/`_expected_branch_size` hints are accepted for API
    /// compatibility; depth alone bounds recursion here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Gen<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(Gen<Self::Value>) -> S,
    {
        let mut level = self.clone().into_gen();
        for _ in 0..depth {
            let leaf = self.clone().into_gen();
            let branch = recurse(level).into_gen();
            level = Gen::new(move |rng| {
                // 1-in-4 leaves keeps generated structures diverse without
                // always bottoming out at max depth.
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        level
    }
}

/// A boxed generation function — the universal strategy form every
/// combinator returns. Cheap to clone.
pub struct Gen<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for Gen<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gen<{}>", std::any::type_name::<T>())
    }
}

impl<T> Gen<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Gen(Rc::new(f))
    }

    /// Chooses uniformly among the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn one_of(arms: Vec<Gen<T>>) -> Self
    where
        T: 'static,
    {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Gen::new(move |rng| {
            let i = rng.below(arms.len() as u64) as usize;
            arms[i].generate(rng)
        })
    }
}

impl<T> Strategy for Gen<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Conversion of any strategy into its boxed [`Gen`] form.
pub trait IntoGen: Strategy + Sized + 'static {
    /// Boxes the strategy.
    fn into_gen(self) -> Gen<Self::Value>;
}

impl<S: Strategy + Sized + 'static> IntoGen for S {
    fn into_gen(self) -> Gen<S::Value> {
        Gen::new(move |rng| self.generate(rng))
    }
}

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = if span == 0 || (span as u128) > u128::from(u64::MAX) {
                    // Full-width or >2^64 span: take raw bits modulo span.
                    let raw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()))
                        as $wide;
                    if span == 0 { raw } else { raw % span }
                } else {
                    rng.below(span as u64) as $wide
                };
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i32 => u32, i64 => u64
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a canonical uniform strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The canonical strategy for an [`Arbitrary`] type (mirrors
/// `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary + 'static>() -> Gen<T> {
    Gen::new(T::arbitrary)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Gen, Strategy, TestRng};

    /// A strategy for `Vec`s whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S>(element: S, len: std::ops::Range<usize>) -> Gen<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        Gen::new(move |rng: &mut TestRng| {
            let n = len.generate(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Everything a test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Gen, IntoGen, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
#[must_use]
pub fn test_seed(name: &str) -> u64 {
    // FNV-1a over the fully qualified test name: stable across runs, so
    // failures reproduce, while distinct tests get distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let seed = test_seed(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 16 + 256;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let mut rng = TestRng::new(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}) — prop_assume! filter too strict"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {attempt} (seed {seed:#x}) failed: {msg}");
            }
        }
        attempt += 1;
    }
}

/// Runs property tests (mirrors the `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(#[test] fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |__rng: &mut $crate::TestRng| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $crate::__proptest_bind!(__rng, $($params)*);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Binds `proptest!` parameters (`x in strategy` or `x: Type`) to values.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $i:ident in $s:expr $(,)?) => {
        let $i = $crate::Strategy::generate(&$s, $rng);
    };
    ($rng:ident, $i:ident in $s:expr, $($rest:tt)+) => {
        let $i = $crate::Strategy::generate(&$s, $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $i:ident : $t:ty $(,)?) => {
        let $i: $t = $crate::Arbitrary::arbitrary($rng);
    };
    ($rng:ident, $i:ident : $t:ty, $($rest:tt)+) => {
        let $i: $t = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Chooses uniformly among strategies (mirrors `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Gen::one_of(vec![$($crate::IntoGen::into_gen($arm)),+])
    };
}

/// Asserts inside a property test without aborting the whole run on panic
/// (mirrors `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test (mirrors `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                );
            }
        }
    };
}

/// Asserts inequality inside a property test (mirrors `prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($a),
                    stringify!($b),
                    __l
                );
            }
        }
    };
}

/// Discards the current case (mirrors `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2), 10u32..20]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn mixed_binding_forms(x in small(), y: u8, pair in (0u32..4, any::<u8>())) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
            let _ = y;
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0u32..100, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for x in v {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n: u8) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(#[allow(dead_code)] u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn recursive_strategies_bound_depth(
            t in (0u32..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let s = (0u32..1000, 0u32..1000);
        let mut r1 = crate::TestRng::new(crate::test_seed("a"));
        let mut r2 = crate::TestRng::new(crate::test_seed("a"));
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
