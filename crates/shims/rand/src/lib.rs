//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so this
//! crate provides the exact subset of the `rand` 0.8 API the workspace
//! consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is SplitMix64 feeding xoshiro256**: deterministic per
//! seed, statistically solid for test-input diversification, and in no way
//! cryptographic (neither is the real `StdRng` contractually).

#![warn(missing_docs)]

/// Concrete RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic, seedable RNG (xoshiro256** under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types that can be drawn uniformly from an RNG (stands in for
/// `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for u8 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled (stands in for `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, exactly like `rand`.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 * span.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing RNG extension trait (mirrors `rand::Rng`).
pub trait Rng {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws a uniform value from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.75)).count();
        assert!((7000..8000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
