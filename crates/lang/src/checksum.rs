//! Checksum functions giving the `crc32_ok` intrinsic its semantics.
//!
//! The same functions are used by `diode-format`'s Peach-style input
//! reconstructor to *repair* checksums in generated inputs, which is why
//! the intrinsic never flips between seed and candidate runs (DESIGN.md §3).

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the PNG chunk
/// checksum.
///
/// # Examples
///
/// ```
/// assert_eq!(diode_lang::checksum::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Adler-32 (RFC 1950), provided for zlib-style containers.
///
/// # Examples
///
/// ```
/// assert_eq!(diode_lang::checksum::adler32(b"Wikipedia"), 0x11E6_0398);
/// ```
#[must_use]
pub fn adler32(bytes: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let (mut a, mut b) = (1u32, 0u32);
    for &byte in bytes {
        a = (a + u32::from(byte)) % MOD;
        b = (b + a) % MOD;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_any_single_byte_change() {
        let base = b"IHDR\x00\x00\x01\x18\x00\x00\x00\xb4\x08\x02\x00\x00\x00".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            let mut changed = base.clone();
            changed[i] ^= 0x40;
            assert_ne!(crc32(&changed), reference, "byte {i}");
        }
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }
}
