//! Programmatic AST construction: fresh labels, interned variables, and
//! procedure slots without going through the text front-end.
//!
//! The text parser ([`crate::parse()`]) is the right entry point for
//! hand-written benchmark sources, but generated programs (the
//! `diode-synth` scenario forge) want to be **well-formed by
//! construction**: every statement gets a unique label, every variable is
//! interned exactly once, and procedure references resolve by
//! construction rather than by name lookup. [`ProgramBuilder`] provides
//! that: declare procedures up front (obtaining [`ProcId`]s usable in
//! [`Stmt::Call`]), build statements through the labelling helpers, and
//! [`ProgramBuilder::finish`] assembles a [`Program`] that pretty-prints
//! and re-parses cleanly.
//!
//! ```
//! use diode_lang::build::{exp, ProgramBuilder};
//! use diode_lang::Block;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.declare_proc("main");
//! let x = b.var("x");
//! let buf = b.var("buf");
//! let body = Block(vec![
//!     b.assign(x, exp::shl(exp::zext(32, exp::in_byte(exp::c32(0))), exp::c32(8))),
//!     b.alloc("gen.c@2", buf, exp::mul(exp::v(x), exp::c32(4))).1,
//! ]);
//! b.define_proc(main, vec![], body);
//! let program = b.finish().unwrap();
//! assert_eq!(program.alloc_sites().len(), 1);
//! let reparsed = diode_lang::parse(&diode_lang::pretty::program(&program)).unwrap();
//! assert_eq!(reparsed.alloc_sites().len(), 1);
//! ```

use std::fmt;

use crate::ast::{
    Aexp, Bexp, Block, Interner, Label, NoMainError, Proc, ProcId, Program, Stmt, Symbol,
};

/// Incrementally assembles a [`Program`] with fresh labels and interned
/// variables.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    interner: Interner,
    procs: Vec<(String, Option<Proc>)>,
    next_label: u32,
}

/// Error returned by [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A declared procedure was never defined.
    UndefinedProc(String),
    /// No procedure is named `main`.
    NoMain,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedProc(name) => {
                write!(f, "procedure `{name}` was declared but never defined")
            }
            BuildError::NoMain => write!(f, "{NoMainError}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable name.
    pub fn var(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Allocates a fresh statement label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Declares a procedure, reserving its [`ProcId`] so calls can be
    /// built before (or while) its body is.
    pub fn declare_proc(&mut self, name: &str) -> ProcId {
        let id = ProcId(u32::try_from(self.procs.len()).expect("too many procedures"));
        self.procs.push((name.to_owned(), None));
        id
    }

    /// Defines a previously declared procedure.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder or is already
    /// defined.
    pub fn define_proc(&mut self, id: ProcId, params: Vec<Symbol>, body: Block) {
        let slot = &mut self.procs[id.0 as usize];
        assert!(slot.1.is_none(), "procedure `{}` defined twice", slot.0);
        slot.1 = Some(Proc {
            name: slot.0.clone(),
            params,
            body,
        });
    }

    /// Assembles the program.
    ///
    /// # Errors
    ///
    /// Returns an error if any declared procedure lacks a definition or no
    /// procedure is named `main`.
    pub fn finish(self) -> Result<Program, BuildError> {
        let mut procs = Vec::with_capacity(self.procs.len());
        for (name, def) in self.procs {
            procs.push(def.ok_or(BuildError::UndefinedProc(name))?);
        }
        Program::from_parts(procs, self.interner, self.next_label)
            .map_err(|NoMainError| BuildError::NoMain)
    }

    // -- labelled statement helpers ------------------------------------

    /// `skip;`
    pub fn skip(&mut self) -> Stmt {
        Stmt::Skip(self.fresh_label())
    }

    /// `dst = e;`
    pub fn assign(&mut self, dst: Symbol, e: Aexp) -> Stmt {
        Stmt::Assign(self.fresh_label(), dst, e)
    }

    /// `dst = proc(args);` (or a bare call when `dst` is `None`).
    pub fn call(&mut self, dst: Option<Symbol>, proc: ProcId, args: Vec<Aexp>) -> Stmt {
        Stmt::Call {
            label: self.fresh_label(),
            dst,
            proc,
            args,
        }
    }

    /// `dst = alloc("site", size);` — returns the site label too (the
    /// target label ℓ used by oracles and reports).
    pub fn alloc(&mut self, site: &str, dst: Symbol, size: Aexp) -> (Label, Stmt) {
        let label = self.fresh_label();
        (
            label,
            Stmt::Alloc {
                label,
                site: site.into(),
                dst,
                size,
                abort_on_fail: false,
            },
        )
    }

    /// `free(ptr);`
    pub fn free(&mut self, ptr: Symbol) -> Stmt {
        Stmt::Free(self.fresh_label(), ptr)
    }

    /// `dst = base[offset];`
    pub fn load(&mut self, dst: Symbol, base: Symbol, offset: Aexp) -> Stmt {
        Stmt::Load {
            label: self.fresh_label(),
            dst,
            base,
            offset,
        }
    }

    /// `base[offset] = value;`
    pub fn store(&mut self, base: Symbol, offset: Aexp, value: Aexp) -> Stmt {
        Stmt::Store {
            label: self.fresh_label(),
            base,
            offset,
            value,
        }
    }

    /// `if cond { then_blk } else { else_blk }`
    pub fn if_(&mut self, cond: Bexp, then_blk: Block, else_blk: Block) -> Stmt {
        Stmt::If {
            label: self.fresh_label(),
            cond,
            then_blk,
            else_blk,
        }
    }

    /// `while cond { body }`
    pub fn while_(&mut self, cond: Bexp, body: Block) -> Stmt {
        Stmt::While {
            label: self.fresh_label(),
            cond,
            body,
        }
    }

    /// `error("msg");`
    pub fn error(&mut self, msg: &str) -> Stmt {
        Stmt::Error(self.fresh_label(), msg.to_owned())
    }

    /// `warn("msg");`
    pub fn warn(&mut self, msg: &str) -> Stmt {
        Stmt::Warn(self.fresh_label(), msg.to_owned())
    }

    /// `abort("msg");`
    pub fn abort(&mut self, msg: &str) -> Stmt {
        Stmt::Abort(self.fresh_label(), msg.to_owned())
    }

    /// `return e?;`
    pub fn ret(&mut self, e: Option<Aexp>) -> Stmt {
        Stmt::Return(self.fresh_label(), e)
    }
}

/// Expression shorthands for generated code. All are plain constructors;
/// width discipline is the caller's responsibility (as in the parser).
pub mod exp {
    use crate::ast::{Aexp, Bexp, BinOp, CastKind, CmpOp, Symbol};
    use crate::bv::Bv;

    /// 8-bit constant.
    #[must_use]
    pub fn c8(v: u8) -> Aexp {
        Aexp::Const(Bv::byte(v))
    }

    /// 32-bit constant.
    #[must_use]
    pub fn c32(v: u32) -> Aexp {
        Aexp::Const(Bv::u32(v))
    }

    /// 64-bit constant.
    #[must_use]
    pub fn c64(v: u64) -> Aexp {
        Aexp::Const(Bv::new(64, u128::from(v)))
    }

    /// Variable reference.
    #[must_use]
    pub fn v(sym: Symbol) -> Aexp {
        Aexp::Var(sym)
    }

    /// One input byte, `in[idx]`.
    #[must_use]
    pub fn in_byte(idx: Aexp) -> Aexp {
        Aexp::InByte(Box::new(idx))
    }

    /// Zero extension to `width`.
    #[must_use]
    pub fn zext(width: u8, e: Aexp) -> Aexp {
        Aexp::Cast(CastKind::Zext, width, Box::new(e))
    }

    /// Truncation to `width`.
    #[must_use]
    pub fn trunc(width: u8, e: Aexp) -> Aexp {
        Aexp::Cast(CastKind::Trunc, width, Box::new(e))
    }

    /// Wrapping addition.
    #[must_use]
    pub fn add(a: Aexp, b: Aexp) -> Aexp {
        Aexp::bin(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    #[must_use]
    pub fn sub(a: Aexp, b: Aexp) -> Aexp {
        Aexp::bin(BinOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    #[must_use]
    pub fn mul(a: Aexp, b: Aexp) -> Aexp {
        Aexp::bin(BinOp::Mul, a, b)
    }

    /// Unsigned division.
    #[must_use]
    pub fn udiv(a: Aexp, b: Aexp) -> Aexp {
        Aexp::bin(BinOp::UDiv, a, b)
    }

    /// Left shift.
    #[must_use]
    pub fn shl(a: Aexp, b: Aexp) -> Aexp {
        Aexp::bin(BinOp::Shl, a, b)
    }

    /// Bitwise or.
    #[must_use]
    pub fn or(a: Aexp, b: Aexp) -> Aexp {
        Aexp::bin(BinOp::Or, a, b)
    }

    /// Comparison atom.
    #[must_use]
    pub fn cmp(op: CmpOp, a: Aexp, b: Aexp) -> Bexp {
        Bexp::cmp(op, a, b)
    }

    /// Unsigned `a > b`.
    #[must_use]
    pub fn ugt(a: Aexp, b: Aexp) -> Bexp {
        Bexp::cmp(CmpOp::Ugt, a, b)
    }

    /// Unsigned `a < b`.
    #[must_use]
    pub fn ult(a: Aexp, b: Aexp) -> Bexp {
        Bexp::cmp(CmpOp::Ult, a, b)
    }

    /// `a != b`.
    #[must_use]
    pub fn ne(a: Aexp, b: Aexp) -> Bexp {
        Bexp::cmp(CmpOp::Ne, a, b)
    }

    /// `a == b`.
    #[must_use]
    pub fn eq(a: Aexp, b: Aexp) -> Bexp {
        Bexp::cmp(CmpOp::Eq, a, b)
    }

    /// Short-circuit conjunction.
    #[must_use]
    pub fn band(a: Bexp, b: Bexp) -> Bexp {
        Bexp::And(Box::new(a), Box::new(b))
    }

    /// Short-circuit disjunction.
    #[must_use]
    pub fn bor(a: Bexp, b: Bexp) -> Bexp {
        Bexp::Or(Box::new(a), Box::new(b))
    }

    /// Checksum-verification condition `crc32_ok(start, len, stored)`.
    #[must_use]
    pub fn crc32_ok(start: Aexp, len: Aexp, stored: Aexp) -> Bexp {
        Bexp::Crc32Ok {
            start: Box::new(start),
            len: Box::new(len),
            stored: Box::new(stored),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::exp;
    use super::*;
    use crate::parse;
    use crate::pretty;

    #[test]
    fn builder_assembles_a_roundtrippable_program() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_proc("main");
        let helper = b.declare_proc("be16at");
        let p = b.var("p");
        let body = Block(vec![b.ret(Some(exp::or(
            exp::shl(exp::zext(32, exp::in_byte(exp::v(p))), exp::c32(8)),
            exp::zext(32, exp::in_byte(exp::add(exp::v(p), exp::c32(1)))),
        )))]);
        b.define_proc(helper, vec![p], body);

        let x = b.var("x");
        let buf = b.var("buf");
        let reject = b.error("too big");
        let guard = b.if_(
            exp::ugt(exp::v(x), exp::c32(1000)),
            Block(vec![reject]),
            Block::new(),
        );
        let main_body = Block(vec![
            b.call(Some(x), helper, vec![exp::c32(4)]),
            guard,
            b.alloc("gen.c@9", buf, exp::mul(exp::v(x), exp::c32(131072)))
                .1,
            b.free(buf),
        ]);
        b.define_proc(main, vec![], main_body);

        let program = b.finish().unwrap();
        assert_eq!(program.alloc_sites().len(), 1);
        assert_eq!(&*program.alloc_sites()[0].1, "gen.c@9");

        let printed = pretty::program(&program);
        let reparsed = parse(&printed).expect("builder output re-parses");
        assert_eq!(printed, pretty::program(&reparsed), "canonical round-trip");
    }

    #[test]
    fn labels_are_unique_and_dense() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_proc("main");
        let x = b.var("x");
        let bump = b.assign(x, exp::add(exp::v(x), exp::c32(1)));
        let stmts = vec![
            b.assign(x, exp::c32(1)),
            b.skip(),
            b.while_(exp::ult(exp::v(x), exp::c32(3)), Block(vec![bump])),
        ];
        b.define_proc(main, vec![], Block(stmts));
        let program = b.finish().unwrap();
        assert_eq!(program.n_labels(), 4);
    }

    #[test]
    fn finish_rejects_undefined_and_mainless_programs() {
        let mut b = ProgramBuilder::new();
        let _ = b.declare_proc("main");
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UndefinedProc("main".into())
        );

        let mut b = ProgramBuilder::new();
        let helper = b.declare_proc("helper");
        b.define_proc(helper, vec![], Block::new());
        assert_eq!(b.finish().unwrap_err(), BuildError::NoMain);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_proc("main");
        b.define_proc(main, vec![], Block::new());
        b.define_proc(main, vec![], Block::new());
    }
}
