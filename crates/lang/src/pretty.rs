//! Pretty-printer: renders programs back to the concrete syntax accepted by
//! [`crate::parse()`].
//!
//! Round-tripping (`parse(pretty(p))` produces a structurally equal program
//! up to label renumbering) is checked by property tests in the crate's
//! test suite. The printer is also used by bug reports and the walkthrough
//! examples to show target expressions and enforced conditions in readable
//! form.

use std::fmt::Write as _;

use crate::ast::{Aexp, Bexp, BinOp, CastKind, CmpOp, Interner, Program, Stmt, UnOp};

/// Renders a whole program as source text.
#[must_use]
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for proc in p.procs() {
        let params: Vec<&str> = proc.params.iter().map(|&s| p.interner().name(s)).collect();
        let _ = writeln!(out, "fn {}({}) {{", proc.name, params.join(", "));
        for stmt in proc.body.stmts() {
            stmt_into(stmt, p, 1, &mut out);
        }
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    out
}

/// Renders one statement (recursively) with the given indent level.
#[must_use]
pub fn stmt(s: &Stmt, program: &Program) -> String {
    let mut out = String::new();
    stmt_into(s, program, 0, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn stmt_into(s: &Stmt, p: &Program, level: usize, out: &mut String) {
    let i = p.interner();
    indent(level, out);
    match s {
        Stmt::Skip(_) => out.push_str("skip;\n"),
        Stmt::Assign(_, dst, e) => {
            let _ = writeln!(out, "{} = {};", i.name(*dst), aexp(e, i));
        }
        Stmt::Call {
            dst, proc, args, ..
        } => {
            let args: Vec<String> = args.iter().map(|a| aexp(a, i)).collect();
            let callee = &p.proc(*proc).name;
            match dst {
                Some(d) => {
                    let _ = writeln!(out, "{} = {callee}({});", i.name(*d), args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{callee}({});", args.join(", "));
                }
            }
        }
        Stmt::Alloc {
            site,
            dst,
            size,
            abort_on_fail,
            ..
        } => {
            let kw = if *abort_on_fail {
                "alloc_abort"
            } else {
                "alloc"
            };
            let _ = writeln!(
                out,
                "{} = {kw}(\"{site}\", {});",
                i.name(*dst),
                aexp(size, i)
            );
        }
        Stmt::Free(_, ptr) => {
            let _ = writeln!(out, "free({});", i.name(*ptr));
        }
        Stmt::Load {
            dst, base, offset, ..
        } => {
            let _ = writeln!(
                out,
                "{} = {}[{}];",
                i.name(*dst),
                i.name(*base),
                aexp(offset, i)
            );
        }
        Stmt::Store {
            base,
            offset,
            value,
            ..
        } => {
            let _ = writeln!(
                out,
                "{}[{}] = {};",
                i.name(*base),
                aexp(offset, i),
                aexp(value, i)
            );
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = writeln!(out, "if {} {{", bexp(cond, i));
            for s in then_blk.stmts() {
                stmt_into(s, p, level + 1, out);
            }
            if else_blk.stmts().is_empty() {
                indent(level, out);
                out.push_str("}\n");
            } else {
                indent(level, out);
                out.push_str("} else {\n");
                for s in else_blk.stmts() {
                    stmt_into(s, p, level + 1, out);
                }
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while {} {{", bexp(cond, i));
            for s in body.stmts() {
                stmt_into(s, p, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Error(_, m) => {
            let _ = writeln!(out, "error(\"{}\");", escape(m));
        }
        Stmt::Warn(_, m) => {
            let _ = writeln!(out, "warn(\"{}\");", escape(m));
        }
        Stmt::Abort(_, m) => {
            let _ = writeln!(out, "abort(\"{}\");", escape(m));
        }
        Stmt::Return(_, None) => out.push_str("return;\n"),
        Stmt::Return(_, Some(e)) => {
            let _ = writeln!(out, "return {};", aexp(e, i));
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            other => vec![other],
        })
        .collect()
}

/// Renders an arithmetic expression (fully parenthesised, so precedence is
/// unambiguous on re-parse).
#[must_use]
pub fn aexp(e: &Aexp, i: &Interner) -> String {
    match e {
        Aexp::Const(bv) => format!("{}u{}", bv.value(), bv.width()),
        Aexp::Var(sym) => i.name(*sym).to_owned(),
        Aexp::InByte(idx) => format!("in[{}]", aexp(idx, i)),
        Aexp::InLen => "inlen".to_owned(),
        Aexp::Un(UnOp::Neg, a) => format!("(-{})", aexp(a, i)),
        Aexp::Un(UnOp::Not, a) => format!("(~{})", aexp(a, i)),
        Aexp::Bin(BinOp::AShr, a, b) => format!("ashr({}, {})", aexp(a, i), aexp(b, i)),
        Aexp::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::UDiv => "/",
                BinOp::URem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::LShr => ">>",
                BinOp::AShr => unreachable!(),
            };
            format!("({} {sym} {})", aexp(a, i), aexp(b, i))
        }
        Aexp::Cast(kind, w, a) => {
            let name = match kind {
                CastKind::Zext => "zext",
                CastKind::Sext => "sext",
                CastKind::Trunc => "trunc",
            };
            format!("{name}{w}({})", aexp(a, i))
        }
    }
}

/// Renders a boolean expression.
#[must_use]
pub fn bexp(b: &Bexp, i: &Interner) -> String {
    match b {
        Bexp::Const(true) => "true".to_owned(),
        Bexp::Const(false) => "false".to_owned(),
        Bexp::Cmp(op, a, bb) => {
            let (fun, sym) = match op {
                CmpOp::Eq => (None, "=="),
                CmpOp::Ne => (None, "!="),
                CmpOp::Ult => (None, "<"),
                CmpOp::Ule => (None, "<="),
                CmpOp::Ugt => (None, ">"),
                CmpOp::Uge => (None, ">="),
                CmpOp::Slt => (Some("slt"), ""),
                CmpOp::Sle => (Some("sle"), ""),
                CmpOp::Sgt => (Some("sgt"), ""),
                CmpOp::Sge => (Some("sge"), ""),
            };
            match fun {
                Some(f) => format!("{f}({}, {})", aexp(a, i), aexp(bb, i)),
                None => format!("{} {sym} {}", aexp(a, i), aexp(bb, i)),
            }
        }
        Bexp::Not(inner) => format!("!({})", bexp(inner, i)),
        Bexp::And(a, b) => format!("({} && {})", bexp(a, i), bexp(b, i)),
        Bexp::Or(a, b) => format!("({} || {})", bexp(a, i), bexp(b, i)),
        Bexp::Crc32Ok { start, len, stored } => format!(
            "crc32_ok({}, {}, {})",
            aexp(start, i),
            aexp(len, i),
            aexp(stored, i)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_simple_program() {
        let src = r#"
            fn helper(a) { return a * 2; }
            fn main() {
                x = zext32(in[0]) << 8 | zext32(in[1]);
                if x > 100 && x < 1000 { warn("mid"); } else { skip; }
                buf = alloc("site@1", x);
                i = 0;
                while i < x { buf[i] = trunc8(i); i = i + 1; }
                y = helper(x);
                free(buf);
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = program(&p1);
        let p2 = parse(&printed).unwrap();
        // Compare structure through a second print: printing is canonical.
        assert_eq!(printed, program(&p2));
    }

    #[test]
    fn expressions_are_fully_parenthesised() {
        let p = parse("fn main() { x = 1 + 2 * 3; }").unwrap();
        let s = &p.proc(p.entry()).body.stmts()[0];
        let text = stmt(s, &p);
        assert_eq!(text.trim(), "x = (1u32 + (2u32 * 3u32));");
    }

    #[test]
    fn escape_in_messages() {
        let p = parse("fn main() { error(\"a\\\"b\"); }").unwrap();
        let text = program(&p);
        assert!(text.contains("error(\"a\\\"b\");"));
    }
}
