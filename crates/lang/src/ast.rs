//! Abstract syntax of the core imperative language (paper Figure 3).
//!
//! The language has width-typed arithmetic expressions ([`Aexp`]), boolean
//! expressions ([`Bexp`]), and statements ([`Stmt`]) covering assignment,
//! dynamic memory allocation, memory read/write, conditionals, loops and
//! sequential composition. Three pragmatic extensions (documented in
//! DESIGN.md) make realistic benchmark applications expressible:
//!
//! * procedures with by-value parameters and a return value,
//! * `error`/`warn`/`abort` statements modelling `png_error`-style input
//!   rejection, warnings, and `SIGABRT`,
//! * an `in[e]` expression reading one byte of the program input (the taint
//!   source of §4.1) and a `crc32_ok` condition modelling checksum
//!   verification that the Peach-style input reconstructor always repairs.
//!
//! Every statement carries a unique [`Label`], and every `if`/`while`
//! additionally identifies a conditional-branch site; the branch-condition
//! sequence φ of §3.2 records these labels.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::bv::Bv;

/// A unique statement label ℓ ∈ `Label` (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An interned variable name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A procedure identifier, indexing into [`Program::procs`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Interner mapping variable names to [`Symbol`]s and back.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("too many symbols"));
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up the name of a previously interned symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was not produced by this interner.
    #[must_use]
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Looks up a symbol by name without interning.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Number of interned symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbols are interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Unary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation `-a`.
    Neg,
    /// Bitwise complement `~a`.
    Not,
}

/// Binary arithmetic operators. All operate on equal-width bitvectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition `a + b`.
    Add,
    /// Wrapping subtraction `a - b`.
    Sub,
    /// Wrapping multiplication `a * b`.
    Mul,
    /// Unsigned division `a / b` (SMT-LIB semantics on zero divisor).
    UDiv,
    /// Unsigned remainder `a % b` (SMT-LIB semantics on zero divisor).
    URem,
    /// Bitwise and `a & b`.
    And,
    /// Bitwise or `a | b`.
    Or,
    /// Bitwise exclusive or `a ^ b`.
    Xor,
    /// Left shift `a << b`.
    Shl,
    /// Logical right shift `a >> b`.
    LShr,
    /// Arithmetic right shift `ashr(a, b)`.
    AShr,
}

/// Width conversions. The paper's expression language calls zero extension
/// `ToSize` and truncation `Shrink`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Zero extension to a wider width.
    Zext,
    /// Sign extension to a wider width.
    Sext,
    /// Truncation to a narrower width (may be non-value-preserving).
    Trunc,
}

/// Comparison operators, the atoms of [`Bexp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// Unsigned `a < b`
    Ult,
    /// Unsigned `a <= b`
    Ule,
    /// Unsigned `a > b`
    Ugt,
    /// Unsigned `a >= b`
    Uge,
    /// Signed `a <s b`
    Slt,
    /// Signed `a <=s b`
    Sle,
    /// Signed `a >s b`
    Sgt,
    /// Signed `a >=s b`
    Sge,
}

impl CmpOp {
    /// The comparison with operands swapped (e.g. `<` becomes `>`).
    #[must_use]
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Ult => CmpOp::Ugt,
            CmpOp::Ule => CmpOp::Uge,
            CmpOp::Ugt => CmpOp::Ult,
            CmpOp::Uge => CmpOp::Ule,
            CmpOp::Slt => CmpOp::Sgt,
            CmpOp::Sle => CmpOp::Sge,
            CmpOp::Sgt => CmpOp::Slt,
            CmpOp::Sge => CmpOp::Sle,
        }
    }

    /// The logical negation of the comparison (e.g. `<` becomes `>=`).
    #[must_use]
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Ult => CmpOp::Uge,
            CmpOp::Ule => CmpOp::Ugt,
            CmpOp::Ugt => CmpOp::Ule,
            CmpOp::Uge => CmpOp::Ult,
            CmpOp::Slt => CmpOp::Sge,
            CmpOp::Sle => CmpOp::Sgt,
            CmpOp::Sgt => CmpOp::Sle,
            CmpOp::Sge => CmpOp::Slt,
        }
    }

    /// Evaluates the comparison on concrete bitvectors.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    #[must_use]
    pub fn eval(self, a: Bv, b: Bv) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ult => a.ult(b),
            CmpOp::Ule => a.ule(b),
            CmpOp::Ugt => b.ult(a),
            CmpOp::Uge => b.ule(a),
            CmpOp::Slt => a.slt(b),
            CmpOp::Sle => a.sle(b),
            CmpOp::Sgt => b.slt(a),
            CmpOp::Sge => b.sle(a),
        }
    }
}

/// Arithmetic expressions `A ∈ Aexp` (Figure 3, extended with width casts
/// and input reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aexp {
    /// Integer literal `n`.
    Const(Bv),
    /// Variable reference `x`.
    Var(Symbol),
    /// One byte of program input: `in[e]` (8-bit result). This is the
    /// language's only taint source.
    InByte(Box<Aexp>),
    /// Total input length in bytes (32-bit, untainted).
    InLen,
    /// Unary operation.
    Un(UnOp, Box<Aexp>),
    /// Binary operation.
    Bin(BinOp, Box<Aexp>, Box<Aexp>),
    /// Width conversion to the given width.
    Cast(CastKind, u8, Box<Aexp>),
}

impl Aexp {
    /// Convenience constructor for a constant.
    #[must_use]
    pub fn constant(bv: Bv) -> Self {
        Aexp::Const(bv)
    }

    /// Convenience constructor for a binary operation.
    #[must_use]
    pub fn bin(op: BinOp, lhs: Aexp, rhs: Aexp) -> Self {
        Aexp::Bin(op, Box::new(lhs), Box::new(rhs))
    }
}

/// Boolean expressions `B ∈ Bexp` (Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bexp {
    /// `true` or `false`.
    Const(bool),
    /// Comparison `A1 cmp A2`.
    Cmp(CmpOp, Box<Aexp>, Box<Aexp>),
    /// Logical negation `!B`.
    Not(Box<Bexp>),
    /// Conjunction `B1 && B2` (short-circuit).
    And(Box<Bexp>, Box<Bexp>),
    /// Disjunction `B1 || B2` (short-circuit).
    Or(Box<Bexp>, Box<Bexp>),
    /// Checksum verification intrinsic: true iff the CRC-32 of input bytes
    /// `[start, start+len)` equals the big-endian u32 stored in the input
    /// at `stored`. Concretely verified but *untainted* (see DESIGN.md §3:
    /// the Peach-style reconstructor always repairs checksums, so this
    /// branch never flips between seed and candidate inputs).
    Crc32Ok {
        /// Offset of the checksummed region in the input.
        start: Box<Aexp>,
        /// Length of the checksummed region.
        len: Box<Aexp>,
        /// Offset of the stored big-endian CRC-32 in the input.
        stored: Box<Aexp>,
    },
}

impl Bexp {
    /// Convenience constructor for a comparison.
    #[must_use]
    pub fn cmp(op: CmpOp, lhs: Aexp, rhs: Aexp) -> Self {
        Bexp::Cmp(op, Box::new(lhs), Box::new(rhs))
    }
}

/// Statements `C ∈ Stmt` (Figure 3, extended as described in the module
/// docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `skip;`
    Skip(Label),
    /// `x = A;`
    Assign(Label, Symbol, Aexp),
    /// `x = f(A*);` or `f(A*);` — call with optional result binding.
    Call {
        /// Statement label.
        label: Label,
        /// Variable receiving the return value, if any.
        dst: Option<Symbol>,
        /// Callee.
        proc: ProcId,
        /// Actual arguments, passed by value.
        args: Vec<Aexp>,
    },
    /// `x = alloc("site", A);` — dynamic allocation at a named target site.
    /// The size argument must evaluate to a 32-bit value (the x86-32
    /// `malloc` argument width of the paper's benchmarks).
    Alloc {
        /// Statement label (this is the target-site label ℓ of §3.3).
        label: Label,
        /// Human-readable site name, e.g. `png.c@203`.
        site: Arc<str>,
        /// Variable receiving the block address (null on failure when
        /// `abort_on_fail` is false).
        dst: Symbol,
        /// Allocation size in bytes.
        size: Aexp,
        /// If true, allocation failure aborts the program (`SIGABRT`),
        /// modelling `g_malloc`/`xmalloc`-style wrappers.
        abort_on_fail: bool,
    },
    /// `free(x);`
    Free(Label, Symbol),
    /// `x = y[A];` — load one byte from the block addressed by `y`.
    Load {
        /// Statement label.
        label: Label,
        /// Destination variable (receives an 8-bit value).
        dst: Symbol,
        /// Pointer variable.
        base: Symbol,
        /// Byte offset into the block.
        offset: Aexp,
    },
    /// `x[A] = e;` — store one byte (8-bit value) into the block.
    Store {
        /// Statement label.
        label: Label,
        /// Pointer variable.
        base: Symbol,
        /// Byte offset into the block.
        offset: Aexp,
        /// 8-bit value to store.
        value: Aexp,
    },
    /// `if B { S1 } else { S2 }`
    If {
        /// Conditional-branch label (recorded in φ).
        label: Label,
        /// Branch condition.
        cond: Bexp,
        /// Taken branch.
        then_blk: Block,
        /// Fall-through branch.
        else_blk: Block,
    },
    /// `while B { S }`
    While {
        /// Conditional-branch label (recorded in φ once per iteration test).
        label: Label,
        /// Loop condition.
        cond: Bexp,
        /// Loop body.
        body: Block,
    },
    /// `error("msg");` — reject the input and stop (e.g. `png_error`).
    Error(Label, String),
    /// `warn("msg");` — record a warning and continue (e.g. `png_warning`).
    Warn(Label, String),
    /// `abort("msg");` — terminate abnormally (`SIGABRT`).
    Abort(Label, String),
    /// `return A?;`
    Return(Label, Option<Aexp>),
}

impl Stmt {
    /// The unique label of this statement.
    #[must_use]
    pub fn label(&self) -> Label {
        match self {
            Stmt::Skip(l)
            | Stmt::Assign(l, _, _)
            | Stmt::Free(l, _)
            | Stmt::Error(l, _)
            | Stmt::Warn(l, _)
            | Stmt::Abort(l, _)
            | Stmt::Return(l, _) => *l,
            Stmt::Call { label, .. }
            | Stmt::Alloc { label, .. }
            | Stmt::Load { label, .. }
            | Stmt::Store { label, .. }
            | Stmt::If { label, .. }
            | Stmt::While { label, .. } => *label,
        }
    }
}

/// A statement sequence `S = C1; …; Cn` (Figure 3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    /// Creates an empty block.
    #[must_use]
    pub fn new() -> Self {
        Block(Vec::new())
    }

    /// Statements in the block.
    #[must_use]
    pub fn stmts(&self) -> &[Stmt] {
        &self.0
    }
}

/// A procedure definition.
#[derive(Debug, Clone)]
pub struct Proc {
    /// Procedure name.
    pub name: String,
    /// Formal parameters, bound by value at call time.
    pub params: Vec<Symbol>,
    /// Procedure body.
    pub body: Block,
}

/// A complete program: a set of procedures with a `main` entry point.
#[derive(Debug, Clone)]
pub struct Program {
    procs: Vec<Proc>,
    interner: Interner,
    entry: ProcId,
    n_labels: u32,
}

impl Program {
    /// Assembles a program from parts. Prefer [`crate::parse::parse`] for
    /// textual sources.
    ///
    /// # Errors
    ///
    /// Returns an error if no procedure is named `main`.
    pub fn from_parts(
        procs: Vec<Proc>,
        interner: Interner,
        n_labels: u32,
    ) -> Result<Self, NoMainError> {
        let entry = procs
            .iter()
            .position(|p| p.name == "main")
            .map(|i| ProcId(i as u32))
            .ok_or(NoMainError)?;
        Ok(Program {
            procs,
            interner,
            entry,
            n_labels,
        })
    }

    /// All procedures, indexable by [`ProcId`].
    #[must_use]
    pub fn procs(&self) -> &[Proc] {
        &self.procs
    }

    /// The procedure with the given id.
    #[must_use]
    pub fn proc(&self, id: ProcId) -> &Proc {
        &self.procs[id.0 as usize]
    }

    /// Looks up a procedure by name.
    #[must_use]
    pub fn proc_by_name(&self, name: &str) -> Option<(ProcId, &Proc)> {
        self.procs
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
            .map(|(i, p)| (ProcId(i as u32), p))
    }

    /// The entry procedure (`main`).
    #[must_use]
    pub fn entry(&self) -> ProcId {
        self.entry
    }

    /// The symbol interner for variable names.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Total number of labels allocated; labels are `0..n_labels`.
    #[must_use]
    pub fn n_labels(&self) -> u32 {
        self.n_labels
    }

    /// Iterates over every allocation site in the program, in label order.
    pub fn alloc_sites(&self) -> Vec<(Label, Arc<str>)> {
        let mut out = Vec::new();
        for p in &self.procs {
            collect_sites(&p.body, &mut out);
        }
        out.sort_by_key(|(l, _)| *l);
        out
    }
}

fn collect_sites(block: &Block, out: &mut Vec<(Label, Arc<str>)>) {
    for stmt in block.stmts() {
        match stmt {
            Stmt::Alloc { label, site, .. } => out.push((*label, site.clone())),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_sites(then_blk, out);
                collect_sites(else_blk, out);
            }
            Stmt::While { body, .. } => collect_sites(body, out),
            _ => {}
        }
    }
}

/// Error returned when a program lacks a `main` procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoMainError;

impl fmt::Display for NoMainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program has no `main` procedure")
    }
}

impl std::error::Error for NoMainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrip() {
        let mut i = Interner::new();
        let a = i.intern("width");
        let b = i.intern("height");
        let a2 = i.intern("width");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.name(a), "width");
        assert_eq!(i.name(b), "height");
        assert_eq!(i.get("width"), Some(a));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn cmp_negation_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ult,
            CmpOp::Ule,
            CmpOp::Ugt,
            CmpOp::Uge,
            CmpOp::Slt,
            CmpOp::Sle,
            CmpOp::Sgt,
            CmpOp::Sge,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn cmp_eval_matches_negation() {
        let a = Bv::new(8, 5);
        let b = Bv::new(8, 9);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ult,
            CmpOp::Ule,
            CmpOp::Ugt,
            CmpOp::Uge,
            CmpOp::Slt,
            CmpOp::Sle,
            CmpOp::Sgt,
            CmpOp::Sge,
        ] {
            assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
            assert_eq!(op.eval(a, b), op.swapped().eval(b, a));
        }
    }

    #[test]
    fn program_requires_main() {
        let err = Program::from_parts(vec![], Interner::new(), 0);
        assert!(err.is_err());
        assert_eq!(
            err.unwrap_err().to_string(),
            "program has no `main` procedure"
        );
    }

    #[test]
    fn alloc_sites_are_collected_in_label_order() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let body = Block(vec![
            Stmt::Alloc {
                label: Label(3),
                site: "b@2".into(),
                dst: x,
                size: Aexp::Const(Bv::u32(4)),
                abort_on_fail: false,
            },
            Stmt::If {
                label: Label(1),
                cond: Bexp::Const(true),
                then_blk: Block(vec![Stmt::Alloc {
                    label: Label(0),
                    site: "a@1".into(),
                    dst: x,
                    size: Aexp::Const(Bv::u32(4)),
                    abort_on_fail: true,
                }]),
                else_blk: Block::new(),
            },
        ]);
        let prog = Program::from_parts(
            vec![Proc {
                name: "main".into(),
                params: vec![],
                body,
            }],
            i,
            4,
        )
        .unwrap();
        let sites = prog.alloc_sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(&*sites[0].1, "a@1");
        assert_eq!(&*sites[1].1, "b@2");
    }
}
