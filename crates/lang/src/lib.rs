//! # diode-lang — the core imperative language of the DIODE paper
//!
//! This crate implements the core language of §3.1 (Figure 3) of
//! *"Targeted Automatic Integer Overflow Discovery Using Goal-Directed
//! Conditional Branch Enforcement"* (ASPLOS 2015): width-typed bitvector
//! values ([`Bv`]), arithmetic and boolean expressions ([`Aexp`], [`Bexp`]),
//! and labelled statements ([`Stmt`]) with dynamic memory allocation at
//! *named target sites*.
//!
//! Programs are usually written in the textual concrete syntax and parsed
//! with [`parse()`](parse()); see the [`parse`](mod@parse) module for the grammar. The
//! [`pretty`] module renders programs back to source.
//!
//! The interpreter that gives this language its concrete *and symbolic*
//! small-step semantics (Figures 4–6) lives in the `diode-interp` crate.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = diode_lang::parse(r#"
//!     fn main() {
//!         // read a 16-bit big-endian length field from the input
//!         n = zext32(in[0]) << 8 | zext32(in[1]);
//!         buf = alloc("demo.c@4", n * 4);   // target site
//!         i = 0;
//!         while i < n { buf[i] = 0u8; i = i + 1; }
//!     }
//! "#)?;
//! assert_eq!(program.alloc_sites().len(), 1);
//! assert_eq!(&*program.alloc_sites()[0].1, "demo.c@4");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ast;
pub mod build;
mod bv;
pub mod checksum;
pub mod parse;
pub mod pretty;

pub use ast::{
    Aexp, Bexp, BinOp, Block, CastKind, CmpOp, Interner, Label, NoMainError, Proc, ProcId, Program,
    Stmt, Symbol, UnOp,
};
pub use bv::{Bv, MAX_WIDTH};
pub use parse::{parse, ParseError};
