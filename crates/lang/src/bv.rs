//! Fixed-width bitvector values.
//!
//! Every integer value manipulated by the core language (and by the
//! symbolic layer and solver above it) is a [`Bv`]: a bitvector with an
//! explicit width between 1 and 64 bits, wrapping at its width exactly like
//! machine integers. This mirrors the paper's requirement that "the target
//! constraint faithfully represents integer arithmetic as implemented in
//! the hardware" (§2).
//!
//! Each arithmetic operation also reports whether the *ideal* (arbitrary
//! precision) result fits in the operand width. DIODE's `overflow(B)`
//! transformation (§4.3) is defined in terms of exactly this per-operation
//! overflow predicate, including for narrowing conversions (`Shrink` in the
//! paper's expression language).

use std::fmt;

/// Maximum supported bitvector width.
pub const MAX_WIDTH: u8 = 64;

/// A fixed-width bitvector value.
///
/// The value is stored in a `u128` so that widened (overflow-detecting)
/// arithmetic never loses bits even at width 64. The stored bits are always
/// masked to the width: `bits < 2^width`.
///
/// # Examples
///
/// ```
/// use diode_lang::Bv;
///
/// let a = Bv::new(8, 200);
/// let b = Bv::new(8, 100);
/// let (sum, overflowed) = a.add(b);
/// assert_eq!(sum.value(), 44); // 300 mod 256
/// assert!(overflowed);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: u8,
    bits: u128,
}

// `add`/`sub`/`mul`/... intentionally shadow the std operator names: they
// return `(result, overflow)` pairs, which `impl Add for Bv` cannot express.
#[allow(clippy::should_implement_trait)]
impl Bv {
    /// Creates a bitvector of `width` bits holding `value` (masked to width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than [`MAX_WIDTH`].
    #[must_use]
    pub fn new(width: u8, value: u128) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bitvector width must be in 1..=64, got {width}"
        );
        Bv {
            width,
            bits: value & Self::mask(width),
        }
    }

    /// The all-zero bitvector of the given width.
    #[must_use]
    pub fn zero(width: u8) -> Self {
        Bv::new(width, 0)
    }

    /// The all-one bitvector of the given width (the maximum unsigned value).
    #[must_use]
    pub fn ones(width: u8) -> Self {
        Bv::new(width, u128::MAX)
    }

    /// One at the given width.
    #[must_use]
    pub fn one(width: u8) -> Self {
        Bv::new(width, 1)
    }

    /// A convenience constructor for 8-bit bytes.
    #[must_use]
    pub fn byte(value: u8) -> Self {
        Bv::new(8, u128::from(value))
    }

    /// A convenience constructor for 32-bit words (the x86-32 `size_t` of
    /// the paper's allocation sites).
    #[must_use]
    pub fn u32(value: u32) -> Self {
        Bv::new(32, u128::from(value))
    }

    /// The mask with the low `width` bits set.
    #[must_use]
    pub fn mask(width: u8) -> u128 {
        if width as u32 >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// The width in bits.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The unsigned value.
    #[must_use]
    pub fn value(&self) -> u128 {
        self.bits
    }

    /// The value reinterpreted as a two's-complement signed integer.
    #[must_use]
    pub fn as_signed(&self) -> i128 {
        let sign_bit = 1u128 << (self.width - 1);
        if self.bits & sign_bit != 0 {
            (self.bits as i128) - (1i128 << self.width)
        } else {
            self.bits as i128
        }
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Wrapping addition; the flag reports unsigned overflow.
    #[must_use]
    pub fn add(self, rhs: Bv) -> (Bv, bool) {
        self.check_width(rhs);
        let wide = self.bits + rhs.bits;
        (Bv::new(self.width, wide), wide > Self::mask(self.width))
    }

    /// Wrapping subtraction; the flag reports unsigned underflow.
    #[must_use]
    pub fn sub(self, rhs: Bv) -> (Bv, bool) {
        self.check_width(rhs);
        let wide = self.bits.wrapping_sub(rhs.bits);
        (Bv::new(self.width, wide), self.bits < rhs.bits)
    }

    /// Wrapping multiplication; the flag reports unsigned overflow.
    ///
    /// Safe at width 64 because operands are `< 2^64`, so the ideal product
    /// fits in the backing `u128`.
    #[must_use]
    pub fn mul(self, rhs: Bv) -> (Bv, bool) {
        self.check_width(rhs);
        let wide = self.bits * rhs.bits;
        (Bv::new(self.width, wide), wide > Self::mask(self.width))
    }

    /// Unsigned division. Division by zero yields the all-ones vector
    /// (SMT-LIB `bvudiv` semantics); it never overflows.
    #[must_use]
    pub fn udiv(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        if rhs.is_zero() {
            Bv::ones(self.width)
        } else {
            Bv::new(self.width, self.bits / rhs.bits)
        }
    }

    /// Unsigned remainder. Remainder by zero yields the dividend
    /// (SMT-LIB `bvurem` semantics).
    #[must_use]
    pub fn urem(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        if rhs.is_zero() {
            self
        } else {
            Bv::new(self.width, self.bits % rhs.bits)
        }
    }

    /// Bitwise and.
    #[must_use]
    pub fn and(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        Bv::new(self.width, self.bits & rhs.bits)
    }

    /// Bitwise or.
    #[must_use]
    pub fn or(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        Bv::new(self.width, self.bits | rhs.bits)
    }

    /// Bitwise exclusive or.
    #[must_use]
    pub fn xor(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        Bv::new(self.width, self.bits ^ rhs.bits)
    }

    /// Bitwise complement.
    #[must_use]
    pub fn not(self) -> Bv {
        Bv::new(self.width, !self.bits)
    }

    /// Two's-complement negation; the flag reports that the negation of a
    /// nonzero value wrapped (unsigned semantics, matching the paper's
    /// treatment of every arithmetic step as an unsigned machine op).
    #[must_use]
    pub fn neg(self) -> (Bv, bool) {
        (
            Bv::new(self.width, self.bits.wrapping_neg()),
            !self.is_zero(),
        )
    }

    /// Left shift; the flag reports that nonzero bits were shifted out
    /// (i.e. `(a << k) >> k != a`), or that the shift amount is at least
    /// the width while the operand is nonzero.
    #[must_use]
    pub fn shl(self, rhs: Bv) -> (Bv, bool) {
        self.check_width(rhs);
        let k = rhs.bits;
        if k >= u128::from(self.width) {
            (Bv::zero(self.width), !self.is_zero())
        } else {
            let wide = self.bits << k;
            (Bv::new(self.width, wide), wide > Self::mask(self.width))
        }
    }

    /// Logical (zero-filling) right shift. Never overflows.
    #[must_use]
    pub fn lshr(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        let k = rhs.bits;
        if k >= u128::from(self.width) {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.bits >> k)
        }
    }

    /// Arithmetic (sign-filling) right shift. Never overflows.
    #[must_use]
    pub fn ashr(self, rhs: Bv) -> Bv {
        self.check_width(rhs);
        let k = rhs.bits;
        let sign = self.bits >> (self.width - 1) & 1;
        if k >= u128::from(self.width) {
            if sign == 1 {
                Bv::ones(self.width)
            } else {
                Bv::zero(self.width)
            }
        } else {
            let shifted = self.bits >> k;
            if sign == 1 {
                let fill = Self::mask(self.width) & !(Self::mask(self.width) >> k);
                Bv::new(self.width, shifted | fill)
            } else {
                Bv::new(self.width, shifted)
            }
        }
    }

    /// Zero extension to a strictly wider width. Never overflows.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not greater than the current width or exceeds
    /// [`MAX_WIDTH`].
    #[must_use]
    pub fn zext(self, width: u8) -> Bv {
        assert!(width > self.width && width <= MAX_WIDTH, "zext must widen");
        Bv::new(width, self.bits)
    }

    /// Sign extension to a strictly wider width. Never overflows.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not greater than the current width or exceeds
    /// [`MAX_WIDTH`].
    #[must_use]
    pub fn sext(self, width: u8) -> Bv {
        assert!(width > self.width && width <= MAX_WIDTH, "sext must widen");
        Bv::new(width, self.as_signed() as u128)
    }

    /// Truncation (the paper's `Shrink`) to a strictly narrower width; the
    /// flag reports a non-value-preserving conversion (dropped bits were
    /// nonzero), which `overflow(B)` counts as an overflow of the
    /// subexpression.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not smaller than the current width or is zero.
    #[must_use]
    pub fn trunc(self, width: u8) -> (Bv, bool) {
        assert!(width < self.width && width >= 1, "trunc must narrow");
        let kept = Bv::new(width, self.bits);
        (kept, self.bits > Self::mask(width))
    }

    /// Unsigned less-than.
    #[must_use]
    pub fn ult(self, rhs: Bv) -> bool {
        self.check_width(rhs);
        self.bits < rhs.bits
    }

    /// Unsigned less-or-equal.
    #[must_use]
    pub fn ule(self, rhs: Bv) -> bool {
        self.check_width(rhs);
        self.bits <= rhs.bits
    }

    /// Signed less-than.
    #[must_use]
    pub fn slt(self, rhs: Bv) -> bool {
        self.check_width(rhs);
        self.as_signed() < rhs.as_signed()
    }

    /// Signed less-or-equal.
    #[must_use]
    pub fn sle(self, rhs: Bv) -> bool {
        self.check_width(rhs);
        self.as_signed() <= rhs.as_signed()
    }

    fn check_width(self, rhs: Bv) {
        assert_eq!(
            self.width, rhs.width,
            "bitvector width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u{}", self.bits, self.width)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u{}", self.bits, self.width)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}u{}", self.bits, self.width)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#b}u{}", self.bits, self.width)
    }
}

impl From<u8> for Bv {
    fn from(value: u8) -> Self {
        Bv::byte(value)
    }
}

impl From<u32> for Bv {
    fn from(value: u32) -> Self {
        Bv::u32(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_to_width() {
        assert_eq!(Bv::new(8, 0x1ff).value(), 0xff);
        assert_eq!(Bv::new(1, 3).value(), 1);
        assert_eq!(Bv::new(64, u128::MAX).value(), u128::from(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_rejected() {
        let _ = Bv::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn oversize_width_rejected() {
        let _ = Bv::new(65, 1);
    }

    #[test]
    fn add_detects_overflow() {
        let (v, o) = Bv::new(32, 0xffff_ffff).add(Bv::new(32, 1));
        assert_eq!(v.value(), 0);
        assert!(o);
        let (v, o) = Bv::new(32, 10).add(Bv::new(32, 20));
        assert_eq!(v.value(), 30);
        assert!(!o);
    }

    #[test]
    fn add_overflow_at_width_64() {
        let (v, o) = Bv::new(64, u64::MAX as u128).add(Bv::new(64, 5));
        assert_eq!(v.value(), 4);
        assert!(o);
    }

    #[test]
    fn sub_detects_underflow() {
        let (v, o) = Bv::new(8, 3).sub(Bv::new(8, 5));
        assert_eq!(v.value(), 254);
        assert!(o);
        let (v, o) = Bv::new(8, 5).sub(Bv::new(8, 5));
        assert_eq!(v.value(), 0);
        assert!(!o);
    }

    #[test]
    fn mul_detects_overflow() {
        let (v, o) = Bv::new(16, 300).mul(Bv::new(16, 300));
        assert_eq!(v.value(), 90000 & 0xffff);
        assert!(o);
        let (v, o) = Bv::new(64, 1 << 32).mul(Bv::new(64, 1 << 32));
        assert_eq!(v.value(), 0);
        assert!(o);
    }

    #[test]
    fn dillo_example_target_mul_overflows() {
        // §2: width=689853, height=915210, bit_depth=4:
        // rowbytes = width*4/8 = 344926 (via PNG_ROWBYTES with pixel_depth 4... the
        // simplified target is rowbytes * height); 344926*915210 > 2^32.
        let rowbytes = Bv::u32(689_853 * 4 / 8);
        let height = Bv::u32(915_210);
        let (_, o) = rowbytes.mul(height);
        assert!(o);
    }

    #[test]
    fn division_by_zero_follows_smtlib() {
        assert_eq!(Bv::new(8, 7).udiv(Bv::new(8, 0)), Bv::ones(8));
        assert_eq!(Bv::new(8, 7).urem(Bv::new(8, 0)), Bv::new(8, 7));
    }

    #[test]
    fn division_normal_case() {
        assert_eq!(Bv::new(32, 100).udiv(Bv::new(32, 7)).value(), 14);
        assert_eq!(Bv::new(32, 100).urem(Bv::new(32, 7)).value(), 2);
    }

    #[test]
    fn bitwise_ops() {
        let a = Bv::new(8, 0b1100);
        let b = Bv::new(8, 0b1010);
        assert_eq!(a.and(b).value(), 0b1000);
        assert_eq!(a.or(b).value(), 0b1110);
        assert_eq!(a.xor(b).value(), 0b0110);
        assert_eq!(a.not().value(), 0xf3);
    }

    #[test]
    fn neg_overflow_flag() {
        let (v, o) = Bv::new(8, 1).neg();
        assert_eq!(v.value(), 255);
        assert!(o);
        let (v, o) = Bv::new(8, 0).neg();
        assert_eq!(v.value(), 0);
        assert!(!o);
    }

    #[test]
    fn shl_detects_lost_bits() {
        let (v, o) = Bv::new(8, 0x81).shl(Bv::new(8, 1));
        assert_eq!(v.value(), 0x02);
        assert!(o);
        let (v, o) = Bv::new(8, 0x01).shl(Bv::new(8, 7));
        assert_eq!(v.value(), 0x80);
        assert!(!o);
        // Shift amount >= width.
        let (v, o) = Bv::new(8, 1).shl(Bv::new(8, 8));
        assert_eq!(v.value(), 0);
        assert!(o);
        let (_, o) = Bv::new(8, 0).shl(Bv::new(8, 200));
        assert!(!o);
    }

    #[test]
    fn lshr_fills_zero() {
        assert_eq!(Bv::new(8, 0x80).lshr(Bv::new(8, 7)).value(), 1);
        assert_eq!(Bv::new(8, 0x80).lshr(Bv::new(8, 9)).value(), 0);
    }

    #[test]
    fn ashr_fills_sign() {
        assert_eq!(Bv::new(8, 0x80).ashr(Bv::new(8, 1)).value(), 0xc0);
        assert_eq!(Bv::new(8, 0x40).ashr(Bv::new(8, 1)).value(), 0x20);
        assert_eq!(Bv::new(8, 0x80).ashr(Bv::new(8, 100)).value(), 0xff);
        assert_eq!(Bv::new(8, 0x7f).ashr(Bv::new(8, 100)).value(), 0);
    }

    #[test]
    fn extensions() {
        assert_eq!(Bv::new(8, 0xff).zext(16).value(), 0x00ff);
        assert_eq!(Bv::new(8, 0xff).sext(16).value(), 0xffff);
        assert_eq!(Bv::new(8, 0x7f).sext(16).value(), 0x007f);
    }

    #[test]
    fn trunc_reports_value_loss() {
        let (v, lost) = Bv::new(32, 0x1_00).trunc(8);
        assert_eq!(v.value(), 0);
        assert!(lost);
        let (v, lost) = Bv::new(32, 0xfe).trunc(8);
        assert_eq!(v.value(), 0xfe);
        assert!(!lost);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Bv::new(8, 0xff).as_signed(), -1);
        assert_eq!(Bv::new(8, 0x80).as_signed(), -128);
        assert_eq!(Bv::new(8, 0x7f).as_signed(), 127);
        assert_eq!(Bv::new(32, 0xffff_ffff).as_signed(), -1);
    }

    #[test]
    fn comparisons() {
        let a = Bv::new(8, 0xff); // unsigned 255, signed -1
        let b = Bv::new(8, 1);
        assert!(b.ult(a));
        assert!(a.slt(b));
        assert!(a.sle(a));
        assert!(a.ule(a));
    }

    #[test]
    fn display_formats() {
        let v = Bv::new(16, 0xbeef);
        assert_eq!(v.to_string(), "48879u16");
        assert_eq!(format!("{v:x}"), "0xbeefu16");
        assert_eq!(format!("{v:b}"), "0b1011111011101111u16");
    }
}
