//! Text front-end for the core language.
//!
//! Benchmark applications (crate `diode-apps`) are written as readable
//! sources in this concrete syntax, closely mirroring the C excerpts of the
//! paper's Figure 2. The grammar is a direct rendering of Figure 3 plus the
//! extensions documented in the crate-level AST docs:
//!
//! ```text
//! fn png_get_uint_31(off) {
//!     v = zext32(in[off]) << 24u32 | zext32(in[off + 1u32]) << 16u32
//!       | zext32(in[off + 2u32]) << 8u32 | zext32(in[off + 3u32]);
//!     if v > 0x7fffffffu32 { error("PNG unsigned integer out of range"); }
//!     return v;
//! }
//! ```
//!
//! Notable syntax:
//! * integer literals default to 32 bits; a `u<N>` suffix selects any width
//!   in 1..=64 (`255u8`, `1u1`, `0xffffu16`),
//! * `in[e]` reads one input byte, `inlen` is the input length,
//! * `zextN(e)`, `sextN(e)`, `truncN(e)` convert widths; `ashr(a, b)` is
//!   the arithmetic shift; `slt/sle/sgt/sge(a, b)` are signed comparisons,
//! * `x = alloc("site", e);` allocates at a named target site
//!   (`alloc_abort` aborts instead of returning null on failure),
//! * `crc32_ok(start, len, stored)` is the checksum-verification condition.

use std::fmt;

use crate::ast::{
    Aexp, Bexp, BinOp, Block, CastKind, CmpOp, Interner, Label, Proc, ProcId, Program, Stmt, UnOp,
};
use crate::bv::Bv;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete program from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem, an unknown
/// procedure reference, or a missing `main`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = diode_lang::parse(
///     "fn main() { x = 1u32 + 2u32; buf = alloc(\"demo@1\", x); }",
/// )?;
/// assert_eq!(prog.alloc_sites().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(&tokens);
    parser.program()
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u128, Option<u8>),
    Str(String),
    KwFn,
    KwSkip,
    KwFree,
    KwError,
    KwWarn,
    KwAbort,
    KwReturn,
    KwIf,
    KwElse,
    KwWhile,
    KwTrue,
    KwFalse,
    KwIn,
    KwInLen,
    KwAlloc,
    KwAllocAbort,
    KwCrc32Ok,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }
    macro_rules! adv {
        ($n:expr) => {{
            let n = $n;
            i += n;
            col += n as u32;
        }};
    }
    while i < bytes.len() {
        let (l, c) = (line, col);
        let ch = bytes[i];
        match ch {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => adv!(1),
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None | Some(b'\n') => {
                            return Err(ParseError {
                                line: l,
                                col: c,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(b'"') => break,
                        Some(b'\\') => {
                            let esc = bytes.get(j + 1).copied().unwrap_or(b'?');
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'0' => '\0',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(ParseError {
                                        line: l,
                                        col: c,
                                        msg: format!("unknown escape \\{}", other as char),
                                    })
                                }
                            });
                            j += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                let n = j + 1 - i;
                adv!(n);
                push!(Tok::Str(s), l, c);
            }
            b'0'..=b'9' => {
                let start = i;
                let (value, digits_end) = if bytes[i] == b'0'
                    && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X'))
                {
                    let mut j = i + 2;
                    while j < bytes.len() && (bytes[j].is_ascii_hexdigit() || bytes[j] == b'_') {
                        j += 1;
                    }
                    let text: String = src[start + 2..j].chars().filter(|&ch| ch != '_').collect();
                    let v = u128::from_str_radix(&text, 16).map_err(|_| ParseError {
                        line: l,
                        col: c,
                        msg: format!("invalid hex literal `{}`", &src[start..j]),
                    })?;
                    (v, j)
                } else {
                    let mut j = i;
                    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                        j += 1;
                    }
                    let text: String = src[start..j].chars().filter(|&ch| ch != '_').collect();
                    let v = text.parse::<u128>().map_err(|_| ParseError {
                        line: l,
                        col: c,
                        msg: format!("invalid integer literal `{}`", &src[start..j]),
                    })?;
                    (v, j)
                };
                // Optional width suffix: u<digits>.
                let mut j = digits_end;
                let mut width = None;
                if bytes.get(j) == Some(&b'u') {
                    let mut k = j + 1;
                    while k < bytes.len() && bytes[k].is_ascii_digit() {
                        k += 1;
                    }
                    if k > j + 1 {
                        let w: u32 = src[j + 1..k].parse().unwrap_or(0);
                        if !(1..=64).contains(&w) {
                            return Err(ParseError {
                                line: l,
                                col: c,
                                msg: format!("width suffix u{w} out of range 1..=64"),
                            });
                        }
                        width = Some(w as u8);
                        j = k;
                    }
                }
                let n = j - i;
                adv!(n);
                push!(Tok::Num(value, width), l, c);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &src[start..j];
                let tok = match word {
                    "fn" => Tok::KwFn,
                    "skip" => Tok::KwSkip,
                    "free" => Tok::KwFree,
                    "error" => Tok::KwError,
                    "warn" => Tok::KwWarn,
                    "abort" => Tok::KwAbort,
                    "return" => Tok::KwReturn,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "true" => Tok::KwTrue,
                    "false" => Tok::KwFalse,
                    "in" => Tok::KwIn,
                    "inlen" => Tok::KwInLen,
                    "alloc" => Tok::KwAlloc,
                    "alloc_abort" => Tok::KwAllocAbort,
                    "crc32_ok" => Tok::KwCrc32Ok,
                    _ => Tok::Ident(word.to_owned()),
                };
                let n = j - i;
                adv!(n);
                push!(tok, l, c);
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, n) = match two {
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => match ch {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b',' => (Tok::Comma, 1),
                        b';' => (Tok::Semi, 1),
                        b'=' => (Tok::Assign, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'&' => (Tok::Amp, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'^' => (Tok::Caret, 1),
                        b'~' => (Tok::Tilde, 1),
                        b'!' => (Tok::Bang, 1),
                        other => {
                            return Err(ParseError {
                                line: l,
                                col: c,
                                msg: format!("unexpected character `{}`", other as char),
                            })
                        }
                    },
                };
                adv!(n);
                push!(tok, l, c);
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'t> {
    toks: &'t [Spanned],
    pos: usize,
    interner: Interner,
    next_label: u32,
    proc_names: Vec<String>,
}

impl<'t> Parser<'t> {
    fn new(toks: &'t [Spanned]) -> Self {
        // Pre-scan for procedure names so forward calls resolve.
        let mut proc_names = Vec::new();
        for w in toks.windows(2) {
            if w[0].tok == Tok::KwFn {
                if let Tok::Ident(name) = &w[1].tok {
                    proc_names.push(name.clone());
                }
            }
        }
        Parser {
            toks,
            pos: 0,
            interner: Interner::new(),
            next_label: 0,
            proc_names,
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.toks[self.pos];
        (s.line, s.col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            line,
            col,
            msg: msg.into(),
        })
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut procs = Vec::new();
        while *self.peek() != Tok::Eof {
            procs.push(self.proc()?);
        }
        let n_labels = self.next_label;
        Program::from_parts(procs, std::mem::take(&mut self.interner), n_labels).map_err(|e| {
            ParseError {
                line: 1,
                col: 1,
                msg: e.to_string(),
            }
        })
    }

    fn proc(&mut self) -> Result<Proc, ParseError> {
        self.expect(&Tok::KwFn, "`fn`")?;
        let name = self.ident("procedure name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let p = self.ident("parameter name")?;
                params.push(self.interner.intern(&p));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(Proc { name, params, body })
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.bump(); // consume `}`
        Ok(Block(stmts))
    }

    fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.proc_names
            .iter()
            .position(|n| n == name)
            .map(|i| ProcId(i as u32))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::KwSkip => {
                self.bump();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Skip(self.fresh_label()))
            }
            Tok::KwFree => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let name = self.ident("pointer variable")?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Free(self.fresh_label(), self.interner.intern(&name)))
            }
            Tok::KwError | Tok::KwWarn | Tok::KwAbort => {
                let kind = self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let msg = match self.bump() {
                    Tok::Str(s) => s,
                    other => return self.err(format!("expected string, found {other:?}")),
                };
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                let label = self.fresh_label();
                Ok(match kind {
                    Tok::KwError => Stmt::Error(label, msg),
                    Tok::KwWarn => Stmt::Warn(label, msg),
                    _ => Stmt::Abort(label, msg),
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.aexp()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Return(self.fresh_label(), value))
            }
            Tok::KwIf => {
                self.bump();
                let label = self.fresh_label();
                let cond = self.bexp()?;
                let then_blk = self.block()?;
                let else_blk = if *self.peek() == Tok::KwElse {
                    self.bump();
                    if *self.peek() == Tok::KwIf {
                        Block(vec![self.stmt()?])
                    } else {
                        self.block()?
                    }
                } else {
                    Block::new()
                };
                Ok(Stmt::If {
                    label,
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::KwWhile => {
                self.bump();
                let label = self.fresh_label();
                let cond = self.bexp()?;
                let body = self.block()?;
                Ok(Stmt::While { label, cond, body })
            }
            Tok::Ident(name) => {
                // Call without destination: `f(args);`
                if *self.peek2() == Tok::LParen {
                    if let Some(proc) = self.proc_id(&name) {
                        self.bump();
                        let args = self.call_args()?;
                        self.expect(&Tok::Semi, "`;`")?;
                        return Ok(Stmt::Call {
                            label: self.fresh_label(),
                            dst: None,
                            proc,
                            args,
                        });
                    }
                    return self.err(format!("unknown procedure `{name}`"));
                }
                // Store: `p[e] = e;`
                if *self.peek2() == Tok::LBracket {
                    self.bump();
                    self.bump();
                    let offset = self.aexp()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    self.expect(&Tok::Assign, "`=`")?;
                    let value = self.aexp()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    return Ok(Stmt::Store {
                        label: self.fresh_label(),
                        base: self.interner.intern(&name),
                        offset,
                        value,
                    });
                }
                // Assignment family: `x = …;`
                self.bump();
                self.expect(&Tok::Assign, "`=`")?;
                let dst = self.interner.intern(&name);
                match self.peek().clone() {
                    Tok::KwAlloc | Tok::KwAllocAbort => {
                        let abort_on_fail = *self.peek() == Tok::KwAllocAbort;
                        self.bump();
                        self.expect(&Tok::LParen, "`(`")?;
                        let site = match self.bump() {
                            Tok::Str(s) => s,
                            other => {
                                return self
                                    .err(format!("expected site name string, found {other:?}"))
                            }
                        };
                        self.expect(&Tok::Comma, "`,`")?;
                        let size = self.aexp()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        self.expect(&Tok::Semi, "`;`")?;
                        Ok(Stmt::Alloc {
                            label: self.fresh_label(),
                            site: site.into(),
                            dst,
                            size,
                            abort_on_fail,
                        })
                    }
                    Tok::Ident(rhs_name) if *self.peek2() == Tok::LParen => {
                        if let Some(proc) = self.proc_id(&rhs_name) {
                            self.bump();
                            let args = self.call_args()?;
                            self.expect(&Tok::Semi, "`;`")?;
                            Ok(Stmt::Call {
                                label: self.fresh_label(),
                                dst: Some(dst),
                                proc,
                                args,
                            })
                        } else {
                            // Builtin expression such as zext32(...).
                            let rhs = self.aexp()?;
                            self.expect(&Tok::Semi, "`;`")?;
                            Ok(Stmt::Assign(self.fresh_label(), dst, rhs))
                        }
                    }
                    Tok::Ident(base_name) if *self.peek2() == Tok::LBracket => {
                        self.bump();
                        self.bump();
                        let offset = self.aexp()?;
                        self.expect(&Tok::RBracket, "`]`")?;
                        self.expect(&Tok::Semi, "`;`")?;
                        Ok(Stmt::Load {
                            label: self.fresh_label(),
                            dst,
                            base: self.interner.intern(&base_name),
                            offset,
                        })
                    }
                    _ => {
                        let rhs = self.aexp()?;
                        self.expect(&Tok::Semi, "`;`")?;
                        Ok(Stmt::Assign(self.fresh_label(), dst, rhs))
                    }
                }
            }
            other => self.err(format!("expected statement, found {other:?}")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Aexp>, ParseError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.aexp()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(args)
    }

    // ----- boolean expressions ---------------------------------------------

    fn bexp(&mut self) -> Result<Bexp, ParseError> {
        let mut lhs = self.band()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.band()?;
            lhs = Bexp::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn band(&mut self) -> Result<Bexp, ParseError> {
        let mut lhs = self.bunary()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.bunary()?;
            lhs = Bexp::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bunary(&mut self) -> Result<Bexp, ParseError> {
        if *self.peek() == Tok::Bang {
            self.bump();
            return Ok(Bexp::Not(Box::new(self.bunary()?)));
        }
        self.batom()
    }

    fn batom(&mut self) -> Result<Bexp, ParseError> {
        match self.peek().clone() {
            Tok::KwTrue => {
                self.bump();
                Ok(Bexp::Const(true))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Bexp::Const(false))
            }
            Tok::KwCrc32Ok => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let start = self.aexp()?;
                self.expect(&Tok::Comma, "`,`")?;
                let len = self.aexp()?;
                self.expect(&Tok::Comma, "`,`")?;
                let stored = self.aexp()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Bexp::Crc32Ok {
                    start: Box::new(start),
                    len: Box::new(len),
                    stored: Box::new(stored),
                })
            }
            Tok::Ident(name)
                if *self.peek2() == Tok::LParen
                    && matches!(name.as_str(), "slt" | "sle" | "sgt" | "sge") =>
            {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let a = self.aexp()?;
                self.expect(&Tok::Comma, "`,`")?;
                let b = self.aexp()?;
                self.expect(&Tok::RParen, "`)`")?;
                let op = match name.as_str() {
                    "slt" => CmpOp::Slt,
                    "sle" => CmpOp::Sle,
                    "sgt" => CmpOp::Sgt,
                    _ => CmpOp::Sge,
                };
                Ok(Bexp::cmp(op, a, b))
            }
            Tok::LParen => {
                // Could be a parenthesised Bexp or the left operand of a
                // comparison. Try the boolean reading first; backtrack.
                let snapshot = (self.pos, self.next_label);
                self.bump();
                if let Ok(inner) = self.bexp() {
                    if *self.peek() == Tok::RParen {
                        self.bump();
                        // Must not be followed by a comparison operator: then
                        // it was really an arithmetic grouping.
                        if self.cmp_op().is_none() {
                            return Ok(inner);
                        }
                    }
                }
                self.pos = snapshot.0;
                self.next_label = snapshot.1;
                self.cmp_atom()
            }
            _ => self.cmp_atom(),
        }
    }

    fn cmp_op(&self) -> Option<CmpOp> {
        match self.peek() {
            Tok::EqEq => Some(CmpOp::Eq),
            Tok::NotEq => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Ult),
            Tok::Le => Some(CmpOp::Ule),
            Tok::Gt => Some(CmpOp::Ugt),
            Tok::Ge => Some(CmpOp::Uge),
            _ => None,
        }
    }

    fn cmp_atom(&mut self) -> Result<Bexp, ParseError> {
        let lhs = self.aexp()?;
        let Some(op) = self.cmp_op() else {
            return self.err(format!(
                "expected comparison operator, found {:?}",
                self.peek()
            ));
        };
        self.bump();
        let rhs = self.aexp()?;
        Ok(Bexp::cmp(op, lhs, rhs))
    }

    // ----- arithmetic expressions (C-like precedence) ----------------------

    fn aexp(&mut self) -> Result<Aexp, ParseError> {
        self.bitor()
    }

    fn bitor(&mut self) -> Result<Aexp, ParseError> {
        let mut lhs = self.bitxor()?;
        while *self.peek() == Tok::Pipe {
            self.bump();
            lhs = Aexp::bin(BinOp::Or, lhs, self.bitxor()?);
        }
        Ok(lhs)
    }

    fn bitxor(&mut self) -> Result<Aexp, ParseError> {
        let mut lhs = self.bitand()?;
        while *self.peek() == Tok::Caret {
            self.bump();
            lhs = Aexp::bin(BinOp::Xor, lhs, self.bitand()?);
        }
        Ok(lhs)
    }

    fn bitand(&mut self) -> Result<Aexp, ParseError> {
        let mut lhs = self.shift()?;
        while *self.peek() == Tok::Amp {
            self.bump();
            lhs = Aexp::bin(BinOp::And, lhs, self.shift()?);
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Aexp, ParseError> {
        let mut lhs = self.addsub()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::LShr,
                _ => break,
            };
            self.bump();
            lhs = Aexp::bin(op, lhs, self.addsub()?);
        }
        Ok(lhs)
    }

    fn addsub(&mut self) -> Result<Aexp, ParseError> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            lhs = Aexp::bin(op, lhs, self.muldiv()?);
        }
        Ok(lhs)
    }

    fn muldiv(&mut self) -> Result<Aexp, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::UDiv,
                Tok::Percent => BinOp::URem,
                _ => break,
            };
            self.bump();
            lhs = Aexp::bin(op, lhs, self.unary()?);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Aexp, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Aexp::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Aexp::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Aexp, ParseError> {
        match self.peek().clone() {
            Tok::Num(value, width) => {
                self.bump();
                let w = width.unwrap_or(32);
                if value > Bv::mask(w) {
                    return self.err(format!("literal {value} does not fit in u{w}"));
                }
                Ok(Aexp::Const(Bv::new(w, value)))
            }
            Tok::KwInLen => {
                self.bump();
                Ok(Aexp::InLen)
            }
            Tok::KwIn => {
                self.bump();
                self.expect(&Tok::LBracket, "`[`")?;
                let idx = self.aexp()?;
                self.expect(&Tok::RBracket, "`]`")?;
                Ok(Aexp::InByte(Box::new(idx)))
            }
            Tok::LParen => {
                self.bump();
                let inner = self.aexp()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                if *self.peek2() == Tok::LParen {
                    if let Some((kind, width)) = parse_cast_name(&name) {
                        self.bump();
                        self.expect(&Tok::LParen, "`(`")?;
                        let inner = self.aexp()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Aexp::Cast(kind, width, Box::new(inner)));
                    }
                    if name == "ashr" {
                        self.bump();
                        self.expect(&Tok::LParen, "`(`")?;
                        let a = self.aexp()?;
                        self.expect(&Tok::Comma, "`,`")?;
                        let b = self.aexp()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Aexp::bin(BinOp::AShr, a, b));
                    }
                    return self.err(format!("unknown builtin `{name}` in expression"));
                }
                self.bump();
                Ok(Aexp::Var(self.interner.intern(&name)))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

fn parse_cast_name(name: &str) -> Option<(CastKind, u8)> {
    let (kind, rest) = if let Some(rest) = name.strip_prefix("zext") {
        (CastKind::Zext, rest)
    } else if let Some(rest) = name.strip_prefix("sext") {
        (CastKind::Sext, rest)
    } else if let Some(rest) = name.strip_prefix("trunc") {
        (CastKind::Trunc, rest)
    } else {
        return None;
    };
    let width: u8 = rest.parse().ok()?;
    (1..=64).contains(&width).then_some((kind, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_main(body: &str) -> Program {
        parse(&format!("fn main() {{ {body} }}")).expect("parse failed")
    }

    fn main_stmts(p: &Program) -> &[Stmt] {
        p.proc(p.entry()).body.stmts()
    }

    #[test]
    fn parses_literals_with_widths() {
        let p = parse_main("x = 255u8; y = 0xffffu16; z = 7; w = 1_000_000;");
        let s = main_stmts(&p);
        match &s[0] {
            Stmt::Assign(_, _, Aexp::Const(bv)) => assert_eq!(*bv, Bv::new(8, 255)),
            other => panic!("unexpected {other:?}"),
        }
        match &s[1] {
            Stmt::Assign(_, _, Aexp::Const(bv)) => assert_eq!(*bv, Bv::new(16, 0xffff)),
            other => panic!("unexpected {other:?}"),
        }
        match &s[2] {
            Stmt::Assign(_, _, Aexp::Const(bv)) => assert_eq!(*bv, Bv::u32(7)),
            other => panic!("unexpected {other:?}"),
        }
        match &s[3] {
            Stmt::Assign(_, _, Aexp::Const(bv)) => assert_eq!(*bv, Bv::u32(1_000_000)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_literal_too_wide_for_suffix() {
        let err = parse("fn main() { x = 256u8; }").unwrap_err();
        assert!(err.msg.contains("does not fit"), "{}", err.msg);
    }

    #[test]
    fn precedence_mul_before_add() {
        let p = parse_main("x = 1 + 2 * 3;");
        match &main_stmts(&p)[0] {
            Stmt::Assign(_, _, Aexp::Bin(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Aexp::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_before_and() {
        let p = parse_main("x = a << 8 & b;");
        match &main_stmts(&p)[0] {
            Stmt::Assign(_, _, Aexp::Bin(BinOp::And, lhs, _)) => {
                assert!(matches!(**lhs, Aexp::Bin(BinOp::Shl, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_input_and_casts() {
        let p = parse_main("x = zext32(in[4]) << 24; y = trunc8(x); z = sext16(y);");
        let s = main_stmts(&p);
        match &s[0] {
            Stmt::Assign(_, _, Aexp::Bin(BinOp::Shl, lhs, _)) => match &**lhs {
                Aexp::Cast(CastKind::Zext, 32, inner) => {
                    assert!(matches!(**inner, Aexp::InByte(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            &s[1],
            Stmt::Assign(_, _, Aexp::Cast(CastKind::Trunc, 8, _))
        ));
        assert!(matches!(
            &s[2],
            Stmt::Assign(_, _, Aexp::Cast(CastKind::Sext, 16, _))
        ));
    }

    #[test]
    fn parses_alloc_and_memory_ops() {
        let p = parse_main(
            "buf = alloc(\"png.c@203\", 16); buf[0] = 5u8; x = buf[0]; free(buf); \
             big = alloc_abort(\"jpeg.c@192\", 32);",
        );
        let s = main_stmts(&p);
        assert!(matches!(
            &s[0],
            Stmt::Alloc {
                abort_on_fail: false,
                ..
            }
        ));
        assert!(matches!(&s[1], Stmt::Store { .. }));
        assert!(matches!(&s[2], Stmt::Load { .. }));
        assert!(matches!(&s[3], Stmt::Free(_, _)));
        assert!(matches!(
            &s[4],
            Stmt::Alloc {
                abort_on_fail: true,
                ..
            }
        ));
        let sites = p.alloc_sites();
        assert_eq!(&*sites[0].1, "png.c@203");
        assert_eq!(&*sites[1].1, "jpeg.c@192");
    }

    #[test]
    fn parses_control_flow_and_calls() {
        let src = r#"
            fn helper(a, b) { return a + b; }
            fn main() {
                x = helper(1, 2);
                if x > 2 { warn("big"); } else if x == 1 { skip; } else { error("small"); }
                while x != 0 { x = x - 1; }
                helper(3, 4);
                abort("done");
            }
        "#;
        let p = parse(src).unwrap();
        let s = main_stmts(&p);
        assert!(matches!(&s[0], Stmt::Call { dst: Some(_), .. }));
        assert!(matches!(&s[1], Stmt::If { .. }));
        assert!(matches!(&s[2], Stmt::While { .. }));
        assert!(matches!(&s[3], Stmt::Call { dst: None, .. }));
        assert!(matches!(&s[4], Stmt::Abort(_, _)));
    }

    #[test]
    fn forward_calls_resolve() {
        let src = "fn main() { y = later(1); } fn later(v) { return v; }";
        let p = parse(src).unwrap();
        match &main_stmts(&p)[0] {
            Stmt::Call { proc, .. } => assert_eq!(p.proc(*proc).name, "later"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_structure() {
        let p = parse_main("if (a < b || c == d) && !(e >= f) { skip; }");
        match &main_stmts(&p)[0] {
            Stmt::If { cond, .. } => match cond {
                Bexp::And(lhs, rhs) => {
                    assert!(matches!(**lhs, Bexp::Or(_, _)));
                    assert!(matches!(**rhs, Bexp::Not(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesised_arith_on_cmp_lhs() {
        let p = parse_main("if (a + b) * 2 > c { skip; }");
        match &main_stmts(&p)[0] {
            Stmt::If { cond, .. } => {
                assert!(matches!(cond, Bexp::Cmp(CmpOp::Ugt, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signed_compare_builtins() {
        let p = parse_main("if slt(a, b) || sge(c, d) { skip; }");
        match &main_stmts(&p)[0] {
            Stmt::If { cond, .. } => match cond {
                Bexp::Or(lhs, rhs) => {
                    assert!(matches!(**lhs, Bexp::Cmp(CmpOp::Slt, _, _)));
                    assert!(matches!(**rhs, Bexp::Cmp(CmpOp::Sge, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crc32_ok_condition() {
        let p = parse_main("if !crc32_ok(8, 13, 25) { error(\"bad crc\"); }");
        match &main_stmts(&p)[0] {
            Stmt::If { cond, .. } => {
                assert!(
                    matches!(cond, Bexp::Not(inner) if matches!(**inner, Bexp::Crc32Ok { .. }))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn labels_are_unique_and_dense() {
        let src = "fn main() { x = 1; if x > 0 { y = 2; } while x != 0 { x = x - 1; } }";
        let p = parse(src).unwrap();
        let mut labels = Vec::new();
        fn walk(b: &Block, out: &mut Vec<u32>) {
            for s in b.stmts() {
                out.push(s.label().0);
                match s {
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, out);
                        walk(else_blk, out);
                    }
                    Stmt::While { body, .. } => walk(body, out),
                    _ => {}
                }
            }
        }
        walk(&p.proc(p.entry()).body, &mut labels);
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n, "duplicate labels");
        assert!(labels.iter().all(|&l| l < p.n_labels()));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("fn main() {\n  x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("expected expression"));
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse("fn main() {\n// leading comment\nx = 1; // trailing\n}").unwrap();
        assert_eq!(main_stmts(&p).len(), 1);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = parse("fn main() { error(\"oops); }").unwrap_err();
        assert!(err.msg.contains("unterminated"));
    }

    #[test]
    fn unknown_procedure_is_an_error() {
        let err = parse("fn main() { nosuch(1); }").unwrap_err();
        assert!(err.msg.contains("unknown procedure"));
    }
}
