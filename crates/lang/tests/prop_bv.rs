//! Property tests: Bv arithmetic agrees with reference u128 arithmetic,
//! and overflow flags agree with ideal-result bounds.

use diode_lang::Bv;
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(1u8),
        Just(8),
        Just(16),
        Just(31),
        Just(32),
        Just(33),
        Just(64)
    ]
}

proptest! {
    #[test]
    fn add_matches_reference(w in arb_width(), a: u128, b: u128) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        let (sum, ovf) = x.add(y);
        let ideal = x.value() + y.value();
        prop_assert_eq!(sum.value(), ideal & Bv::mask(w));
        prop_assert_eq!(ovf, ideal > Bv::mask(w));
    }

    #[test]
    fn sub_matches_reference(w in arb_width(), a: u128, b: u128) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        let (diff, borrow) = x.sub(y);
        prop_assert_eq!(borrow, x.value() < y.value());
        let (s2, _) = diff.add(y);
        prop_assert_eq!(s2.value(), x.value(), "a - b + b == a");
    }

    #[test]
    fn mul_matches_reference(w in arb_width(), a: u128, b: u128) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        let (prod, ovf) = x.mul(y);
        let ideal = x.value() * y.value();
        prop_assert_eq!(prod.value(), ideal & Bv::mask(w));
        prop_assert_eq!(ovf, ideal > Bv::mask(w));
    }

    #[test]
    fn div_rem_reconstruct(w in arb_width(), a: u128, b: u128) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        prop_assume!(!y.is_zero());
        let q = x.udiv(y);
        let r = x.urem(y);
        prop_assert!(r.value() < y.value());
        prop_assert_eq!(q.value() * y.value() + r.value(), x.value());
    }

    #[test]
    fn shifts_match_reference(w in arb_width(), a: u128, k in 0u128..80) {
        let x = Bv::new(w, a);
        let kk = Bv::new(w, k & Bv::mask(w));
        let (shl, ovf) = x.shl(kk);
        if kk.value() >= u128::from(w) {
            prop_assert_eq!(shl.value(), 0);
            prop_assert_eq!(ovf, !x.is_zero());
        } else {
            let ideal = x.value() << kk.value();
            prop_assert_eq!(shl.value(), ideal & Bv::mask(w));
            prop_assert_eq!(ovf, ideal > Bv::mask(w));
            prop_assert_eq!(x.lshr(kk).value(), x.value() >> kk.value());
        }
    }

    #[test]
    fn signed_interpretation_roundtrips(w in arb_width(), a: u128) {
        let x = Bv::new(w, a);
        let s = x.as_signed();
        prop_assert_eq!(Bv::new(w, s as u128).value(), x.value());
        if w > 1 {
            prop_assert!(s < (1i128 << (w - 1)));
            prop_assert!(s >= -(1i128 << (w - 1)));
        }
    }

    #[test]
    fn zext_trunc_roundtrip(a: u32) {
        let x = Bv::new(32, u128::from(a));
        let wide = x.zext(64);
        let (back, lost) = wide.trunc(32);
        prop_assert_eq!(back, x);
        prop_assert!(!lost);
    }

    #[test]
    fn comparisons_are_total_orders(w in arb_width(), a: u128, b: u128) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        prop_assert_eq!(x.ult(y), x.value() < y.value());
        prop_assert_eq!(x.ule(y), x.value() <= y.value());
        prop_assert_eq!(x.slt(y), x.as_signed() < y.as_signed());
        prop_assert_eq!(x.sle(y), x.as_signed() <= y.as_signed());
    }
}
