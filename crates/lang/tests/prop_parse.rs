//! Property test: the pretty-printer and parser are mutually consistent —
//! parse(pretty(p)) pretty-prints identically (printing is a canonical
//! form).

use diode_lang::{parse, pretty};
use proptest::prelude::*;

/// Generates random (valid) statement sequences textually.
fn arb_stmt() -> impl Strategy<Value = String> {
    let var = prop_oneof![Just("x"), Just("y"), Just("z"), Just("acc")];
    let num = 0u32..10000;
    let expr = (var.clone(), num.clone(), 0usize..6).prop_map(|(v, n, op)| match op {
        0 => format!("{v} + {n}"),
        1 => format!("{v} * {n}"),
        2 => format!("({v} - {n}) ^ {n}"),
        3 => format!("zext64({v})"),
        4 => format!("in[{n}]"),
        _ => format!("{v} >> 3 | {n}"),
    });
    prop_oneof![
        (var.clone(), expr.clone()).prop_map(|(v, e)| format!("{v} = {e};")),
        (var.clone(), num.clone()).prop_map(|(v, n)| format!("if {v} > {n} {{ warn(\"w\"); }}")),
        (var.clone(), num.clone())
            .prop_map(|(v, n)| format!("while {v} < {n} {{ {v} = {v} + 1; }}")),
        Just("skip;".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pretty_parse_is_canonical(stmts in proptest::collection::vec(arb_stmt(), 1..12)) {
        let src = format!(
            "fn main() {{ x = 1; y = 2; z = 3; acc = 0; {} }}",
            stmts.join(" ")
        );
        let p1 = parse(&src).expect("generated program parses");
        let printed1 = pretty::program(&p1);
        let p2 = parse(&printed1).expect("pretty output reparses");
        let printed2 = pretty::program(&p2);
        prop_assert_eq!(printed1, printed2);
    }
}
