//! # diode-fuzz — fuzzing baselines
//!
//! The comparison points of the paper's related-work discussion (§6):
//!
//! * [`RandomFuzzer`] — blind mutation of the whole input (the classic
//!   Miller-style fuzzer). Because most mutated inputs fail the input
//!   sanity checks, it "has been relatively ineffective at generating
//!   inputs that trigger errors … deep inside applications".
//! * [`TaintFuzzer`] — BuzzFuzz/TaintScope-style *directed* fuzzing: taint
//!   analysis first finds the input bytes that influence the target
//!   allocation site, then only those bytes are fuzzed (here with
//!   boundary-heavy value sampling), and checksums are repaired the way
//!   TaintScope repairs them. "While successful at reducing the size of
//!   the mutation space, … these directed techniques are ineffective at
//!   finding the carefully crafted inputs required to navigate the sanity
//!   checks".
//!
//! Both report how many of `trials` mutated inputs trigger an overflow at
//! a chosen target site, so they slot into the same success-rate harness
//! as DIODE (`diode-bench`'s `fuzz_compare`).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use diode_core::test_candidate;
use diode_format::FormatDesc;
use diode_interp::MachineConfig;
use diode_lang::{Label, Program};

/// Outcome of a fuzzing campaign against one target site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// Inputs that triggered an overflow at the target site.
    pub hits: u32,
    /// Inputs executed.
    pub trials: u32,
    /// Inputs that were rejected before reaching the target site.
    pub rejected_early: u32,
}

impl std::fmt::Display for FuzzOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.hits, self.trials)
    }
}

/// Blind random fuzzing: flips random bytes anywhere in the seed.
#[derive(Debug, Clone)]
pub struct RandomFuzzer {
    /// Number of inputs to generate.
    pub trials: u32,
    /// Bytes mutated per input.
    pub mutations_per_input: u32,
    /// RNG seed (campaigns are deterministic per seed).
    pub rng_seed: u64,
    /// Repair checksums after mutation (a checksum-aware variant; plain
    /// random fuzzers leave checksums broken and die in the parser).
    pub fix_checksums: bool,
}

impl Default for RandomFuzzer {
    fn default() -> Self {
        RandomFuzzer {
            trials: 200,
            mutations_per_input: 8,
            rng_seed: 0xD10DE,
            fix_checksums: false,
        }
    }
}

impl RandomFuzzer {
    /// Runs the campaign against `site_label`.
    #[must_use]
    pub fn run(
        &self,
        program: &Program,
        seed: &[u8],
        format: &FormatDesc,
        site_label: Label,
        machine: &MachineConfig,
    ) -> FuzzOutcome {
        let mut rng = StdRng::seed_from_u64(self.rng_seed);
        let mut hits = 0;
        let mut rejected_early = 0;
        for _ in 0..self.trials {
            let mut input = seed.to_vec();
            for _ in 0..self.mutations_per_input {
                if input.is_empty() {
                    break;
                }
                let idx = rng.gen_range(0..input.len());
                input[idx] = rng.gen();
            }
            let input = if self.fix_checksums {
                format.reconstruct(&input, [])
            } else {
                input
            };
            let res = test_candidate(program, &input, site_label, machine);
            if res.triggered {
                hits += 1;
            }
            if !res.site_executed {
                rejected_early += 1;
            }
        }
        FuzzOutcome {
            hits,
            trials: self.trials,
            rejected_early,
        }
    }
}

/// Taint-directed fuzzing (BuzzFuzz/TaintScope): mutates only the relevant
/// bytes of the target site, with boundary-heavy values, and repairs
/// checksums.
#[derive(Debug, Clone)]
pub struct TaintFuzzer {
    /// Number of inputs to generate.
    pub trials: u32,
    /// RNG seed.
    pub rng_seed: u64,
}

impl Default for TaintFuzzer {
    fn default() -> Self {
        TaintFuzzer {
            trials: 200,
            rng_seed: 0xBEEF,
        }
    }
}

impl TaintFuzzer {
    /// Runs the campaign: mutates the given relevant bytes only.
    #[must_use]
    pub fn run(
        &self,
        program: &Program,
        seed: &[u8],
        format: &FormatDesc,
        site_label: Label,
        relevant_bytes: &[u32],
        machine: &MachineConfig,
    ) -> FuzzOutcome {
        let mut rng = StdRng::seed_from_u64(self.rng_seed);
        let mut hits = 0;
        let mut rejected_early = 0;
        // Boundary-heavy byte palette, as directed fuzzers use.
        const PALETTE: [u8; 8] = [0x00, 0x01, 0x7f, 0x80, 0xfe, 0xff, 0x40, 0xc0];
        for _ in 0..self.trials {
            let patches: Vec<(u32, u8)> = relevant_bytes
                .iter()
                .map(|&off| {
                    let v = if rng.gen_bool(0.75) {
                        PALETTE[rng.gen_range(0..PALETTE.len())]
                    } else {
                        rng.gen()
                    };
                    (off, v)
                })
                .collect();
            let input = format.reconstruct(seed, patches);
            let res = test_candidate(program, &input, site_label, machine);
            if res.triggered {
                hits += 1;
            }
            if !res.site_executed {
                rejected_early += 1;
            }
        }
        FuzzOutcome {
            hits,
            trials: self.trials,
            rejected_early,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_core::identify_target_sites;

    /// A site guarded the way the paper's benchmarks are: random mutation
    /// almost never finds the carefully crafted values.
    const GUARDED: &str = r#"
        fn main() {
            w = zext32(in[0]) << 8 | zext32(in[1]);
            h = zext32(in[2]) << 8 | zext32(in[3]);
            if w > 60000 { error("w"); }
            if h > 60000 { error("h"); }
            if w * h > 100000000 { error("too big"); }    // overflowable check
            buf = alloc("deep@7", w * h * 4);
            t = zext64(w) * zext64(h) * 4u64;
            p = 0u64;
            while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
        }
    "#;

    #[test]
    fn random_fuzzer_rarely_reaches_deep_sites() {
        let program = diode_lang::parse(GUARDED).unwrap();
        let seed = vec![0x00, 0x40, 0x00, 0x30]; // 64 × 48
        let format = FormatDesc::new("demo");
        let machine = MachineConfig::default();
        let sites = identify_target_sites(&program, &seed, &machine);
        let fz = RandomFuzzer {
            trials: 60,
            ..RandomFuzzer::default()
        };
        let out = fz.run(&program, &seed, &format, sites[0].label, &machine);
        assert_eq!(out.trials, 60);
        // Triggering requires w,h ≤ 60000 with w*h*4 ≥ 2^32 AND the w*h
        // check to wrap into [0, 1e8] — essentially never at random.
        assert_eq!(out.hits, 0, "random fuzzing should not find this");
    }

    #[test]
    fn taint_fuzzer_mutates_only_relevant_bytes_but_still_fails_checks() {
        let program = diode_lang::parse(GUARDED).unwrap();
        let seed = vec![0x00, 0x40, 0x00, 0x30];
        let format = FormatDesc::new("demo");
        let machine = MachineConfig::default();
        let sites = identify_target_sites(&program, &seed, &machine);
        assert_eq!(sites[0].relevant_bytes, vec![0, 1, 2, 3]);
        let fz = TaintFuzzer {
            trials: 60,
            ..TaintFuzzer::default()
        };
        let out = fz.run(
            &program,
            &seed,
            &format,
            sites[0].label,
            &sites[0].relevant_bytes,
            &machine,
        );
        // Boundary values blow past the sanity checks: most inputs are
        // rejected before the site.
        assert!(out.rejected_early > out.trials / 2, "{out:?}");
        assert!(
            out.hits <= out.trials / 10,
            "taint fuzzing should rarely navigate the checks: {out:?}"
        );
    }

    #[test]
    fn fuzzers_do_find_totally_unchecked_sites() {
        // Sanity check for the baselines themselves: with no checks at
        // all, boundary-driven taint fuzzing finds the overflow easily.
        let src = r#"
            fn main() {
                n = zext32(in[0]) << 24 | zext32(in[1]) << 16
                  | zext32(in[2]) << 8 | zext32(in[3]);
                buf = alloc("shallow@3", n * 8 + 2);
                t = zext64(n) * 8u64 + 2u64;
                p = 0u64;
                while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
            }
        "#;
        let program = diode_lang::parse(src).unwrap();
        let seed = vec![0, 0, 0, 16];
        let format = FormatDesc::new("demo");
        let machine = MachineConfig::default();
        let sites = identify_target_sites(&program, &seed, &machine);
        let fz = TaintFuzzer {
            trials: 100,
            ..TaintFuzzer::default()
        };
        let out = fz.run(
            &program,
            &seed,
            &format,
            sites[0].label,
            &sites[0].relevant_bytes,
            &machine,
        );
        // n ≥ 2^29 overflows n*8: the boundary-heavy palette hits it often.
        assert!(out.hits > 0, "{out:?}");
    }
}
