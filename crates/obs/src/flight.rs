//! The flight recorder: a bounded ring of recent pulse events, dumped
//! to disk only when something goes wrong.
//!
//! A [`FlightRecorder`] sits behind a [`PulseBus`](crate::PulseBus)
//! subscriber and retains the last `capacity` events at near-zero cost
//! (one clone into a ring, no I/O, no serialisation). When a watchdog
//! anomaly fires or a job ends abnormally, [`dump`](FlightRecorder::dump)
//! serialises the retained window — so the operator gets the minutes
//! *before* the incident without paying for always-on archival.
//!
//! A dump is a self-describing JSONL file:
//!
//! ```text
//! {"type":"flight","v":1,"job":"job-3","reason":"anomaly:slow_site","seen":412,"retained":256,"anomalies":1}
//! {"type":"anomaly","kind":"slow_site","subject":"forged-100/0/b0@0",...}
//! {"type":"pulse","v":1,"threads":2}
//! {"type":"site_finished",...}
//! ...
//! ```
//!
//! The tail after the anomaly records is a standard telemetry stream
//! ([`TelemetryLog`] wire format), so existing tooling can replay it;
//! [`FlightDump::from_jsonl`] parses the whole file back.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::pulse::PulseEvent;
use crate::sink::{parse_flat_object, push_json_str, FlatValue};
use crate::telemetry::{pulse_event_lines, telemetry_header, TelemetryLog};
use crate::watchdog::{anomalies_from_jsonl, anomalies_to_jsonl, AnomalyReport};

/// Version stamped into (and required from) the flight header line.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// A bounded last-N ring of pulse events.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<PulseEvent>,
    seen: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Record one event, evicting the oldest beyond capacity.
    pub fn record(&mut self, event: &PulseEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event.clone());
        self.seen += 1;
    }

    /// Total events ever recorded (retained or evicted).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events currently retained.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// Serialise the retained window as a flight dump: header line,
    /// anomaly records, then the event tail as a telemetry stream.
    #[must_use]
    pub fn dump(
        &self,
        job: &str,
        reason: &str,
        threads: u32,
        anomalies: &[AnomalyReport],
    ) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"flight\",\"v\":");
        let _ = write!(out, "{FLIGHT_SCHEMA_VERSION}");
        out.push_str(",\"job\":");
        push_json_str(&mut out, job);
        out.push_str(",\"reason\":");
        push_json_str(&mut out, reason);
        let _ = writeln!(
            out,
            ",\"seen\":{},\"retained\":{},\"anomalies\":{}}}",
            self.seen,
            self.ring.len(),
            anomalies.len()
        );
        // Anomaly records ride the digest line format, minus its header.
        let digest = anomalies_to_jsonl(anomalies);
        if let Some((_, records)) = digest.split_once('\n') {
            out.push_str(records);
        }
        out.push_str(&telemetry_header(threads));
        for event in &self.ring {
            out.push_str(&pulse_event_lines(event));
        }
        out
    }
}

/// A parsed flight dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Job the recorder was attached to.
    pub job: String,
    /// Why the dump was written (`"anomaly:<kind>"` or `"job_failed"`).
    pub reason: String,
    /// Total events the recorder saw over the job's lifetime.
    pub seen: u64,
    /// Worker-thread count from the embedded telemetry header.
    pub threads: u32,
    /// Anomalies that triggered (or accompanied) the dump.
    pub anomalies: Vec<AnomalyReport>,
    /// The retained event window, oldest first.
    pub events: Vec<PulseEvent>,
}

impl FlightDump {
    /// Parses a dump produced by [`FlightRecorder::dump`].
    pub fn from_jsonl(text: &str) -> Result<FlightDump, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let Some(header) = lines.next() else {
            return Err("flight: empty input (missing header line)".into());
        };
        let head = parse_flat_object(header).map_err(|e| format!("flight line 1: {e}"))?;
        if head.get("type").and_then(FlatValue::as_str) != Some("flight") {
            return Err("flight: first line must be the header {\"type\":\"flight\",...}".into());
        }
        match head.get("v").and_then(FlatValue::as_u64) {
            Some(FLIGHT_SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "flight: unsupported schema version {v} (expected {FLIGHT_SCHEMA_VERSION})"
                ))
            }
            None => return Err("flight: header missing integer field \"v\"".into()),
        }
        let req_str = |key: &str| -> Result<String, String> {
            head.get(key)
                .and_then(FlatValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("flight: header missing string field {key:?}"))
        };
        let req_u64 = |key: &str| -> Result<u64, String> {
            head.get(key)
                .and_then(FlatValue::as_u64)
                .ok_or_else(|| format!("flight: header missing integer field {key:?}"))
        };
        let anomaly_count = req_u64("anomalies")? as usize;
        // The declared number of anomaly records, re-wrapped as a
        // digest for the existing parser.
        let mut digest = format!(
            "{{\"type\":\"anomalies\",\"v\":{},\"count\":{anomaly_count}}}\n",
            crate::watchdog::ANOMALY_SCHEMA_VERSION
        );
        for _ in 0..anomaly_count {
            let Some(line) = lines.next() else {
                return Err(format!(
                    "flight: header declares {anomaly_count} anomaly record(s) \
                     but the stream ended early"
                ));
            };
            digest.push_str(line);
            digest.push('\n');
        }
        let anomalies = anomalies_from_jsonl(&digest).map_err(|e| format!("flight: {e}"))?;
        // Everything left is a standard telemetry stream.
        let mut telemetry = String::new();
        for line in lines {
            telemetry.push_str(line);
            telemetry.push('\n');
        }
        let log = TelemetryLog::from_jsonl(&telemetry).map_err(|e| format!("flight: {e}"))?;
        Ok(FlightDump {
            job: req_str("job")?,
            reason: req_str("reason")?,
            seen: req_u64("seen")?,
            threads: log.threads,
            anomalies,
            events: log.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::AnomalyKind;

    fn site(i: u32) -> PulseEvent {
        PulseEvent::SiteFinished {
            app: "forged-001".into(),
            seed: 0,
            site: format!("b0@{i}"),
            outcome: "exposed".into(),
            wall_ns: u64::from(i) * 100,
            cache_bytes: 0,
            snapshot_bytes: 0,
            peak_heap_bytes: 0,
        }
    }

    #[test]
    fn ring_retains_the_last_n_events() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.record(&site(i));
        }
        assert_eq!(rec.seen(), 10);
        assert_eq!(rec.retained(), 3);
        let dump = rec.dump("job-1", "job_failed", 2, &[]);
        let parsed = FlightDump::from_jsonl(&dump).expect("dump parses");
        assert_eq!(parsed.events, vec![site(7), site(8), site(9)]);
        assert_eq!(parsed.seen, 10);
        assert_eq!(parsed.reason, "job_failed");
        assert_eq!(parsed.threads, 2);
    }

    #[test]
    fn dump_round_trips_with_anomalies() {
        let mut rec = FlightRecorder::new(16);
        rec.record(&site(0));
        rec.record(&PulseEvent::Finished {
            wall_ns: 5,
            sites: 1,
            exposed: 1,
        });
        let anomalies = vec![AnomalyReport {
            kind: AnomalyKind::SlowSite,
            subject: "forged-001/0/b0@0".into(),
            detail: "site took 900ms against a campaign median of 1ms".into(),
            value: 900_000_000,
            threshold: 8_000_000,
        }];
        let dump = rec.dump("job-9", "anomaly:slow_site", 4, &anomalies);
        let parsed = FlightDump::from_jsonl(&dump).expect("dump parses");
        assert_eq!(parsed.job, "job-9");
        assert_eq!(parsed.anomalies, anomalies);
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.threads, 4);
    }

    #[test]
    fn parser_rejects_bad_input() {
        assert!(FlightDump::from_jsonl("").unwrap_err().contains("empty"));
        assert!(FlightDump::from_jsonl("{\"type\":\"pulse\",\"v\":1}\n")
            .unwrap_err()
            .contains("header"));
        let bad_version =
            "{\"type\":\"flight\",\"v\":99,\"job\":\"j\",\"reason\":\"r\",\"seen\":0,\
             \"retained\":0,\"anomalies\":0}\n";
        assert!(FlightDump::from_jsonl(bad_version)
            .unwrap_err()
            .contains("unsupported schema version"));
        let truncated = "{\"type\":\"flight\",\"v\":1,\"job\":\"j\",\"reason\":\"r\",\"seen\":0,\
             \"retained\":0,\"anomalies\":2}\n";
        assert!(FlightDump::from_jsonl(truncated)
            .unwrap_err()
            .contains("ended early"));
    }
}
