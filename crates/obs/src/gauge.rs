//! Byte-accounting gauges: a current value plus a monotone high-water
//! mark, both lock-free.
//!
//! The caches ([`SolverCache`](../../diode_solver/struct.SolverCache.html),
//! `SnapshotCache`) keep one [`ByteGauge`] next to their hit/miss
//! counters: every insert adds the entry's approximate resident size,
//! every eviction subtracts it, and the peak ratchets up under a CAS
//! loop. Reads are relaxed — the gauge is advisory telemetry, never a
//! correctness input, so a momentarily stale read is fine.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free byte gauge: current total plus high-water mark.
#[derive(Debug, Default)]
pub struct ByteGauge {
    cur: AtomicU64,
    peak: AtomicU64,
}

impl ByteGauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> ByteGauge {
        ByteGauge::default()
    }

    /// Adds `bytes` to the current total and ratchets the peak.
    pub fn add(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.cur.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self
                .peak
                .compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
    }

    /// Subtracts `bytes` from the current total (saturating at zero —
    /// a mismatched release must not wrap the gauge).
    pub fn sub(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.cur.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .cur
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current resident bytes.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.cur.load(Ordering::Relaxed)
    }

    /// High-water mark since creation (or the last [`reset`](Self::reset)).
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Zeroes both the current total and the peak.
    pub fn reset(&self) {
        self.cur.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_sub_and_peak() {
        let g = ByteGauge::new();
        g.add(100);
        g.add(50);
        assert_eq!(g.current(), 150);
        assert_eq!(g.peak(), 150);
        g.sub(120);
        assert_eq!(g.current(), 30);
        assert_eq!(g.peak(), 150);
        g.add(10);
        assert_eq!(g.current(), 40);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn sub_saturates_instead_of_wrapping() {
        let g = ByteGauge::new();
        g.add(10);
        g.sub(100);
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let g = ByteGauge::new();
        g.add(42);
        g.reset();
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 0);
    }

    #[test]
    fn concurrent_adds_balance_subs() {
        let g = Arc::new(ByteGauge::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(7);
                        g.sub(7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.current(), 0);
        assert!(g.peak() >= 7);
        assert!(g.peak() <= 28);
    }
}
