//! Service-level metrics: an always-on registry of counters, gauges,
//! and histograms with dual exposition (JSON and Prometheus text).
//!
//! The registry is built for a resident daemon: handles are registered
//! once (a brief registry lock), then the hot path is an atomic add
//! ([`Counter::inc`]) or a short mutex around a fixed-size [`Hist`]
//! ([`Histogram::observe`]) — no allocation, no formatting, nothing a
//! campaign could observe. Scrapes ([`MetricsRegistry::snapshot`]) copy
//! the current values into a [`MetricsSnapshot`], which renders to
//! either exposition:
//!
//! * [`MetricsSnapshot::to_json`] — one flat JSON object per metric
//!   kind, parseable by the same zero-dependency codecs every other
//!   diode artifact uses.
//! * [`MetricsSnapshot::to_prometheus`] — the Prometheus text format,
//!   hand-rolled: `# HELP`/`# TYPE` comments, backslash/quote/newline
//!   escaping in label values, and histogram buckets exposed
//!   *cumulatively* with the mandatory `+Inf` terminal bucket.
//!
//! [`parse_prometheus`] parses a scraped payload back into samples, so
//! clients (and the round-trip tests) never have to screen-scrape.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Hist;
use crate::sink::push_json_str;

/// Version stamped into the JSON exposition; bump on shape changes.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// A metric's identity: its name plus an ordered label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-safe: `[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// The Prometheus selector: `name{label="value",...}` (bare name
    /// when unlabelled). Label values are escaped.
    #[must_use]
    pub fn selector(&self) -> String {
        let mut out = self.name.clone();
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
            }
            out.push('}');
        }
        out
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle (stores `f64` bits atomically).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram handle over a log2-bucketed [`Hist`].
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<Mutex<Hist>>,
}

impl Histogram {
    /// Record one observation (a duration in ns, a byte count, ...).
    pub fn observe(&self, value: u64) {
        self.inner
            .lock()
            .expect("histogram lock poisoned")
            .record(value);
    }

    fn snapshot(&self) -> Hist {
        self.inner.lock().expect("histogram lock poisoned").clone()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The service-level metric registry: register-or-get handles by
/// `(name, labels)`, snapshot on scrape.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        wrap: impl Fn(T) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<T>,
        fresh: impl Fn() -> T,
    ) -> T {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_metric_name(k), "invalid label name {k:?}");
        }
        if !help.is_empty() {
            self.help
                .lock()
                .expect("help lock poisoned")
                .entry(name.to_string())
                .or_insert_with(|| help.to_string());
        }
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        match metrics.get(&key) {
            Some(existing) => unwrap(existing).unwrap_or_else(|| {
                panic!(
                    "metric {:?} re-registered as a different kind (was {})",
                    key.selector(),
                    existing.kind()
                )
            }),
            None => {
                let handle = fresh();
                metrics.insert(key, wrap(handle.clone()));
                handle
            }
        }
    }

    /// Register-or-get a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.register(
            name,
            help,
            labels,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::default,
        )
    }

    /// Register-or-get a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.register(
            name,
            help,
            labels,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::default,
        )
    }

    /// Register-or-get a histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.register(
            name,
            help,
            labels,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Histogram::default,
        )
    }

    /// A point-in-time copy of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        let help = self.help.lock().expect("help lock poisoned").clone();
        let samples = metrics
            .iter()
            .map(|(key, metric)| MetricSample {
                key: key.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        MetricsSnapshot { samples, help }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Full histogram state (buckets, count, sum); boxed so a
    /// snapshot row stays small next to the scalar variants.
    Histogram(Box<Hist>),
}

/// One `(key, value)` pair out of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The metric's identity.
    pub key: MetricKey,
    /// Its value when the snapshot was taken.
    pub value: MetricValue,
}

/// A point-in-time copy of the registry, ready to render.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Every sample, ordered by `(name, labels)`.
    pub samples: Vec<MetricSample>,
    /// Help text per metric name.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// The Prometheus text exposition: `# HELP`/`# TYPE` per name,
    /// escaped label values, cumulative histogram buckets ending in
    /// `+Inf`, plus `_sum`/`_count` series.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for sample in &self.samples {
            let name = sample.key.name.as_str();
            if name != last_name {
                if let Some(help) = self.help.get(name) {
                    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
                }
                let kind = match &sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = name;
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", sample.key.selector());
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", sample.key.selector(), fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    for (le, cumulative) in h.cumulative_buckets() {
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            selector_with(&sample.key, "_bucket", Some(("le", &le.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        selector_with(&sample.key, "_bucket", Some(("le", "+Inf"))),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        selector_with(&sample.key, "_sum", None),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        selector_with(&sample.key, "_count", None),
                        h.count()
                    );
                }
            }
        }
        out
    }

    /// The JSON exposition: one object with `counters`, `gauges`, and
    /// `histograms` maps keyed by the Prometheus selector. Histograms
    /// carry their summary (count/sum/max/p50/p99) rather than buckets.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for sample in &self.samples {
            match &sample.value {
                MetricValue::Counter(v) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    push_json_str(&mut counters, &sample.key.selector());
                    let _ = write!(counters, ":{v}");
                }
                MetricValue::Gauge(v) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    push_json_str(&mut gauges, &sample.key.selector());
                    let _ = write!(gauges, ":{}", fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    if !hists.is_empty() {
                        hists.push(',');
                    }
                    push_json_str(&mut hists, &sample.key.selector());
                    let s = h.summary();
                    let _ = write!(
                        hists,
                        ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                        s.count, s.sum, s.max, s.p50, s.p99
                    );
                }
            }
        }
        format!(
            "{{\"schema\":{METRICS_SCHEMA_VERSION},\"counters\":{{{counters}}},\
             \"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

fn selector_with(key: &MetricKey, suffix: &str, extra: Option<(&str, &str)>) -> String {
    let mut out = format!("{}{suffix}", key.name);
    let has_labels = !key.labels.is_empty() || extra.is_some();
    if has_labels {
        out.push('{');
        let mut first = true;
        for (k, v) in &key.labels {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
            first = false;
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus HELP escaping: backslash and newline only.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Round-trippable float formatting: integers keep a bare integer form
/// (Prometheus accepts both), everything else uses Rust's shortest
/// round-trip `Display`.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Series name (histogram series keep their `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in line order (`le` included for buckets).
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` bucket bounds only appear in labels;
    /// values themselves parse as finite floats or `NaN`).
    pub value: f64,
}

/// Parses a Prometheus text payload back into samples. Comment lines
/// (`# HELP`, `# TYPE`) are validated as comments and skipped; every
/// other non-empty line must be a well-formed sample.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, rest) = parse_series(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let value = rest.trim();
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {lineno}: bad sample value {v:?}"))?,
        };
        out.push(PromSample {
            name: series.0,
            labels: series.1,
            value,
        });
    }
    Ok(out)
}

type Series = (String, Vec<(String, String)>);

/// Parses `name{label="value",...}` off the front of a sample line,
/// returning the remainder (the value).
fn parse_series(line: &str) -> Result<(Series, &str), String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if name.is_empty() || !valid_metric_name(name) {
        return Err(format!("bad metric name in {line:?}"));
    }
    let rest = &line[name_end..];
    if !rest.starts_with('{') {
        return Ok(((name.to_string(), Vec::new()), rest));
    }
    let mut labels = Vec::new();
    let mut chars = rest[1..].char_indices().peekable();
    loop {
        // Label name up to '='.
        let mut label = String::new();
        for (_, c) in chars.by_ref() {
            if c == '=' {
                break;
            }
            if c == '}' && label.trim().is_empty() && labels.is_empty() {
                // Empty label set: `name{}`.
                let consumed = rest[1..]
                    .find('}')
                    .expect("matched '}' above exists in the string");
                return Ok(((name.to_string(), labels), &rest[1 + consumed + 1..]));
            }
            label.push(c);
        }
        let label = label.trim().to_string();
        if label.is_empty() {
            return Err(format!("empty label name in {line:?}"));
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label {label:?} value must be quoted")),
        }
        // Escaped label value up to the closing quote.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {line:?}")),
                },
                Some((_, '"')) => break,
                Some((_, c)) => value.push(c),
                None => return Err(format!("unterminated label value in {line:?}")),
            }
        }
        labels.push((label, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok(((name.to_string(), labels), &rest[1 + i + 1..])),
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_register_once() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_total", "jobs", &[("code", "429")]);
        c.inc();
        reg.counter("jobs_total", "", &[("code", "429")]).add(2);
        assert_eq!(c.get(), 3, "same (name, labels) shares one cell");
        let g = reg.gauge("depth", "queue depth", &[]);
        g.set(4.5);
        let h = reg.histogram("wait_ns", "admission wait", &[]);
        h.observe(7);
        h.observe(100);
        let snap = reg.snapshot();
        assert_eq!(snap.samples.len(), 3);
        assert!(snap
            .samples
            .iter()
            .any(|s| s.value == MetricValue::Counter(3)));
        assert!(snap
            .samples
            .iter()
            .any(|s| s.value == MetricValue::Gauge(4.5)));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", "", &[]);
        reg.gauge("x_total", "", &[]);
    }

    #[test]
    fn selector_escapes_label_values() {
        let key = MetricKey::new("m", &[("path", "a\\b\"c\nd")]);
        assert_eq!(key.selector(), "m{path=\"a\\\\b\\\"c\\nd\"}");
    }

    #[test]
    fn prometheus_exposition_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("diode_jobs_total", "total jobs", &[("code", "200")])
            .add(7);
        reg.counter("diode_jobs_total", "", &[("code", "4\"2\\9\n")])
            .inc();
        reg.gauge("diode_uptime_seconds", "uptime", &[]).set(12.25);
        let h = reg.histogram("diode_wait_ns", "admission wait", &[("queue", "0")]);
        for v in [1u64, 2, 3, 900, 7000] {
            h.observe(v);
        }
        let text = reg.snapshot().to_prometheus();
        let samples = parse_prometheus(&text).expect("exposition parses");
        // Counters and gauges come back exactly.
        assert!(samples.iter().any(|s| s.name == "diode_jobs_total"
            && s.labels == vec![("code".into(), "200".into())]
            && s.value == 7.0));
        assert!(samples.iter().any(|s| s.name == "diode_jobs_total"
            && s.labels == vec![("code".into(), "4\"2\\9\n".into())]
            && s.value == 1.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "diode_uptime_seconds" && s.value == 12.25));
        // The histogram exposes sum/count plus a +Inf bucket equal to
        // the count.
        assert!(samples
            .iter()
            .any(|s| s.name == "diode_wait_ns_sum" && s.value == 7906.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "diode_wait_ns_count" && s.value == 5.0));
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "diode_wait_ns_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket present");
        assert_eq!(inf.value, 5.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h_ns", "", &[]);
        for v in [1u64, 2, 3, 900] {
            h.observe(v);
        }
        let text = reg.snapshot().to_prometheus();
        let buckets: Vec<(f64, f64)> = parse_prometheus(&text)
            .unwrap()
            .into_iter()
            .filter(|s| s.name == "h_ns_bucket")
            .map(|s| {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| {
                        if v == "+Inf" {
                            f64::INFINITY
                        } else {
                            v.parse().unwrap()
                        }
                    })
                    .expect("bucket has le");
                (le, s.value)
            })
            .collect();
        assert!(buckets.len() >= 2);
        // Bounds strictly increase; counts never decrease; last is +Inf
        // with the total count.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds must increase: {buckets:?}");
            assert!(
                pair[0].1 <= pair[1].1,
                "counts must be cumulative: {buckets:?}"
            );
        }
        let last = buckets.last().unwrap();
        assert_eq!((last.0, last.1), (f64::INFINITY, 4.0));
        // Spot-check one interior bound: values 1,2,3 all fit in le=3.
        assert!(buckets.iter().any(|(le, n)| *le == 3.0 && *n == 3.0));
    }

    #[test]
    fn json_exposition_carries_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "", &[("k", "v")]).add(2);
        reg.gauge("g", "", &[]).set(0.5);
        reg.histogram("h_ns", "", &[]).observe(9);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"schema\":1,"));
        assert!(json.contains("\"c_total{k=\\\"v\\\"}\":2"));
        assert!(json.contains("\"g\":0.5"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("1bad_name 3\n").is_err());
        assert!(parse_prometheus("m{x=unquoted} 3\n").is_err());
        assert!(parse_prometheus("m{x=\"open} 3\n").is_err());
        assert!(parse_prometheus("m notanumber\n").is_err());
        assert!(parse_prometheus("# just a comment\n\n").unwrap().is_empty());
        let ok = parse_prometheus("m{} 3\n").unwrap();
        assert_eq!(ok[0].name, "m");
        assert!(ok[0].labels.is_empty());
    }
}
