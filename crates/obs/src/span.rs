//! Span recording: the [`Recorder`], the thread-local job scope, and the
//! RAII [`SpanGuard`] that times a single pipeline phase.
//!
//! Design: instrumented code never threads a recorder handle through its
//! API. Instead the campaign driver installs a [`JobScope`] on the worker
//! thread at the start of each job (one identify pass or one site
//! analysis), and every [`span`]/[`count`]/[`observe_ns`] call inside the
//! job body writes into a thread-local buffer owned by that scope. The
//! buffer is flushed into the shared [`Recorder`] exactly once, when the
//! scope drops — so recording is lock-free while the job runs.
//!
//! Span identity is deterministic: each job assigns its spans a dense
//! per-job sequence number, so the tuple `(app, seed, site, phase, seq,
//! parent)` is independent of which worker ran the job or how many
//! threads the campaign used. Only [`Phase::is_volatile`] phases
//! (scheduler queue waits) fall outside this guarantee, and they carry no
//! job context.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::audit::{ProvenanceEvent, ProvenanceRecord};
use crate::metrics::{Hist, HistSummary};

/// A pipeline phase a span can be attributed to.
///
/// The first six phases mirror the paper's enforcement pipeline
/// (identify -> extract -> solve -> enforce -> validate, plus the
/// snapshot warm pass); the `Interp*` phases attribute interpreter time
/// inside them; `QueueWait` is scheduler idle time between jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Stage-1 taint run identifying target sites for one unit.
    Identify,
    /// One-pass prefix-snapshot capture for a unit's sites.
    Warm,
    /// Stage-2 symbolic extraction of the target expression for a site.
    Extract,
    /// A single solver query (`phi' && beta` or a branch flip).
    Solve,
    /// The goal-directed branch enforcement loop for a site.
    Enforce,
    /// Re-validation of an exposed bug's generated input.
    Validate,
    /// A full concrete/taint/symbolic interpreter run from byte 0.
    InterpRun,
    /// An interpreter run resumed from a prefix snapshot.
    InterpResume,
    /// An interpreter run that captures prefix snapshots.
    InterpCapture,
    /// Scheduler time between finishing one job and starting the next.
    QueueWait,
}

impl Phase {
    /// Every phase, in canonical display order.
    pub const ALL: [Phase; 10] = [
        Phase::Identify,
        Phase::Warm,
        Phase::Extract,
        Phase::Solve,
        Phase::Enforce,
        Phase::Validate,
        Phase::InterpRun,
        Phase::InterpResume,
        Phase::InterpCapture,
        Phase::QueueWait,
    ];

    /// Stable wire name used in the JSONL schema and profile output.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Identify => "identify",
            Phase::Warm => "warm",
            Phase::Extract => "extract",
            Phase::Solve => "solve",
            Phase::Enforce => "enforce",
            Phase::Validate => "validate",
            Phase::InterpRun => "interp_run",
            Phase::InterpResume => "interp_resume",
            Phase::InterpCapture => "interp_capture",
            Phase::QueueWait => "queue_wait",
        }
    }

    /// Inverse of [`Phase::as_str`].
    pub fn parse(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.as_str() == name)
    }

    /// Volatile phases depend on scheduling (worker count, steal order)
    /// and are excluded from deterministic span-identity comparisons.
    pub fn is_volatile(self) -> bool {
        matches!(self, Phase::QueueWait)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed interval attributed to a phase within a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Pipeline phase this interval belongs to.
    pub phase: Phase,
    /// Application name, empty for volatile (context-free) spans.
    pub app: String,
    /// Seed index of the unit within its app.
    pub seed: u32,
    /// Target site label, `None` for unit-level jobs (identify/warm).
    pub site: Option<String>,
    /// Dense per-job sequence number (deterministic span identity).
    pub seq: u32,
    /// `seq` of the enclosing span within the same job, if nested.
    pub parent: Option<u32>,
    /// Monotonic start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// For solve spans under a shared query cache: whether the query hit.
    pub cache_hit: Option<bool>,
}

impl Span {
    /// Timestamp-free identity: equal across runs and thread counts for
    /// non-volatile spans.
    pub fn identity(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.app,
            self.seed,
            self.site.as_deref().unwrap_or("-"),
            self.phase,
            self.seq,
            self.parent.map_or(-1i64, i64::from),
        )
    }

    /// True when the span has no parent within its job — top-level spans
    /// partition a job's compute time and are what profile coverage sums.
    pub fn is_top_level(&self) -> bool {
        self.parent.is_none() && !self.phase.is_volatile()
    }
}

/// Everything a [`Recorder`] collected, merged into deterministic order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Spans sorted by `(app, seed, site, seq)`; volatile spans last.
    pub spans: Vec<Span>,
    /// Monotonic counters, merged by summation.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, merged before summarisation.
    pub hists: BTreeMap<String, HistSummary>,
    /// Campaign wall time, stamped by the driver before sinking.
    pub wall_ns: Option<u64>,
    /// Worker thread count, stamped by the driver before sinking.
    pub threads: Option<u32>,
}

impl Trace {
    /// Sorted timestamp-free identities of all non-volatile spans. Two
    /// campaigns over the same spec produce the same identity set
    /// regardless of thread count.
    pub fn identity_set(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .spans
            .iter()
            .filter(|s| !s.phase.is_volatile())
            .map(Span::identity)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Sum of top-level span durations (the instrumented compute time).
    pub fn top_level_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.is_top_level())
            .map(|s| s.dur_ns)
            .sum()
    }
}

/// Per-job recording buffer flushed into the recorder when the job ends.
struct JobBuf {
    recorder: Arc<Recorder>,
    app: String,
    seed: u32,
    site: Option<String>,
    audit: bool,
    next_seq: u32,
    open: Vec<u32>,
    spans: Vec<Span>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    events: Vec<ProvenanceEvent>,
}

/// One job's worth of provenance events, flushed with the job buffer.
struct ProvenanceJob {
    app: String,
    seed: u32,
    site: Option<String>,
    events: Vec<ProvenanceEvent>,
}

thread_local! {
    static ACTIVE: RefCell<Option<JobBuf>> = const { RefCell::new(None) };
}

/// Collects spans and metrics from worker threads and merges them
/// deterministically. Create one per campaign with [`Recorder::new`], or
/// use [`Recorder::disabled`] to make every instrumentation point a
/// no-op (one thread-local read and a branch).
pub struct Recorder {
    enabled: bool,
    audit: bool,
    epoch: Instant,
    shards: Mutex<Vec<Vec<Span>>>,
    counters: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, Hist>>,
    events: Mutex<Vec<ProvenanceJob>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("audit", &self.audit)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder with a fresh monotonic epoch.
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            audit: false,
            epoch: Instant::now(),
            shards: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Turn on decision-provenance auditing: [`audit_event`] calls inside
    /// job scopes are collected and merged into [`Recorder::provenance`]
    /// records. Off by default — auditing costs one event allocation per
    /// pipeline decision.
    pub fn with_audit(mut self) -> Recorder {
        self.audit = self.enabled;
        self
    }

    /// Whether this recorder collects provenance events.
    pub fn audit_enabled(&self) -> bool {
        self.audit
    }

    /// A recorder that records nothing: [`job_scope`] installs no
    /// thread-local state, so every span/metric call short-circuits.
    pub fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            ..Recorder::new()
        }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a context-free volatile span (e.g. scheduler queue wait)
    /// directly, bypassing the thread-local job buffer.
    pub fn record_volatile(&self, phase: Phase, start_ns: u64, dur_ns: u64) {
        if !self.enabled {
            return;
        }
        self.shards.lock().unwrap().push(vec![Span {
            phase,
            app: String::new(),
            seed: 0,
            site: None,
            seq: 0,
            parent: None,
            start_ns,
            dur_ns,
            cache_hit: None,
        }]);
    }

    /// Bump a named monotonic counter directly (for code that runs
    /// outside any job scope, like the scheduler).
    pub fn count_direct(&self, name: &str, delta: u64) {
        if !self.enabled || delta == 0 {
            return;
        }
        *self
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Record a nanosecond observation into a named histogram directly.
    pub fn observe_direct(&self, name: &str, ns: u64) {
        if !self.enabled {
            return;
        }
        self.hists
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .record(ns);
    }

    fn flush(
        &self,
        spans: Vec<Span>,
        counters: BTreeMap<&'static str, u64>,
        hists: BTreeMap<&'static str, Hist>,
        job: Option<ProvenanceJob>,
    ) {
        if !spans.is_empty() {
            self.shards.lock().unwrap().push(spans);
        }
        if let Some(job) = job {
            self.events.lock().unwrap().push(job);
        }
        if !counters.is_empty() {
            let mut merged = self.counters.lock().unwrap();
            for (name, delta) in counters {
                *merged.entry(name.to_string()).or_insert(0) += delta;
            }
        }
        if !hists.is_empty() {
            let mut merged = self.hists.lock().unwrap();
            for (name, h) in hists {
                merged.entry(name.to_string()).or_default().merge(&h);
            }
        }
    }

    /// Non-destructive deterministic merge of everything recorded so
    /// far. Contextful spans sort by `(app, seed, site, seq)`; volatile
    /// spans sort by start time and go last.
    pub fn trace(&self) -> Trace {
        let shards = self.shards.lock().unwrap();
        let mut spans: Vec<Span> = shards.iter().flatten().cloned().collect();
        drop(shards);
        spans.sort_by(|a, b| {
            (
                a.phase.is_volatile(),
                &a.app,
                a.seed,
                &a.site,
                a.seq,
                a.start_ns,
            )
                .cmp(&(
                    b.phase.is_volatile(),
                    &b.app,
                    b.seed,
                    &b.site,
                    b.seq,
                    b.start_ns,
                ))
        });
        Trace {
            spans,
            counters: self.counters.lock().unwrap().clone(),
            hists: self
                .hists
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            wall_ns: None,
            threads: None,
        }
    }

    /// Deterministic merge of all provenance events collected so far:
    /// one [`ProvenanceRecord`] per audited site job, sorted by
    /// `(app, seed, site)`. Empty unless the recorder was built
    /// [`Recorder::with_audit`]. Events within a record keep the order
    /// the pipeline emitted them in (site jobs run sequentially, so that
    /// order is thread-count independent).
    pub fn provenance(&self) -> Vec<ProvenanceRecord> {
        let jobs = self.events.lock().unwrap();
        let mut records: Vec<ProvenanceRecord> = jobs
            .iter()
            .filter_map(|j| {
                // Provenance is per-site; unit-level jobs (identify/warm)
                // make no audited decisions.
                let site = j.site.clone()?;
                Some(ProvenanceRecord {
                    app: j.app.clone(),
                    seed: j.seed,
                    site,
                    events: j.events.clone(),
                })
            })
            .collect();
        drop(jobs);
        records.sort_by(|a, b| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)));
        records
    }
}

/// RAII guard installing per-job recording state on the current thread.
/// Created by [`job_scope`]; flushes the job's buffer into the recorder
/// on drop. Nested scopes stack (the previous scope is restored).
pub struct JobScope {
    installed: bool,
    prev: Option<JobBuf>,
}

/// Install a recording scope for one job on the current thread. Returns
/// an inert guard when `recorder` is `None` or disabled — in that state
/// every [`span`]/[`count`]/[`observe_ns`] call in the job body is a
/// no-op.
pub fn job_scope(
    recorder: Option<&Arc<Recorder>>,
    app: &str,
    seed: u32,
    site: Option<&str>,
) -> JobScope {
    let Some(recorder) = recorder.filter(|r| r.is_enabled()) else {
        return JobScope {
            installed: false,
            prev: None,
        };
    };
    let buf = JobBuf {
        recorder: Arc::clone(recorder),
        app: app.to_string(),
        seed,
        site: site.map(str::to_string),
        audit: recorder.audit_enabled(),
        next_seq: 0,
        open: Vec::new(),
        spans: Vec::new(),
        counters: BTreeMap::new(),
        hists: BTreeMap::new(),
        events: Vec::new(),
    };
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(buf));
    JobScope {
        installed: true,
        prev,
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        let buf = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), self.prev.take()));
        if let Some(buf) = buf {
            let job = (!buf.events.is_empty()).then(|| ProvenanceJob {
                app: buf.app.clone(),
                seed: buf.seed,
                site: buf.site.clone(),
                events: buf.events,
            });
            buf.recorder.flush(buf.spans, buf.counters, buf.hists, job);
        }
    }
}

/// RAII guard timing one phase span; finalises on drop. Inert outside a
/// [`job_scope`].
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    phase: Phase,
    seq: u32,
    parent: Option<u32>,
    start_ns: u64,
    cache_hit: Option<bool>,
}

/// Start timing a phase span on the current thread. No-op (and near
/// free) when no job scope is installed.
pub fn span(phase: Phase) -> SpanGuard {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(buf) = slot.as_mut() else {
            return SpanGuard { open: None };
        };
        let seq = buf.next_seq;
        buf.next_seq += 1;
        let parent = buf.open.last().copied();
        buf.open.push(seq);
        let start_ns = buf.recorder.now_ns();
        SpanGuard {
            open: Some(OpenSpan {
                phase,
                seq,
                parent,
                start_ns,
                cache_hit: None,
            }),
        }
    })
}

impl SpanGuard {
    /// Annotate a solve span with cache-hit attribution. The annotation
    /// is advisory (racy under shared caches) and excluded from span
    /// identity.
    pub fn cache_hit(&mut self, hit: bool) {
        if let Some(open) = &mut self.open {
            open.cache_hit = Some(hit);
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(buf) = slot.as_mut() else {
                return;
            };
            if buf.open.last() == Some(&open.seq) {
                buf.open.pop();
            } else {
                buf.open.retain(|&s| s != open.seq);
            }
            let end = buf.recorder.now_ns();
            buf.spans.push(Span {
                phase: open.phase,
                app: buf.app.clone(),
                seed: buf.seed,
                site: buf.site.clone(),
                seq: open.seq,
                parent: open.parent,
                start_ns: open.start_ns,
                dur_ns: end.saturating_sub(open.start_ns),
                cache_hit: open.cache_hit,
            });
        });
    }
}

/// Bump a named monotonic counter within the current job scope (no-op
/// outside one).
pub fn count(name: &'static str, delta: u64) {
    if delta == 0 {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(buf) = a.borrow_mut().as_mut() {
            *buf.counters.entry(name).or_insert(0) += delta;
        }
    });
}

/// Record a nanosecond observation into a named histogram within the
/// current job scope (no-op outside one).
pub fn observe_ns(name: &'static str, ns: u64) {
    ACTIVE.with(|a| {
        if let Some(buf) = a.borrow_mut().as_mut() {
            buf.hists.entry(name).or_default().record(ns);
        }
    });
}

/// Whether the current job scope collects provenance events. Emitters
/// with non-trivial payloads (byte sets, fingerprints) should check this
/// first so a disabled recorder costs no allocations in the hot loop.
pub fn audit_active() -> bool {
    ACTIVE.with(|a| a.borrow().as_ref().is_some_and(|buf| buf.audit))
}

/// Append a provenance event to the current audited job scope. No-op
/// (one thread-local read and a branch) outside an auditing scope.
pub fn audit_event(event: ProvenanceEvent) {
    ACTIVE.with(|a| {
        if let Some(buf) = a.borrow_mut().as_mut() {
            if buf.audit {
                buf.events.push(event);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_outside_scope_is_noop() {
        let guard = span(Phase::Solve);
        assert!(!guard.is_active());
        drop(guard);
        count("x", 1);
        observe_ns("y", 10);
    }

    #[test]
    fn scope_records_nested_spans_with_deterministic_seq() {
        let rec = Arc::new(Recorder::new());
        {
            let _scope = job_scope(Some(&rec), "app-a", 3, Some("s@1"));
            let _outer = span(Phase::Enforce);
            {
                let mut inner = span(Phase::Solve);
                inner.cache_hit(true);
            }
            count("solver.queries", 1);
            observe_ns("lat", 5);
        }
        let trace = rec.trace();
        assert_eq!(trace.spans.len(), 2);
        // Merged order is by seq: outer (seq 0) first even though the
        // inner span finished first.
        assert_eq!(trace.spans[0].phase, Phase::Enforce);
        assert_eq!(trace.spans[0].seq, 0);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].phase, Phase::Solve);
        assert_eq!(trace.spans[1].seq, 1);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[1].cache_hit, Some(true));
        assert_eq!(trace.spans[1].app, "app-a");
        assert_eq!(trace.spans[1].site.as_deref(), Some("s@1"));
        assert_eq!(trace.counters.get("solver.queries"), Some(&1));
        assert_eq!(trace.hists.get("lat").unwrap().count, 1);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Arc::new(Recorder::disabled());
        {
            let _scope = job_scope(Some(&rec), "a", 0, None);
            let guard = span(Phase::Identify);
            assert!(!guard.is_active());
        }
        rec.record_volatile(Phase::QueueWait, 0, 10);
        rec.count_direct("c", 1);
        let trace = rec.trace();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn volatile_spans_sort_last_and_leave_identity_set() {
        let rec = Arc::new(Recorder::new());
        rec.record_volatile(Phase::QueueWait, 5, 7);
        {
            let _scope = job_scope(Some(&rec), "z", 0, None);
            let _s = span(Phase::Identify);
        }
        let trace = rec.trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].phase, Phase::Identify);
        assert_eq!(trace.spans[1].phase, Phase::QueueWait);
        assert_eq!(trace.identity_set().len(), 1);
        assert_eq!(trace.identity_set()[0], "z|0|-|identify|0|-1");
    }

    #[test]
    fn audit_events_collect_only_under_auditing_scope() {
        use crate::audit::{ProvenanceEvent, QueryOrigin, QueryVerdict};
        let event = || ProvenanceEvent::Query {
            origin: QueryOrigin::Beta,
            fingerprint: "00".to_string(),
            verdict: QueryVerdict::Sat,
            cache_hit: None,
        };
        // No scope at all.
        assert!(!audit_active());
        audit_event(event());
        // Enabled recorder without audit.
        let plain = Arc::new(Recorder::new());
        {
            let _scope = job_scope(Some(&plain), "a", 0, Some("s@1"));
            assert!(!audit_active());
            audit_event(event());
        }
        assert!(plain.provenance().is_empty());
        // Auditing recorder: events from the site job become a record;
        // events from a unit job (site None) are dropped.
        let auditing = Arc::new(Recorder::new().with_audit());
        {
            let _scope = job_scope(Some(&auditing), "a", 0, Some("s@1"));
            assert!(audit_active());
            audit_event(event());
            audit_event(event());
        }
        {
            let _scope = job_scope(Some(&auditing), "a", 0, None);
            audit_event(event());
        }
        let records = auditing.provenance();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].site, "s@1");
        assert_eq!(records[0].events.len(), 2);
    }

    #[test]
    fn identity_is_independent_of_timestamps() {
        let make = || {
            let rec = Arc::new(Recorder::new());
            {
                let _scope = job_scope(Some(&rec), "a", 1, Some("x"));
                let _s = span(Phase::Extract);
                std::hint::black_box(0u64);
            }
            rec.trace().identity_set()
        };
        assert_eq!(make(), make());
    }
}
