//! Stall and anomaly detection over the pulse stream.
//!
//! A [`Watchdog`] consumes [`PulseEvent`]s (live from a
//! [`Subscriber`](crate::Subscriber), or replayed from a telemetry
//! JSONL) and raises typed [`AnomalyReport`]s:
//!
//! - [`SlowSite`](AnomalyKind::SlowSite): a site's wall time exceeded
//!   `slow_site_factor` × the median site wall time (with an absolute
//!   floor so fast suites don't flag noise). Evaluated at
//!   [`finish`](Watchdog::finish), once the median is known.
//! - [`BudgetNoProgress`](AnomalyKind::BudgetNoProgress): a site burned
//!   its entire enforcement budget without reaching a classification
//!   (outcome `prevented:budget` — the Figure-7 loop ran
//!   `max_enforcements` candidates and learned nothing decisive).
//! - [`IdleWorker`](AnomalyKind::IdleWorker): a worker sat idle for
//!   `idle_heartbeats` consecutive samples while the queues held work —
//!   the scheduler failed to route runnable jobs to a free worker.
//! - [`CachePressure`](AnomalyKind::CachePressure): combined cache
//!   resident bytes crossed the configured ceiling.
//!
//! Reports are deduplicated (one per kind × subject), serialised to a
//! schema-versioned JSONL digest ([`anomalies_to_jsonl`]), and parsed
//! back for CI gating ([`anomalies_from_jsonl`]).
//!
//! Default thresholds are deliberately conservative — the CI deep suite
//! gates on *zero* anomalies, so only order-of-magnitude outliers may
//! fire.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::pulse::{PulseEvent, WorkerState};
use crate::sink::{parse_flat_object, push_json_str, FlatValue};

/// Version stamped into (and required from) the anomaly digest header.
pub const ANOMALY_SCHEMA_VERSION: u64 = 1;

/// The typed anomaly taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// Site wall time far above the campaign median.
    SlowSite,
    /// Enforcement budget exhausted with no decisive classification.
    BudgetNoProgress,
    /// Worker idle across consecutive heartbeats while work was queued.
    IdleWorker,
    /// Cache resident bytes above the configured ceiling.
    CachePressure,
}

impl AnomalyKind {
    /// Stable wire token.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            AnomalyKind::SlowSite => "slow_site",
            AnomalyKind::BudgetNoProgress => "budget_no_progress",
            AnomalyKind::IdleWorker => "idle_worker",
            AnomalyKind::CachePressure => "cache_pressure",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(token: &str) -> Option<AnomalyKind> {
        match token {
            "slow_site" => Some(AnomalyKind::SlowSite),
            "budget_no_progress" => Some(AnomalyKind::BudgetNoProgress),
            "idle_worker" => Some(AnomalyKind::IdleWorker),
            "cache_pressure" => Some(AnomalyKind::CachePressure),
            _ => None,
        }
    }
}

/// One raised anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyReport {
    /// Which detector fired.
    pub kind: AnomalyKind,
    /// Subject: `app/seed/site` for site anomalies, `worker:<i>` for
    /// idle workers, `cache` for cache pressure.
    pub subject: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Observed value (ns for time anomalies, bytes for cache,
    /// heartbeat count for idle workers).
    pub value: u64,
    /// Threshold the value crossed.
    pub threshold: u64,
}

/// Detector thresholds. Defaults are conservative enough that a
/// healthy deep-suite CI run raises nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// SlowSite fires above `slow_site_factor` × median site wall time.
    pub slow_site_factor: f64,
    /// ... but never below this absolute wall time (ns).
    pub slow_site_floor_ns: u64,
    /// Median is only trusted with at least this many finished sites.
    pub min_sites_for_median: usize,
    /// IdleWorker fires after this many consecutive idle-with-backlog
    /// heartbeats.
    pub idle_heartbeats: u32,
    /// CachePressure ceiling over combined solver + snapshot resident
    /// bytes; `None` disables the detector.
    pub cache_ceiling_bytes: Option<u64>,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            slow_site_factor: 8.0,
            slow_site_floor_ns: 250_000_000,
            min_sites_for_median: 8,
            idle_heartbeats: 40,
            cache_ceiling_bytes: None,
        }
    }
}

/// Accumulating anomaly detector over a pulse stream.
pub struct Watchdog {
    config: WatchdogConfig,
    /// (subject, wall_ns) per finished site, in arrival order.
    sites: Vec<(String, u64)>,
    /// Consecutive idle-with-backlog heartbeats per worker index.
    idle_streaks: Vec<u32>,
    anomalies: Vec<AnomalyReport>,
    /// Dedup set: (kind token, subject).
    raised: BTreeMap<(&'static str, String), ()>,
}

impl Watchdog {
    /// A watchdog with the given thresholds.
    #[must_use]
    pub fn new(config: WatchdogConfig) -> Watchdog {
        Watchdog {
            config,
            sites: Vec::new(),
            idle_streaks: Vec::new(),
            anomalies: Vec::new(),
            raised: BTreeMap::new(),
        }
    }

    fn raise(
        &mut self,
        kind: AnomalyKind,
        subject: String,
        detail: String,
        value: u64,
        threshold: u64,
    ) {
        if self
            .raised
            .insert((kind.as_str(), subject.clone()), ())
            .is_none()
        {
            self.anomalies.push(AnomalyReport {
                kind,
                subject,
                detail,
                value,
                threshold,
            });
        }
    }

    /// Feeds one event through every detector.
    pub fn feed(&mut self, event: &PulseEvent) {
        match event {
            PulseEvent::SiteFinished {
                app,
                seed,
                site,
                outcome,
                wall_ns,
                ..
            } => {
                let subject = format!("{app}/{seed}/{site}");
                self.sites.push((subject.clone(), *wall_ns));
                if outcome == "prevented:budget" {
                    self.raise(
                        AnomalyKind::BudgetNoProgress,
                        subject,
                        "enforcement budget exhausted without a decisive classification".into(),
                        *wall_ns,
                        0,
                    );
                }
            }
            PulseEvent::Heartbeat(hb) => {
                if self.idle_streaks.len() < hb.workers.len() {
                    self.idle_streaks.resize(hb.workers.len(), 0);
                }
                let backlog = hb.queued > 0;
                for (i, state) in hb.workers.iter().enumerate() {
                    if backlog && matches!(state, WorkerState::Idle) {
                        self.idle_streaks[i] += 1;
                        if self.idle_streaks[i] >= self.config.idle_heartbeats {
                            let streak = self.idle_streaks[i];
                            self.raise(
                                AnomalyKind::IdleWorker,
                                format!("worker:{i}"),
                                format!(
                                    "worker {i} idle for {streak} consecutive heartbeats \
                                     with {} queued job(s)",
                                    hb.queued
                                ),
                                u64::from(streak),
                                u64::from(self.config.idle_heartbeats),
                            );
                        }
                    } else {
                        self.idle_streaks[i] = 0;
                    }
                }
                if let Some(ceiling) = self.config.cache_ceiling_bytes {
                    let resident = hb.cache_bytes + hb.snapshot_bytes;
                    if resident > ceiling {
                        self.raise(
                            AnomalyKind::CachePressure,
                            "cache".into(),
                            format!(
                                "solver+snapshot caches hold {resident} bytes \
                                 (ceiling {ceiling})"
                            ),
                            resident,
                            ceiling,
                        );
                    }
                }
            }
            PulseEvent::UnitStarted { .. }
            | PulseEvent::SitesIdentified { .. }
            | PulseEvent::Finished { .. } => {}
        }
    }

    /// Runs the end-of-stream detectors (SlowSite needs the final
    /// median) and returns every anomaly raised.
    #[must_use]
    pub fn finish(mut self) -> Vec<AnomalyReport> {
        if self.sites.len() >= self.config.min_sites_for_median {
            let mut walls: Vec<u64> = self.sites.iter().map(|(_, w)| *w).collect();
            walls.sort_unstable();
            let median = walls[walls.len() / 2];
            let scaled = (median as f64 * self.config.slow_site_factor) as u64;
            let threshold = scaled.max(self.config.slow_site_floor_ns);
            let slow: Vec<(String, u64)> = self
                .sites
                .iter()
                .filter(|(_, w)| *w > threshold)
                .cloned()
                .collect();
            for (subject, wall) in slow {
                let ms = wall / 1_000_000;
                let med_ms = median / 1_000_000;
                self.raise(
                    AnomalyKind::SlowSite,
                    subject,
                    format!("site took {ms}ms against a campaign median of {med_ms}ms"),
                    wall,
                    threshold,
                );
            }
        }
        self.anomalies
    }
}

/// Serialises anomalies to the schema-versioned JSONL digest.
#[must_use]
pub fn anomalies_to_jsonl(anomalies: &[AnomalyReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"anomalies\",\"v\":{ANOMALY_SCHEMA_VERSION},\"count\":{}}}",
        anomalies.len()
    );
    for a in anomalies {
        out.push_str("{\"type\":\"anomaly\",\"kind\":");
        push_json_str(&mut out, a.kind.as_str());
        out.push_str(",\"subject\":");
        push_json_str(&mut out, &a.subject);
        out.push_str(",\"detail\":");
        push_json_str(&mut out, &a.detail);
        let _ = writeln!(
            out,
            ",\"value\":{},\"threshold\":{}}}",
            a.value, a.threshold
        );
    }
    out
}

/// Parses a digest produced by [`anomalies_to_jsonl`]. Strict on the
/// header version and the declared count.
pub fn anomalies_from_jsonl(text: &str) -> Result<Vec<AnomalyReport>, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header)) = lines.next() else {
        return Err("anomalies: empty input (missing header line)".into());
    };
    let head = parse_flat_object(header).map_err(|e| format!("anomalies line 1: {e}"))?;
    if head.get("type").and_then(FlatValue::as_str) != Some("anomalies") {
        return Err("anomalies: first line must be the header {\"type\":\"anomalies\",...}".into());
    }
    match head.get("v").and_then(FlatValue::as_u64) {
        Some(ANOMALY_SCHEMA_VERSION) => {}
        Some(v) => {
            return Err(format!(
                "anomalies: unsupported schema version {v} (expected {ANOMALY_SCHEMA_VERSION})"
            ))
        }
        None => return Err("anomalies: header missing integer field \"v\"".into()),
    }
    let declared = head.get("count").and_then(FlatValue::as_u64);
    let mut out = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let obj = parse_flat_object(line).map_err(|e| format!("anomalies line {lineno}: {e}"))?;
        if obj.get("type").and_then(FlatValue::as_str) != Some("anomaly") {
            return Err(format!(
                "anomalies line {lineno}: expected an anomaly record"
            ));
        }
        let kind_token = obj
            .get("kind")
            .and_then(FlatValue::as_str)
            .ok_or_else(|| format!("anomalies line {lineno}: missing \"kind\""))?;
        let kind = AnomalyKind::parse(kind_token)
            .ok_or_else(|| format!("anomalies line {lineno}: unknown kind {kind_token:?}"))?;
        let field = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(FlatValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("anomalies line {lineno}: missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(FlatValue::as_u64)
                .ok_or_else(|| format!("anomalies line {lineno}: missing integer field {key:?}"))
        };
        out.push(AnomalyReport {
            kind,
            subject: field("subject")?,
            detail: field("detail")?,
            value: num("value")?,
            threshold: num("threshold")?,
        });
    }
    if let Some(n) = declared {
        if n as usize != out.len() {
            return Err(format!(
                "anomalies: header declares {n} record(s) but {} parsed",
                out.len()
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::HeartbeatSample;

    fn finished(site: &str, outcome: &str, wall_ns: u64) -> PulseEvent {
        PulseEvent::SiteFinished {
            app: "app".into(),
            seed: 0,
            site: site.into(),
            outcome: outcome.into(),
            wall_ns,
            cache_bytes: 0,
            snapshot_bytes: 0,
            peak_heap_bytes: 0,
        }
    }

    fn heartbeat(queued: u64, workers: Vec<WorkerState>) -> PulseEvent {
        PulseEvent::Heartbeat(HeartbeatSample {
            queued,
            workers,
            ..HeartbeatSample::default()
        })
    }

    fn tight_config() -> WatchdogConfig {
        WatchdogConfig {
            slow_site_factor: 4.0,
            slow_site_floor_ns: 0,
            min_sites_for_median: 4,
            idle_heartbeats: 3,
            cache_ceiling_bytes: Some(1000),
        }
    }

    #[test]
    fn slow_site_fires_above_factor_times_median() {
        let mut wd = Watchdog::new(tight_config());
        for i in 0..8 {
            wd.feed(&finished(&format!("b0@{i}"), "exposed", 100));
        }
        wd.feed(&finished("b0@99", "exposed", 10_000));
        let anomalies = wd.finish();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::SlowSite);
        assert_eq!(anomalies[0].subject, "app/0/b0@99");
        assert_eq!(anomalies[0].value, 10_000);
    }

    #[test]
    fn slow_site_respects_floor_and_minimum_sample() {
        // Floor above every wall time: nothing fires.
        let mut cfg = tight_config();
        cfg.slow_site_floor_ns = 1_000_000;
        let mut wd = Watchdog::new(cfg);
        for i in 0..8 {
            wd.feed(&finished(&format!("b0@{i}"), "exposed", 100));
        }
        wd.feed(&finished("b0@99", "exposed", 10_000));
        assert!(wd.finish().is_empty());

        // Too few sites for a trustworthy median: nothing fires.
        let mut wd = Watchdog::new(tight_config());
        wd.feed(&finished("b0@0", "exposed", 100));
        wd.feed(&finished("b0@1", "exposed", 10_000));
        assert!(wd.finish().is_empty());
    }

    #[test]
    fn budget_exhaustion_raises_once_per_site() {
        let mut wd = Watchdog::new(tight_config());
        wd.feed(&finished("b0@0", "prevented:budget", 50));
        wd.feed(&finished("b0@0", "prevented:budget", 60));
        wd.feed(&finished("b0@1", "prevented:constraint-unsat:3", 50));
        let anomalies = wd.finish();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::BudgetNoProgress);
    }

    #[test]
    fn idle_worker_needs_consecutive_backlogged_heartbeats() {
        let mut wd = Watchdog::new(tight_config());
        let idle_pair = vec![WorkerState::Idle, WorkerState::Idle];
        let busy = vec![
            WorkerState::Unit {
                app: "a".into(),
                seed: 0,
            },
            WorkerState::Idle,
        ];
        wd.feed(&heartbeat(1, idle_pair.clone()));
        wd.feed(&heartbeat(1, idle_pair.clone()));
        wd.feed(&heartbeat(0, idle_pair.clone())); // no backlog: streak resets
        wd.feed(&heartbeat(1, idle_pair.clone()));
        wd.feed(&heartbeat(1, idle_pair.clone()));
        assert!(Watchdog::new(tight_config()).finish().is_empty());
        // Streaks were reset, so nothing fired yet.
        let wd_anoms = wd.finish();
        assert!(wd_anoms.is_empty(), "{wd_anoms:?}");

        let mut wd = Watchdog::new(tight_config());
        for _ in 0..3 {
            wd.feed(&heartbeat(2, busy.clone()));
        }
        let anomalies = wd.finish();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::IdleWorker);
        assert_eq!(anomalies[0].subject, "worker:1");
    }

    #[test]
    fn cache_pressure_fires_once_above_ceiling() {
        let mut wd = Watchdog::new(tight_config());
        let mut hb = HeartbeatSample {
            cache_bytes: 600,
            snapshot_bytes: 300,
            ..HeartbeatSample::default()
        };
        wd.feed(&PulseEvent::Heartbeat(hb.clone()));
        hb.cache_bytes = 900;
        wd.feed(&PulseEvent::Heartbeat(hb.clone()));
        wd.feed(&PulseEvent::Heartbeat(hb));
        let anomalies = wd.finish();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::CachePressure);
        assert_eq!(anomalies[0].value, 1200);
        assert_eq!(anomalies[0].threshold, 1000);
    }

    #[test]
    fn digest_round_trips() {
        let reports = vec![
            AnomalyReport {
                kind: AnomalyKind::SlowSite,
                subject: "app/0/b0@7".into(),
                detail: "site took 900ms against a campaign median of 12ms".into(),
                value: 900_000_000,
                threshold: 250_000_000,
            },
            AnomalyReport {
                kind: AnomalyKind::CachePressure,
                subject: "cache".into(),
                detail: "solver+snapshot caches hold 2048 bytes (ceiling 1024)".into(),
                value: 2048,
                threshold: 1024,
            },
        ];
        let text = anomalies_to_jsonl(&reports);
        assert_eq!(anomalies_from_jsonl(&text).unwrap(), reports);
        assert_eq!(
            anomalies_from_jsonl(&anomalies_to_jsonl(&[])).unwrap(),
            vec![]
        );
    }

    #[test]
    fn digest_rejects_bad_input() {
        assert!(anomalies_from_jsonl("").unwrap_err().contains("empty"));
        assert!(anomalies_from_jsonl("{\"type\":\"anomalies\",\"v\":99}\n")
            .unwrap_err()
            .contains("unsupported schema version"));
        let wrong_count = "{\"type\":\"anomalies\",\"v\":1,\"count\":5}\n";
        assert!(anomalies_from_jsonl(wrong_count)
            .unwrap_err()
            .contains("declares 5"));
        let bad_kind = "{\"type\":\"anomalies\",\"v\":1,\"count\":1}\n\
            {\"type\":\"anomaly\",\"kind\":\"gremlin\",\"subject\":\"x\",\"detail\":\"d\",\"value\":1,\"threshold\":2}\n";
        assert!(anomalies_from_jsonl(bad_kind)
            .unwrap_err()
            .contains("unknown kind"));
    }

    #[test]
    fn anomaly_kind_tokens_round_trip() {
        for kind in [
            AnomalyKind::SlowSite,
            AnomalyKind::BudgetNoProgress,
            AnomalyKind::IdleWorker,
            AnomalyKind::CachePressure,
        ] {
            assert_eq!(AnomalyKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(AnomalyKind::parse("nope"), None);
    }
}
