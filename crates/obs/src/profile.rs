//! Folding a trace into per-phase / per-site breakdowns, a human table,
//! JSON output, and collapsed stacks for flamegraph tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{Phase, Span, Trace};

/// Aggregated timing for one phase across the whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Which phase.
    pub phase: Phase,
    /// Number of spans recorded for the phase.
    pub count: u64,
    /// Sum of span durations (includes nested child spans).
    pub total_ns: u64,
    /// Sum of span durations minus time spent in child spans.
    pub self_ns: u64,
    /// Median span duration.
    pub p50_ns: u64,
    /// 99th-percentile span duration.
    pub p99_ns: u64,
}

/// Per-phase summary of a campaign trace — the `phases` field of a
/// campaign report, and the core of the `profile` subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// One row per phase that appeared, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseRow>,
    /// Sum of top-level (parentless, non-volatile) span durations: the
    /// instrumented compute time. Compare against `wall * threads`.
    pub top_level_ns: u64,
    /// Total scheduler queue-wait time across workers.
    pub queue_wait_ns: u64,
}

impl PhaseBreakdown {
    /// Fold a trace into per-phase rows.
    pub fn from_trace(trace: &Trace) -> PhaseBreakdown {
        // children_ns[job_key][seq] = total child duration of that span.
        let mut children: BTreeMap<(&str, u32, Option<&str>), BTreeMap<u32, u64>> = BTreeMap::new();
        for span in &trace.spans {
            if let Some(parent) = span.parent {
                *children
                    .entry((span.app.as_str(), span.seed, span.site.as_deref()))
                    .or_default()
                    .entry(parent)
                    .or_insert(0) += span.dur_ns;
            }
        }
        let mut durs: BTreeMap<Phase, Vec<u64>> = BTreeMap::new();
        let mut selfs: BTreeMap<Phase, u64> = BTreeMap::new();
        let mut queue_wait_ns = 0u64;
        for span in &trace.spans {
            if span.phase == Phase::QueueWait {
                queue_wait_ns += span.dur_ns;
            }
            durs.entry(span.phase).or_default().push(span.dur_ns);
            let nested = children
                .get(&(span.app.as_str(), span.seed, span.site.as_deref()))
                .and_then(|m| m.get(&span.seq))
                .copied()
                .unwrap_or(0);
            *selfs.entry(span.phase).or_insert(0) += span.dur_ns.saturating_sub(nested);
        }
        let phases = Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let mut d = durs.remove(&phase)?;
                d.sort_unstable();
                let count = d.len() as u64;
                Some(PhaseRow {
                    phase,
                    count,
                    total_ns: d.iter().sum(),
                    self_ns: selfs.get(&phase).copied().unwrap_or(0),
                    p50_ns: quantile_sorted(&d, 0.50),
                    p99_ns: quantile_sorted(&d, 0.99),
                })
            })
            .collect();
        PhaseBreakdown {
            phases,
            top_level_ns: trace.top_level_ns(),
            queue_wait_ns,
        }
    }

    /// Row for one phase, if it appeared in the trace.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseRow> {
        self.phases.iter().find(|r| r.phase == phase)
    }

    /// Queue wait as a fraction of all attributed worker time
    /// (`wait / (wait + compute)`); 0 when nothing was recorded.
    pub fn queue_wait_ratio(&self) -> f64 {
        let denom = self.queue_wait_ns + self.top_level_ns;
        if denom == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / denom as f64
        }
    }
}

fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Total top-level time attributed to one site job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRow {
    /// Application name.
    pub app: String,
    /// Unit seed index.
    pub seed: u32,
    /// Target site label.
    pub site: String,
    /// Sum of the job's top-level span durations.
    pub total_ns: u64,
    /// Number of spans the job recorded (all levels).
    pub spans: u64,
}

/// Full profile of a campaign trace: phase breakdown, slowest sites,
/// wall-time coverage, and merged metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Per-phase rows plus top-level/queue-wait totals.
    pub breakdown: PhaseBreakdown,
    /// Slowest site jobs, descending by attributed time.
    pub top_sites: Vec<SiteRow>,
    /// Campaign wall time, if the trace was stamped with one.
    pub wall_ns: Option<u64>,
    /// Worker thread count, if stamped.
    pub threads: Option<u32>,
    /// Merged counters from the trace.
    pub counters: BTreeMap<String, u64>,
}

impl ProfileReport {
    /// Fold a trace, keeping the `top_n` slowest sites.
    pub fn from_trace(trace: &Trace, top_n: usize) -> ProfileReport {
        let mut sites: BTreeMap<(&str, u32, &str), (u64, u64)> = BTreeMap::new();
        for span in &trace.spans {
            let Some(site) = span.site.as_deref() else {
                continue;
            };
            let entry = sites
                .entry((span.app.as_str(), span.seed, site))
                .or_insert((0, 0));
            if span.is_top_level() {
                entry.0 += span.dur_ns;
            }
            entry.1 += 1;
        }
        let mut top_sites: Vec<SiteRow> = sites
            .into_iter()
            .map(|((app, seed, site), (total_ns, spans))| SiteRow {
                app: app.to_string(),
                seed,
                site: site.to_string(),
                total_ns,
                spans,
            })
            .collect();
        top_sites.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)))
        });
        top_sites.truncate(top_n);
        ProfileReport {
            breakdown: PhaseBreakdown::from_trace(trace),
            top_sites,
            wall_ns: trace.wall_ns,
            threads: trace.threads,
            counters: trace.counters.clone(),
        }
    }

    /// Fraction of total worker capacity (`wall * threads`) covered by
    /// top-level spans. `None` when the trace has no wall-time stamp.
    pub fn coverage(&self) -> Option<f64> {
        let wall = self.wall_ns? as f64;
        let threads = self.threads.unwrap_or(1).max(1) as f64;
        if wall <= 0.0 {
            return None;
        }
        Some(self.breakdown.top_level_ns as f64 / (wall * threads))
    }

    /// Fraction of campaign wall time covered by top-level spans,
    /// assuming perfectly serialised work (`top_level / wall`). For a
    /// single-threaded campaign this is the acceptance-criterion number.
    pub fn serial_coverage(&self) -> Option<f64> {
        let wall = self.wall_ns? as f64;
        if wall <= 0.0 {
            return None;
        }
        Some(self.breakdown.top_level_ns as f64 / wall)
    }

    /// JSON object (single line) with the whole report. Parseable by
    /// any JSON reader, including `diode_corpus::Json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"table\":\"obs_profile\",\"v\":1");
        if let Some(wall) = self.wall_ns {
            let _ = write!(out, ",\"wall_ms\":{}", ms(wall));
        }
        if let Some(threads) = self.threads {
            let _ = write!(out, ",\"threads\":{threads}");
        }
        let _ = write!(
            out,
            ",\"top_level_ms\":{},\"queue_wait_ms\":{},\"queue_wait_ratio\":{}",
            ms(self.breakdown.top_level_ns),
            ms(self.breakdown.queue_wait_ns),
            fmt_f64(self.breakdown.queue_wait_ratio()),
        );
        if let Some(cov) = self.coverage() {
            let _ = write!(out, ",\"coverage\":{}", fmt_f64(cov));
        }
        out.push_str(",\"phases\":[");
        for (i, row) in self.breakdown.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"count\":{},\"total_ms\":{},\"self_ms\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
                row.phase,
                row.count,
                ms(row.total_ns),
                ms(row.self_ns),
                ms(row.p50_ns),
                ms(row.p99_ns),
            );
        }
        out.push_str("],\"top_sites\":[");
        for (i, s) in self.top_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"app\":\"{}\",\"seed\":{},\"site\":\"{}\",\"total_ms\":{},\"spans\":{}}}",
                escape(&s.app),
                s.seed,
                escape(&s.site),
                ms(s.total_ns),
                s.spans,
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", escape(name));
        }
        out.push_str("}}");
        out
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Campaign profile ==\n");
        if let (Some(wall), Some(threads)) = (self.wall_ns, self.threads) {
            let _ = writeln!(
                out,
                "wall {:.1} ms on {threads} thread(s); instrumented compute {:.1} ms ({:.0}% of capacity), queue wait {:.1} ms ({:.1}% of worker time)",
                ms(wall),
                ms(self.breakdown.top_level_ns),
                self.coverage().unwrap_or(0.0) * 100.0,
                ms(self.breakdown.queue_wait_ns),
                self.breakdown.queue_wait_ratio() * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "{:<15} {:>7} {:>12} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "self ms", "p50 ms", "p99 ms"
        );
        for row in &self.breakdown.phases {
            let _ = writeln!(
                out,
                "{:<15} {:>7} {:>12.3} {:>12.3} {:>10.3} {:>10.3}",
                row.phase.as_str(),
                row.count,
                ms(row.total_ns),
                ms(row.self_ns),
                ms(row.p50_ns),
                ms(row.p99_ns),
            );
        }
        if !self.top_sites.is_empty() {
            let _ = writeln!(out, "top {} slowest sites:", self.top_sites.len());
            for s in &self.top_sites {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10.3} ms  ({} spans)",
                    format!("{}/{}", s.app, s.site),
                    ms(s.total_ns),
                    s.spans,
                );
            }
        }
        out
    }
}

/// One phase's timing across two profiled runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Which phase.
    pub phase: Phase,
    /// Phase total in the old run, milliseconds.
    pub old_ms: f64,
    /// Phase total in the new run, milliseconds.
    pub new_ms: f64,
}

impl PhaseDelta {
    /// Signed change, milliseconds (positive = regression).
    pub fn delta_ms(&self) -> f64 {
        self.new_ms - self.old_ms
    }
}

/// One site's attributed time across two profiled runs. Sites appear
/// when either run ranked them among its slowest.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDelta {
    /// Application name.
    pub app: String,
    /// Unit seed index.
    pub seed: u32,
    /// Target site label.
    pub site: String,
    /// Attributed time in the old run, milliseconds.
    pub old_ms: f64,
    /// Attributed time in the new run, milliseconds.
    pub new_ms: f64,
}

impl SiteDelta {
    /// Signed change, milliseconds (positive = regression).
    pub fn delta_ms(&self) -> f64 {
        self.new_ms - self.old_ms
    }
}

/// Comparison of two [`ProfileReport`]s that attributes a wall-clock
/// regression to specific phases, sites, and solver-cache hit-rate
/// shifts — so a trajectory gate failure can say *where* the time went.
///
/// A phase is *attributed* when its total grew by more than
/// `threshold` relative to its own old time AND by more than a quarter
/// of `threshold` relative to the whole run's instrumented compute —
/// real growth, material to the run, not just its own noise. Diffing a
/// report against itself attributes nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Old run's wall time, ms, when stamped.
    pub old_wall_ms: Option<f64>,
    /// New run's wall time, ms, when stamped.
    pub new_wall_ms: Option<f64>,
    /// Old run's instrumented compute (top-level span total), ms.
    pub old_compute_ms: f64,
    /// New run's instrumented compute, ms.
    pub new_compute_ms: f64,
    /// Union of both runs' phases, canonical phase order.
    pub phases: Vec<PhaseDelta>,
    /// Largest per-site shifts, descending by absolute change.
    pub sites: Vec<SiteDelta>,
    /// Old run's solver-cache hit rate, when its counters were recorded.
    pub old_hit_rate: Option<f64>,
    /// New run's solver-cache hit rate.
    pub new_hit_rate: Option<f64>,
    /// Relative attribution threshold used by [`ProfileDiff::attributed`].
    pub threshold: f64,
}

impl ProfileDiff {
    /// Compare two reports, keeping the `top_n` largest site shifts and
    /// attributing phases whose growth exceeds `threshold` (a fraction
    /// of the old run's instrumented compute; 0.15 mirrors the
    /// trajectory gate).
    pub fn between(
        old: &ProfileReport,
        new: &ProfileReport,
        top_n: usize,
        threshold: f64,
    ) -> ProfileDiff {
        let mut old_phases: BTreeMap<Phase, u64> = BTreeMap::new();
        for row in &old.breakdown.phases {
            old_phases.insert(row.phase, row.total_ns);
        }
        let mut new_phases: BTreeMap<Phase, u64> = BTreeMap::new();
        for row in &new.breakdown.phases {
            new_phases.insert(row.phase, row.total_ns);
        }
        let phases = Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let old_ns = old_phases.get(&phase).copied();
                let new_ns = new_phases.get(&phase).copied();
                if old_ns.is_none() && new_ns.is_none() {
                    return None;
                }
                Some(PhaseDelta {
                    phase,
                    old_ms: ms(old_ns.unwrap_or(0)),
                    new_ms: ms(new_ns.unwrap_or(0)),
                })
            })
            .collect();
        let mut site_times: BTreeMap<(String, u32, String), (f64, f64)> = BTreeMap::new();
        for s in &old.top_sites {
            site_times
                .entry((s.app.clone(), s.seed, s.site.clone()))
                .or_insert((0.0, 0.0))
                .0 = ms(s.total_ns);
        }
        for s in &new.top_sites {
            site_times
                .entry((s.app.clone(), s.seed, s.site.clone()))
                .or_insert((0.0, 0.0))
                .1 = ms(s.total_ns);
        }
        let mut sites: Vec<SiteDelta> = site_times
            .into_iter()
            .map(|((app, seed, site), (old_ms, new_ms))| SiteDelta {
                app,
                seed,
                site,
                old_ms,
                new_ms,
            })
            .collect();
        sites.sort_by(|a, b| {
            b.delta_ms()
                .abs()
                .partial_cmp(&a.delta_ms().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)))
        });
        sites.truncate(top_n);
        ProfileDiff {
            old_wall_ms: old.wall_ns.map(ms),
            new_wall_ms: new.wall_ns.map(ms),
            old_compute_ms: ms(old.breakdown.top_level_ns),
            new_compute_ms: ms(new.breakdown.top_level_ns),
            phases,
            sites,
            old_hit_rate: hit_rate(&old.counters),
            new_hit_rate: hit_rate(&new.counters),
            threshold,
        }
    }

    /// Relative wall-time change (`(new - old) / old`), when both runs
    /// were stamped. Positive = regression.
    pub fn wall_regression(&self) -> Option<f64> {
        let (old, new) = (self.old_wall_ms?, self.new_wall_ms?);
        if old <= 0.0 {
            return None;
        }
        Some((new - old) / old)
    }

    /// Phases whose growth exceeds the attribution threshold, largest
    /// regression first. Empty means no attributed regression.
    pub fn attributed(&self) -> Vec<&PhaseDelta> {
        // Two conditions, both scaled by the threshold: the phase must
        // have grown materially relative to itself (more than
        // `threshold` of its own old time — a 15% default) AND relative
        // to the whole run (more than a quarter of `threshold` of the
        // larger run's instrumented compute), so noise in a tiny phase
        // never attributes while a genuinely inflated phase — even one
        // that is a modest slice of the run, like solve with the cache
        // disabled — always does. The compute basis takes the larger
        // run so a huge regression can't shrink its own yardstick.
        let compute = self.old_compute_ms.max(self.new_compute_ms).max(1e-3);
        let floor = self.threshold * 0.25 * compute;
        let mut hits: Vec<&PhaseDelta> = self
            .phases
            .iter()
            .filter(|d| {
                !d.phase.is_volatile()
                    && d.delta_ms() > floor
                    && d.delta_ms() > self.threshold * d.old_ms.max(1e-3)
            })
            .collect();
        hits.sort_by(|a, b| {
            b.delta_ms()
                .partial_cmp(&a.delta_ms())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        hits
    }

    /// Change in solver-cache hit rate (`new - old`), when both runs
    /// recorded solver counters. Negative = the cache got colder.
    pub fn hit_rate_delta(&self) -> Option<f64> {
        Some(self.new_hit_rate? - self.old_hit_rate?)
    }

    /// Whether the diff attributes any regression.
    pub fn is_regression(&self) -> bool {
        !self.attributed().is_empty()
    }

    /// JSON object (single line) with the whole diff.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"table\":\"obs_profile_diff\",\"v\":1");
        if let Some(wall) = self.old_wall_ms {
            let _ = write!(out, ",\"old_wall_ms\":{}", fmt_f64(wall));
        }
        if let Some(wall) = self.new_wall_ms {
            let _ = write!(out, ",\"new_wall_ms\":{}", fmt_f64(wall));
        }
        if let Some(reg) = self.wall_regression() {
            let _ = write!(out, ",\"wall_regression\":{}", fmt_f64(reg));
        }
        let _ = write!(
            out,
            ",\"old_compute_ms\":{},\"new_compute_ms\":{},\"threshold\":{}",
            fmt_f64(self.old_compute_ms),
            fmt_f64(self.new_compute_ms),
            fmt_f64(self.threshold),
        );
        out.push_str(",\"phases\":[");
        for (i, d) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"old_ms\":{},\"new_ms\":{},\"delta_ms\":{}}}",
                d.phase,
                fmt_f64(d.old_ms),
                fmt_f64(d.new_ms),
                fmt_f64(d.delta_ms()),
            );
        }
        out.push_str("],\"attributed\":[");
        for (i, d) in self.attributed().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", d.phase);
        }
        out.push_str("],\"sites\":[");
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"app\":\"{}\",\"seed\":{},\"site\":\"{}\",\"old_ms\":{},\"new_ms\":{},\"delta_ms\":{}}}",
                escape(&s.app),
                s.seed,
                escape(&s.site),
                fmt_f64(s.old_ms),
                fmt_f64(s.new_ms),
                fmt_f64(s.delta_ms()),
            );
        }
        out.push(']');
        if let Some(rate) = self.old_hit_rate {
            let _ = write!(out, ",\"old_cache_hit_rate\":{}", fmt_f64(rate));
        }
        if let Some(rate) = self.new_hit_rate {
            let _ = write!(out, ",\"new_cache_hit_rate\":{}", fmt_f64(rate));
        }
        if let Some(delta) = self.hit_rate_delta() {
            let _ = write!(out, ",\"cache_hit_rate_delta\":{}", fmt_f64(delta));
        }
        let _ = write!(out, ",\"regressed\":{}}}", self.is_regression());
        out
    }

    /// Human-readable attribution report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Profile diff (old -> new) ==\n");
        if let Some(reg) = self.wall_regression() {
            let _ = writeln!(
                out,
                "wall {:.1} ms -> {:.1} ms ({:+.1}%)",
                self.old_wall_ms.unwrap_or(0.0),
                self.new_wall_ms.unwrap_or(0.0),
                reg * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "instrumented compute {:.1} ms -> {:.1} ms",
            self.old_compute_ms, self.new_compute_ms
        );
        let _ = writeln!(
            out,
            "{:<15} {:>12} {:>12} {:>12}",
            "phase", "old ms", "new ms", "delta ms"
        );
        for d in &self.phases {
            let _ = writeln!(
                out,
                "{:<15} {:>12.3} {:>12.3} {:>+12.3}",
                d.phase.as_str(),
                d.old_ms,
                d.new_ms,
                d.delta_ms(),
            );
        }
        if let Some(delta) = self.hit_rate_delta() {
            let _ = writeln!(
                out,
                "solver cache hit rate {:.1}% -> {:.1}% ({:+.1} pt)",
                self.old_hit_rate.unwrap_or(0.0) * 100.0,
                self.new_hit_rate.unwrap_or(0.0) * 100.0,
                delta * 100.0,
            );
        }
        let attributed = self.attributed();
        if attributed.is_empty() {
            let _ = writeln!(
                out,
                "no attributed regression (threshold {:.0}% phase growth)",
                self.threshold * 100.0
            );
        } else {
            let names: Vec<&str> = attributed.iter().map(|d| d.phase.as_str()).collect();
            let _ = writeln!(
                out,
                "REGRESSION attributed to: {} (threshold {:.0}% phase growth)",
                names.join(", "),
                self.threshold * 100.0
            );
        }
        for s in self
            .sites
            .iter()
            .filter(|s| s.delta_ms().abs() > 0.0)
            .take(5)
        {
            let _ = writeln!(
                out,
                "  site {}/{}/{}: {:.3} ms -> {:.3} ms ({:+.3})",
                s.app,
                s.seed,
                s.site,
                s.old_ms,
                s.new_ms,
                s.delta_ms(),
            );
        }
        out
    }
}

fn hit_rate(counters: &BTreeMap<String, u64>) -> Option<f64> {
    let queries = counters.get("solver.queries").copied()?;
    if queries == 0 {
        return None;
    }
    let hits = counters.get("solver.cache_hits").copied().unwrap_or(0);
    Some(hits as f64 / queries as f64)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Fold a trace into collapsed-stack lines (`frame;frame;... weight`)
/// suitable for `flamegraph.pl` / `inferno-flamegraph`. Weights are the
/// span self-times in nanoseconds; frames are `app;site;phase...`.
pub fn collapsed_stacks(trace: &Trace) -> String {
    // Index spans per job so parent chains resolve.
    let mut jobs: BTreeMap<(&str, u32, Option<&str>), BTreeMap<u32, &Span>> = BTreeMap::new();
    for span in &trace.spans {
        if span.phase.is_volatile() {
            continue;
        }
        jobs.entry((span.app.as_str(), span.seed, span.site.as_deref()))
            .or_default()
            .insert(span.seq, span);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for ((app, _seed, site), by_seq) in &jobs {
        let mut children_ns: BTreeMap<u32, u64> = BTreeMap::new();
        for span in by_seq.values() {
            if let Some(parent) = span.parent {
                *children_ns.entry(parent).or_insert(0) += span.dur_ns;
            }
        }
        for span in by_seq.values() {
            let mut frames = vec![span.phase.as_str()];
            let mut cursor = span.parent;
            while let Some(seq) = cursor {
                match by_seq.get(&seq) {
                    Some(parent) => {
                        frames.push(parent.phase.as_str());
                        cursor = parent.parent;
                    }
                    None => break,
                }
            }
            frames.push(site.unwrap_or("unit"));
            frames.push(app);
            frames.reverse();
            let self_ns = span
                .dur_ns
                .saturating_sub(children_ns.get(&span.seq).copied().unwrap_or(0));
            if self_ns > 0 {
                *folded.entry(frames.join(";")).or_insert(0) += self_ns;
            }
        }
    }
    let mut out = String::new();
    for (stack, weight) in folded {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        phase: Phase,
        app: &str,
        site: Option<&str>,
        seq: u32,
        parent: Option<u32>,
        start: u64,
        dur: u64,
    ) -> Span {
        Span {
            phase,
            app: app.into(),
            seed: 0,
            site: site.map(Into::into),
            seq,
            parent,
            start_ns: start,
            dur_ns: dur,
            cache_hit: None,
        }
    }

    fn sample() -> Trace {
        Trace {
            spans: vec![
                // Unit job: identify(100) with a nested interp run(60).
                span(Phase::Identify, "a", None, 0, None, 0, 100),
                span(Phase::InterpRun, "a", None, 1, Some(0), 10, 60),
                // Site job: extract(40) then enforce(200) with two solves.
                span(Phase::Extract, "a", Some("s1"), 0, None, 100, 40),
                span(Phase::Enforce, "a", Some("s1"), 1, None, 140, 200),
                span(Phase::Solve, "a", Some("s1"), 2, Some(1), 150, 30),
                span(Phase::Solve, "a", Some("s1"), 3, Some(1), 190, 50),
                // A slower second site.
                span(Phase::Enforce, "a", Some("s2"), 0, None, 400, 500),
                // Scheduler wait.
                span(Phase::QueueWait, "", None, 0, None, 0, 25),
            ],
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            wall_ns: Some(1000),
            threads: Some(1),
        }
    }

    #[test]
    fn breakdown_totals_and_self_times() {
        let b = PhaseBreakdown::from_trace(&sample());
        let enforce = b.phase(Phase::Enforce).unwrap();
        assert_eq!(enforce.count, 2);
        assert_eq!(enforce.total_ns, 700);
        assert_eq!(enforce.self_ns, 700 - 80); // minus the two solves
        let solve = b.phase(Phase::Solve).unwrap();
        assert_eq!(solve.total_ns, 80);
        assert_eq!(solve.self_ns, 80);
        let identify = b.phase(Phase::Identify).unwrap();
        assert_eq!(identify.self_ns, 40);
        // Top level: identify 100 + extract 40 + enforce 200 + enforce 500.
        assert_eq!(b.top_level_ns, 840);
        assert_eq!(b.queue_wait_ns, 25);
        assert!(b.queue_wait_ratio() > 0.0 && b.queue_wait_ratio() < 0.05);
        // Rows come out in canonical phase order.
        let order: Vec<Phase> = b.phases.iter().map(|r| r.phase).collect();
        let mut sorted = order.clone();
        sorted.sort_by_key(|p| Phase::ALL.iter().position(|q| q == p).unwrap());
        assert_eq!(order, sorted);
    }

    #[test]
    fn report_ranks_sites_and_computes_coverage() {
        let report = ProfileReport::from_trace(&sample(), 1);
        assert_eq!(report.top_sites.len(), 1);
        assert_eq!(report.top_sites[0].site, "s2");
        assert_eq!(report.top_sites[0].total_ns, 500);
        let cov = report.coverage().unwrap();
        assert!((cov - 0.84).abs() < 1e-9, "coverage {cov}");
        assert_eq!(report.serial_coverage(), report.coverage());
    }

    #[test]
    fn json_is_valid_flat_json() {
        let report = ProfileReport::from_trace(&sample(), 3);
        let json = report.to_json();
        assert!(json.starts_with("{\"table\":\"obs_profile\",\"v\":1"));
        assert!(json.contains("\"phases\":["));
        assert!(json.contains("\"phase\":\"enforce\""));
        assert!(json.contains("\"top_sites\":["));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn render_lists_every_phase_present() {
        let report = ProfileReport::from_trace(&sample(), 3);
        let text = report.render();
        for phase in ["identify", "extract", "solve", "enforce", "interp_run"] {
            assert!(text.contains(phase), "missing {phase} in:\n{text}");
        }
    }

    #[test]
    fn diff_against_self_attributes_nothing() {
        let report = ProfileReport::from_trace(&sample(), 3);
        let diff = ProfileDiff::between(&report, &report, 5, 0.15);
        assert!(diff.attributed().is_empty());
        assert!(!diff.is_regression());
        assert_eq!(diff.wall_regression(), Some(0.0));
        assert!(diff.to_json().contains("\"regressed\":false"));
        assert!(diff.render().contains("no attributed regression"));
    }

    #[test]
    fn diff_attributes_inflated_solve_phase() {
        let old = ProfileReport::from_trace(&sample(), 3);
        // Perturbed run: solve time inflated 20x (e.g. cache disabled).
        let mut hot = sample();
        for s in &mut hot.spans {
            if s.phase == Phase::Solve {
                s.dur_ns *= 20;
            }
        }
        hot.wall_ns = Some(3000);
        let new = ProfileReport::from_trace(&hot, 3);
        let diff = ProfileDiff::between(&old, &new, 5, 0.15);
        let attributed = diff.attributed();
        assert_eq!(attributed.len(), 1, "{:?}", diff.phases);
        assert_eq!(attributed[0].phase, Phase::Solve);
        assert!(diff.is_regression());
        assert!(diff.to_json().contains("\"attributed\":[\"solve\"]"));
        assert!(diff.render().contains("REGRESSION attributed to: solve"));
    }

    #[test]
    fn diff_reports_cache_hit_rate_shift() {
        let mut warm = sample();
        warm.counters.insert("solver.queries".into(), 100);
        warm.counters.insert("solver.cache_hits".into(), 80);
        let mut cold = sample();
        cold.counters.insert("solver.queries".into(), 100);
        cold.counters.insert("solver.cache_hits".into(), 10);
        let old = ProfileReport::from_trace(&warm, 3);
        let new = ProfileReport::from_trace(&cold, 3);
        let diff = ProfileDiff::between(&old, &new, 5, 0.15);
        assert_eq!(diff.old_hit_rate, Some(0.8));
        assert_eq!(diff.new_hit_rate, Some(0.1));
        assert!((diff.hit_rate_delta().unwrap() + 0.7).abs() < 1e-9);
    }

    #[test]
    fn collapsed_stacks_fold_parent_chains() {
        let folded = collapsed_stacks(&sample());
        assert!(folded.contains("a;s1;enforce;solve 80"), "{folded}");
        assert!(folded.contains("a;s1;enforce 120"), "{folded}");
        assert!(folded.contains("a;unit;identify 40"), "{folded}");
        assert!(folded.contains("a;unit;identify;interp_run 60"), "{folded}");
        // Queue wait spans are excluded.
        assert!(!folded.contains("queue_wait"), "{folded}");
    }
}
