//! Folding a trace into per-phase / per-site breakdowns, a human table,
//! JSON output, and collapsed stacks for flamegraph tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{Phase, Span, Trace};

/// Aggregated timing for one phase across the whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Which phase.
    pub phase: Phase,
    /// Number of spans recorded for the phase.
    pub count: u64,
    /// Sum of span durations (includes nested child spans).
    pub total_ns: u64,
    /// Sum of span durations minus time spent in child spans.
    pub self_ns: u64,
    /// Median span duration.
    pub p50_ns: u64,
    /// 99th-percentile span duration.
    pub p99_ns: u64,
}

/// Per-phase summary of a campaign trace — the `phases` field of a
/// campaign report, and the core of the `profile` subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// One row per phase that appeared, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseRow>,
    /// Sum of top-level (parentless, non-volatile) span durations: the
    /// instrumented compute time. Compare against `wall * threads`.
    pub top_level_ns: u64,
    /// Total scheduler queue-wait time across workers.
    pub queue_wait_ns: u64,
}

impl PhaseBreakdown {
    /// Fold a trace into per-phase rows.
    pub fn from_trace(trace: &Trace) -> PhaseBreakdown {
        // children_ns[job_key][seq] = total child duration of that span.
        let mut children: BTreeMap<(&str, u32, Option<&str>), BTreeMap<u32, u64>> = BTreeMap::new();
        for span in &trace.spans {
            if let Some(parent) = span.parent {
                *children
                    .entry((span.app.as_str(), span.seed, span.site.as_deref()))
                    .or_default()
                    .entry(parent)
                    .or_insert(0) += span.dur_ns;
            }
        }
        let mut durs: BTreeMap<Phase, Vec<u64>> = BTreeMap::new();
        let mut selfs: BTreeMap<Phase, u64> = BTreeMap::new();
        let mut queue_wait_ns = 0u64;
        for span in &trace.spans {
            if span.phase == Phase::QueueWait {
                queue_wait_ns += span.dur_ns;
            }
            durs.entry(span.phase).or_default().push(span.dur_ns);
            let nested = children
                .get(&(span.app.as_str(), span.seed, span.site.as_deref()))
                .and_then(|m| m.get(&span.seq))
                .copied()
                .unwrap_or(0);
            *selfs.entry(span.phase).or_insert(0) += span.dur_ns.saturating_sub(nested);
        }
        let phases = Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let mut d = durs.remove(&phase)?;
                d.sort_unstable();
                let count = d.len() as u64;
                Some(PhaseRow {
                    phase,
                    count,
                    total_ns: d.iter().sum(),
                    self_ns: selfs.get(&phase).copied().unwrap_or(0),
                    p50_ns: quantile_sorted(&d, 0.50),
                    p99_ns: quantile_sorted(&d, 0.99),
                })
            })
            .collect();
        PhaseBreakdown {
            phases,
            top_level_ns: trace.top_level_ns(),
            queue_wait_ns,
        }
    }

    /// Row for one phase, if it appeared in the trace.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseRow> {
        self.phases.iter().find(|r| r.phase == phase)
    }

    /// Queue wait as a fraction of all attributed worker time
    /// (`wait / (wait + compute)`); 0 when nothing was recorded.
    pub fn queue_wait_ratio(&self) -> f64 {
        let denom = self.queue_wait_ns + self.top_level_ns;
        if denom == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / denom as f64
        }
    }
}

fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Total top-level time attributed to one site job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRow {
    /// Application name.
    pub app: String,
    /// Unit seed index.
    pub seed: u32,
    /// Target site label.
    pub site: String,
    /// Sum of the job's top-level span durations.
    pub total_ns: u64,
    /// Number of spans the job recorded (all levels).
    pub spans: u64,
}

/// Full profile of a campaign trace: phase breakdown, slowest sites,
/// wall-time coverage, and merged metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Per-phase rows plus top-level/queue-wait totals.
    pub breakdown: PhaseBreakdown,
    /// Slowest site jobs, descending by attributed time.
    pub top_sites: Vec<SiteRow>,
    /// Campaign wall time, if the trace was stamped with one.
    pub wall_ns: Option<u64>,
    /// Worker thread count, if stamped.
    pub threads: Option<u32>,
    /// Merged counters from the trace.
    pub counters: BTreeMap<String, u64>,
}

impl ProfileReport {
    /// Fold a trace, keeping the `top_n` slowest sites.
    pub fn from_trace(trace: &Trace, top_n: usize) -> ProfileReport {
        let mut sites: BTreeMap<(&str, u32, &str), (u64, u64)> = BTreeMap::new();
        for span in &trace.spans {
            let Some(site) = span.site.as_deref() else {
                continue;
            };
            let entry = sites
                .entry((span.app.as_str(), span.seed, site))
                .or_insert((0, 0));
            if span.is_top_level() {
                entry.0 += span.dur_ns;
            }
            entry.1 += 1;
        }
        let mut top_sites: Vec<SiteRow> = sites
            .into_iter()
            .map(|((app, seed, site), (total_ns, spans))| SiteRow {
                app: app.to_string(),
                seed,
                site: site.to_string(),
                total_ns,
                spans,
            })
            .collect();
        top_sites.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)))
        });
        top_sites.truncate(top_n);
        ProfileReport {
            breakdown: PhaseBreakdown::from_trace(trace),
            top_sites,
            wall_ns: trace.wall_ns,
            threads: trace.threads,
            counters: trace.counters.clone(),
        }
    }

    /// Fraction of total worker capacity (`wall * threads`) covered by
    /// top-level spans. `None` when the trace has no wall-time stamp.
    pub fn coverage(&self) -> Option<f64> {
        let wall = self.wall_ns? as f64;
        let threads = self.threads.unwrap_or(1).max(1) as f64;
        if wall <= 0.0 {
            return None;
        }
        Some(self.breakdown.top_level_ns as f64 / (wall * threads))
    }

    /// Fraction of campaign wall time covered by top-level spans,
    /// assuming perfectly serialised work (`top_level / wall`). For a
    /// single-threaded campaign this is the acceptance-criterion number.
    pub fn serial_coverage(&self) -> Option<f64> {
        let wall = self.wall_ns? as f64;
        if wall <= 0.0 {
            return None;
        }
        Some(self.breakdown.top_level_ns as f64 / wall)
    }

    /// JSON object (single line) with the whole report. Parseable by
    /// any JSON reader, including `diode_corpus::Json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"table\":\"obs_profile\",\"v\":1");
        if let Some(wall) = self.wall_ns {
            let _ = write!(out, ",\"wall_ms\":{}", ms(wall));
        }
        if let Some(threads) = self.threads {
            let _ = write!(out, ",\"threads\":{threads}");
        }
        let _ = write!(
            out,
            ",\"top_level_ms\":{},\"queue_wait_ms\":{},\"queue_wait_ratio\":{}",
            ms(self.breakdown.top_level_ns),
            ms(self.breakdown.queue_wait_ns),
            fmt_f64(self.breakdown.queue_wait_ratio()),
        );
        if let Some(cov) = self.coverage() {
            let _ = write!(out, ",\"coverage\":{}", fmt_f64(cov));
        }
        out.push_str(",\"phases\":[");
        for (i, row) in self.breakdown.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"count\":{},\"total_ms\":{},\"self_ms\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
                row.phase,
                row.count,
                ms(row.total_ns),
                ms(row.self_ns),
                ms(row.p50_ns),
                ms(row.p99_ns),
            );
        }
        out.push_str("],\"top_sites\":[");
        for (i, s) in self.top_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"app\":\"{}\",\"seed\":{},\"site\":\"{}\",\"total_ms\":{},\"spans\":{}}}",
                escape(&s.app),
                s.seed,
                escape(&s.site),
                ms(s.total_ns),
                s.spans,
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", escape(name));
        }
        out.push_str("}}");
        out
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Campaign profile ==\n");
        if let (Some(wall), Some(threads)) = (self.wall_ns, self.threads) {
            let _ = writeln!(
                out,
                "wall {:.1} ms on {threads} thread(s); instrumented compute {:.1} ms ({:.0}% of capacity), queue wait {:.1} ms ({:.1}% of worker time)",
                ms(wall),
                ms(self.breakdown.top_level_ns),
                self.coverage().unwrap_or(0.0) * 100.0,
                ms(self.breakdown.queue_wait_ns),
                self.breakdown.queue_wait_ratio() * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "{:<15} {:>7} {:>12} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "self ms", "p50 ms", "p99 ms"
        );
        for row in &self.breakdown.phases {
            let _ = writeln!(
                out,
                "{:<15} {:>7} {:>12.3} {:>12.3} {:>10.3} {:>10.3}",
                row.phase.as_str(),
                row.count,
                ms(row.total_ns),
                ms(row.self_ns),
                ms(row.p50_ns),
                ms(row.p99_ns),
            );
        }
        if !self.top_sites.is_empty() {
            let _ = writeln!(out, "top {} slowest sites:", self.top_sites.len());
            for s in &self.top_sites {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10.3} ms  ({} spans)",
                    format!("{}/{}", s.app, s.site),
                    ms(s.total_ns),
                    s.spans,
                );
            }
        }
        out
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Fold a trace into collapsed-stack lines (`frame;frame;... weight`)
/// suitable for `flamegraph.pl` / `inferno-flamegraph`. Weights are the
/// span self-times in nanoseconds; frames are `app;site;phase...`.
pub fn collapsed_stacks(trace: &Trace) -> String {
    // Index spans per job so parent chains resolve.
    let mut jobs: BTreeMap<(&str, u32, Option<&str>), BTreeMap<u32, &Span>> = BTreeMap::new();
    for span in &trace.spans {
        if span.phase.is_volatile() {
            continue;
        }
        jobs.entry((span.app.as_str(), span.seed, span.site.as_deref()))
            .or_default()
            .insert(span.seq, span);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for ((app, _seed, site), by_seq) in &jobs {
        let mut children_ns: BTreeMap<u32, u64> = BTreeMap::new();
        for span in by_seq.values() {
            if let Some(parent) = span.parent {
                *children_ns.entry(parent).or_insert(0) += span.dur_ns;
            }
        }
        for span in by_seq.values() {
            let mut frames = vec![span.phase.as_str()];
            let mut cursor = span.parent;
            while let Some(seq) = cursor {
                match by_seq.get(&seq) {
                    Some(parent) => {
                        frames.push(parent.phase.as_str());
                        cursor = parent.parent;
                    }
                    None => break,
                }
            }
            frames.push(site.unwrap_or("unit"));
            frames.push(app);
            frames.reverse();
            let self_ns = span
                .dur_ns
                .saturating_sub(children_ns.get(&span.seq).copied().unwrap_or(0));
            if self_ns > 0 {
                *folded.entry(frames.join(";")).or_insert(0) += self_ns;
            }
        }
    }
    let mut out = String::new();
    for (stack, weight) in folded {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        phase: Phase,
        app: &str,
        site: Option<&str>,
        seq: u32,
        parent: Option<u32>,
        start: u64,
        dur: u64,
    ) -> Span {
        Span {
            phase,
            app: app.into(),
            seed: 0,
            site: site.map(Into::into),
            seq,
            parent,
            start_ns: start,
            dur_ns: dur,
            cache_hit: None,
        }
    }

    fn sample() -> Trace {
        Trace {
            spans: vec![
                // Unit job: identify(100) with a nested interp run(60).
                span(Phase::Identify, "a", None, 0, None, 0, 100),
                span(Phase::InterpRun, "a", None, 1, Some(0), 10, 60),
                // Site job: extract(40) then enforce(200) with two solves.
                span(Phase::Extract, "a", Some("s1"), 0, None, 100, 40),
                span(Phase::Enforce, "a", Some("s1"), 1, None, 140, 200),
                span(Phase::Solve, "a", Some("s1"), 2, Some(1), 150, 30),
                span(Phase::Solve, "a", Some("s1"), 3, Some(1), 190, 50),
                // A slower second site.
                span(Phase::Enforce, "a", Some("s2"), 0, None, 400, 500),
                // Scheduler wait.
                span(Phase::QueueWait, "", None, 0, None, 0, 25),
            ],
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            wall_ns: Some(1000),
            threads: Some(1),
        }
    }

    #[test]
    fn breakdown_totals_and_self_times() {
        let b = PhaseBreakdown::from_trace(&sample());
        let enforce = b.phase(Phase::Enforce).unwrap();
        assert_eq!(enforce.count, 2);
        assert_eq!(enforce.total_ns, 700);
        assert_eq!(enforce.self_ns, 700 - 80); // minus the two solves
        let solve = b.phase(Phase::Solve).unwrap();
        assert_eq!(solve.total_ns, 80);
        assert_eq!(solve.self_ns, 80);
        let identify = b.phase(Phase::Identify).unwrap();
        assert_eq!(identify.self_ns, 40);
        // Top level: identify 100 + extract 40 + enforce 200 + enforce 500.
        assert_eq!(b.top_level_ns, 840);
        assert_eq!(b.queue_wait_ns, 25);
        assert!(b.queue_wait_ratio() > 0.0 && b.queue_wait_ratio() < 0.05);
        // Rows come out in canonical phase order.
        let order: Vec<Phase> = b.phases.iter().map(|r| r.phase).collect();
        let mut sorted = order.clone();
        sorted.sort_by_key(|p| Phase::ALL.iter().position(|q| q == p).unwrap());
        assert_eq!(order, sorted);
    }

    #[test]
    fn report_ranks_sites_and_computes_coverage() {
        let report = ProfileReport::from_trace(&sample(), 1);
        assert_eq!(report.top_sites.len(), 1);
        assert_eq!(report.top_sites[0].site, "s2");
        assert_eq!(report.top_sites[0].total_ns, 500);
        let cov = report.coverage().unwrap();
        assert!((cov - 0.84).abs() < 1e-9, "coverage {cov}");
        assert_eq!(report.serial_coverage(), report.coverage());
    }

    #[test]
    fn json_is_valid_flat_json() {
        let report = ProfileReport::from_trace(&sample(), 3);
        let json = report.to_json();
        assert!(json.starts_with("{\"table\":\"obs_profile\",\"v\":1"));
        assert!(json.contains("\"phases\":["));
        assert!(json.contains("\"phase\":\"enforce\""));
        assert!(json.contains("\"top_sites\":["));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn render_lists_every_phase_present() {
        let report = ProfileReport::from_trace(&sample(), 3);
        let text = report.render();
        for phase in ["identify", "extract", "solve", "enforce", "interp_run"] {
            assert!(text.contains(phase), "missing {phase} in:\n{text}");
        }
    }

    #[test]
    fn collapsed_stacks_fold_parent_chains() {
        let folded = collapsed_stacks(&sample());
        assert!(folded.contains("a;s1;enforce;solve 80"), "{folded}");
        assert!(folded.contains("a;s1;enforce 120"), "{folded}");
        assert!(folded.contains("a;unit;identify 40"), "{folded}");
        assert!(folded.contains("a;unit;identify;interp_run 60"), "{folded}");
        // Queue wait spans are excluded.
        assert!(!folded.contains("queue_wait"), "{folded}");
    }
}
