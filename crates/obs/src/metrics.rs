//! Monotonic counters and log2-bucketed histograms.
//!
//! Histograms use 64 power-of-two buckets, enough for any nanosecond
//! duration; quantiles report the upper bound of the bucket holding the
//! requested rank, so p50/p99 are conservative (never under-estimate).

/// A log2-bucketed histogram of `u64` observations (durations in ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(63)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`); 0 when empty. The true max caps the answer.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return upper
                    .min(self.max)
                    .max(if i == 0 { 0 } else { 1 << (i - 1) });
            }
        }
        self.max
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs for exposition,
    /// trimmed after the highest non-empty bucket (empty when no
    /// observations). Bucket `i` holds values up to `2^i - 1`, so the
    /// bounds are `0, 1, 3, 7, ...`; a terminal `+Inf` bucket is the
    /// renderer's job (its count is [`count`](Self::count)).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&n| n > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut cumulative = 0u64;
        self.buckets[..=last]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                cumulative += n;
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << i).saturating_sub(1)
                };
                (upper, cumulative)
            })
            .collect()
    }

    /// Fixed summary for serialisation.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

/// Serialisable summary of a [`Hist`] (buckets are not round-tripped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Conservative median (bucket upper bound).
    pub p50: u64,
    /// Conservative 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_is_zero() {
        let h = Hist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn quantiles_are_monotonic_and_bounded() {
        let mut h = Hist::default();
        for v in [1u64, 3, 7, 100, 1000, 100_000, 5_000_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert!(p50 >= 7, "p50 {p50} should cover the median sample");
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 3 + 7 + 100 + 1000 + 100_000 + 5_000_000);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let values = [0u64, 1, 2, 50, 99, 4096, 1 << 40];
        let mut a = Hist::default();
        let mut b = Hist::default();
        let mut all = Hist::default();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn zero_and_max_values_hit_valid_buckets() {
        let mut h = Hist::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
