//! Decision provenance: schema-versioned event records explaining *why*
//! each site got its verdict, not just how long it took.
//!
//! A [`ProvenanceEvent`] is one decision on a site's path through the
//! pipeline: the symbolic extraction (which input bytes turned out
//! relevant, where the φ boundary sat), every solver query (structural
//! fingerprint, origin, sat/unsat/unknown, advisory cache attribution),
//! every Figure-7 enforcement step (condition considered / enforced /
//! permanently skipped as unsat-when-enforced / budget exhausted, with
//! the branch label and iteration index), and the final verdict with the
//! witness input hash. Events are appended in program order inside the
//! site's job scope, so a site's event list *is* its derivation.
//!
//! A [`ProvenanceRecord`] bundles one site's events and renders them as
//! an explanation tree ([`ProvenanceRecord::explain`]), checks the
//! events→witness chain for completeness ([`ProvenanceRecord::chain_error`]),
//! and serialises to a canonical form ([`ProvenanceRecord::canonical`])
//! that drops the one racy field (cache-hit attribution under a shared
//! cache) so record sets compare byte-identical across thread counts —
//! the same discipline span identity follows.

use std::fmt::Write as _;

/// Version stamp for the provenance wire format (`audit/*.json`).
pub const AUDIT_SCHEMA_VERSION: u32 = 1;

/// Which pipeline decision issued a solver query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryOrigin {
    /// The initial `β` (target overflow condition) satisfiability check.
    Beta,
    /// A `φ' ∧ c ∧ β` query inside the enforcement loop.
    Enforce,
    /// Re-validation of an exposed bug's recorded constraint.
    Validate,
    /// A query outside the audited pipeline stages.
    Other,
}

impl QueryOrigin {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryOrigin::Beta => "beta",
            QueryOrigin::Enforce => "enforce",
            QueryOrigin::Validate => "validate",
            QueryOrigin::Other => "other",
        }
    }

    /// Inverse of [`QueryOrigin::as_str`].
    pub fn parse(name: &str) -> Option<QueryOrigin> {
        [
            QueryOrigin::Beta,
            QueryOrigin::Enforce,
            QueryOrigin::Validate,
            QueryOrigin::Other,
        ]
        .into_iter()
        .find(|o| o.as_str() == name)
    }
}

/// Solver answer recorded in a query event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryVerdict {
    /// Satisfiable; a model was produced.
    Sat,
    /// Proven unsatisfiable.
    Unsat,
    /// Solver gave up (budget / unsupported construct).
    Unknown,
}

impl QueryVerdict {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryVerdict::Sat => "sat",
            QueryVerdict::Unsat => "unsat",
            QueryVerdict::Unknown => "unknown",
        }
    }

    /// Inverse of [`QueryVerdict::as_str`].
    pub fn parse(name: &str) -> Option<QueryVerdict> {
        [
            QueryVerdict::Sat,
            QueryVerdict::Unsat,
            QueryVerdict::Unknown,
        ]
        .into_iter()
        .find(|v| v.as_str() == name)
    }
}

/// What the enforcement loop decided about one condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnforceAction {
    /// The condition was violated by the candidate input and picked for
    /// an enforcement attempt this iteration.
    Considered,
    /// `φ' ∧ c ∧ β` was satisfiable: the condition joined the enforced
    /// set and a new candidate input was generated.
    Enforced,
    /// `φ' ∧ c ∧ β` was unsatisfiable: the condition is permanently
    /// skipped (enforcing it can never reach the target).
    SkippedUnsat,
}

impl EnforceAction {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EnforceAction::Considered => "considered",
            EnforceAction::Enforced => "enforced",
            EnforceAction::SkippedUnsat => "skipped_unsat",
        }
    }

    /// Inverse of [`EnforceAction::as_str`].
    pub fn parse(name: &str) -> Option<EnforceAction> {
        [
            EnforceAction::Considered,
            EnforceAction::Enforced,
            EnforceAction::SkippedUnsat,
        ]
        .into_iter()
        .find(|a| a.as_str() == name)
    }
}

/// One decision on a site's path from seed input to verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvenanceEvent {
    /// Stage-2 symbolic extraction summary for the site.
    Extraction {
        /// Input byte offsets the target expression depends on.
        relevant_bytes: Vec<u32>,
        /// Total relevant bytes across target expression and φ.
        total_relevant: u32,
        /// Number of compressed flippable conditions in φ.
        phi_len: u32,
        /// Branch observations before the site (the φ boundary).
        boundary: u32,
        /// Whether extraction resumed from a prefix snapshot.
        resumed: bool,
    },
    /// One solver query issued on the site's behalf.
    Query {
        /// Pipeline decision that issued the query.
        origin: QueryOrigin,
        /// Structural constraint fingerprint (32 hex digits), the same
        /// key the shared solver cache uses.
        fingerprint: String,
        /// Solver answer.
        verdict: QueryVerdict,
        /// Advisory cache attribution: racy under a shared cache across
        /// worker threads, therefore excluded from the canonical form.
        cache_hit: Option<bool>,
    },
    /// One enforcement-loop decision about one φ condition.
    Enforce {
        /// 1-based enforcement iteration (candidate-input generation).
        iteration: u32,
        /// Index of the condition within φ.
        condition: u32,
        /// Branch label of the condition.
        label: u32,
        /// What the loop decided.
        action: EnforceAction,
    },
    /// The per-site solver budget ran out mid-loop.
    Budget {
        /// Iteration at which the budget was exhausted.
        iteration: u32,
    },
    /// Final classification of the site.
    Verdict {
        /// Outcome token (`exposed`, `target-unsat`,
        /// `prevented:constraint-unsat:N`, `prevented:satisfies-phi:N`,
        /// `prevented:budget`, `unknown`).
        outcome: String,
        /// Number of conditions in the enforced set at termination.
        enforced: u32,
        /// FNV-1a hash of the witness input bytes, for exposed sites.
        witness: Option<String>,
    },
}

impl ProvenanceEvent {
    /// Serialise one event as a JSON object. When `canonical` is set the
    /// advisory `cache_hit` field is omitted, making the output identical
    /// across thread counts.
    pub fn to_json(&self, canonical: bool) -> String {
        match self {
            ProvenanceEvent::Extraction {
                relevant_bytes,
                total_relevant,
                phi_len,
                boundary,
                resumed,
            } => {
                let bytes: Vec<String> = relevant_bytes.iter().map(u32::to_string).collect();
                format!(
                    "{{\"type\":\"extraction\",\"relevant_bytes\":[{}],\
                     \"total_relevant\":{total_relevant},\"phi\":{phi_len},\
                     \"boundary\":{boundary},\"resumed\":{resumed}}}",
                    bytes.join(",")
                )
            }
            ProvenanceEvent::Query {
                origin,
                fingerprint,
                verdict,
                cache_hit,
            } => {
                let mut out = format!(
                    "{{\"type\":\"query\",\"origin\":\"{}\",\"fingerprint\":\"{}\",\
                     \"verdict\":\"{}\"",
                    origin.as_str(),
                    fingerprint,
                    verdict.as_str()
                );
                if !canonical {
                    if let Some(hit) = cache_hit {
                        let _ = write!(out, ",\"cache_hit\":{hit}");
                    }
                }
                out.push('}');
                out
            }
            ProvenanceEvent::Enforce {
                iteration,
                condition,
                label,
                action,
            } => format!(
                "{{\"type\":\"enforce\",\"iteration\":{iteration},\
                 \"condition\":{condition},\"label\":{label},\"action\":\"{}\"}}",
                action.as_str()
            ),
            ProvenanceEvent::Budget { iteration } => {
                format!("{{\"type\":\"budget\",\"iteration\":{iteration}}}")
            }
            ProvenanceEvent::Verdict {
                outcome,
                enforced,
                witness,
            } => {
                let mut out = format!(
                    "{{\"type\":\"verdict\",\"outcome\":\"{outcome}\",\"enforced\":{enforced}"
                );
                if let Some(w) = witness {
                    let _ = write!(out, ",\"witness\":\"{w}\"");
                }
                out.push('}');
                out
            }
        }
    }
}

/// The assembled derivation of one site's verdict: every decision event
/// in program order, keyed by `(app, seed, site)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Application name.
    pub app: String,
    /// Seed index of the unit within its app.
    pub seed: u32,
    /// Target site label.
    pub site: String,
    /// Decision events in the order the pipeline took them.
    pub events: Vec<ProvenanceEvent>,
}

impl ProvenanceRecord {
    /// Full JSON document for `audit/<site>.json`, schema-versioned.
    /// Includes the advisory cache annotations.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Deterministic identity form: same as [`ProvenanceRecord::to_json`]
    /// minus advisory cache-hit attribution. Byte-identical across
    /// thread counts for the same campaign spec.
    pub fn canonical(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, canonical: bool) -> String {
        let events: Vec<String> = self.events.iter().map(|e| e.to_json(canonical)).collect();
        format!(
            "{{\"v\":{AUDIT_SCHEMA_VERSION},\"app\":\"{}\",\"seed\":{},\"site\":\"{}\",\
             \"events\":[{}]}}",
            escape(&self.app),
            self.seed,
            escape(&self.site),
            events.join(",")
        )
    }

    /// The final verdict event, if the record reached one.
    pub fn verdict(&self) -> Option<(&str, u32, Option<&str>)> {
        self.events.iter().rev().find_map(|e| match e {
            ProvenanceEvent::Verdict {
                outcome,
                enforced,
                witness,
            } => Some((outcome.as_str(), *enforced, witness.as_deref())),
            _ => None,
        })
    }

    /// Validate the events→witness chain. Returns `None` when the
    /// derivation is complete and internally consistent, otherwise a
    /// human-readable description of the first break in the chain.
    ///
    /// An *exposed* site must show: an extraction, a satisfiable β
    /// query, one `enforced` action per member of the final enforced
    /// set, and a verdict carrying the witness input hash. A
    /// *target-unsat* site must show its unsatisfiable β query. Enforced
    /// counts claimed by `prevented:*` verdicts must match the recorded
    /// enforcement steps.
    pub fn chain_error(&self) -> Option<String> {
        let Some(pos) = self
            .events
            .iter()
            .rposition(|e| matches!(e, ProvenanceEvent::Verdict { .. }))
        else {
            return Some("record has no verdict event".to_string());
        };
        // Only re-validation queries may follow the verdict (the engine
        // verifies exposed bugs in the same job scope).
        for event in &self.events[pos + 1..] {
            if !matches!(
                event,
                ProvenanceEvent::Query {
                    origin: QueryOrigin::Validate,
                    ..
                }
            ) {
                return Some("decision events recorded after the verdict".to_string());
            }
        }
        let ProvenanceEvent::Verdict {
            outcome,
            enforced,
            witness,
        } = &self.events[pos]
        else {
            unreachable!("rposition matched a verdict event");
        };
        let beta = self.events.iter().find_map(|e| match e {
            ProvenanceEvent::Query {
                origin: QueryOrigin::Beta,
                verdict,
                ..
            } => Some(*verdict),
            _ => None,
        });
        let enforced_steps = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ProvenanceEvent::Enforce {
                        action: EnforceAction::Enforced,
                        ..
                    }
                )
            })
            .count() as u32;
        let has_extraction = self
            .events
            .iter()
            .any(|e| matches!(e, ProvenanceEvent::Extraction { .. }));
        if outcome == "unknown" {
            // Extraction itself may have failed; nothing further to demand.
            return None;
        }
        if !has_extraction {
            return Some(format!("verdict {outcome:?} without an extraction event"));
        }
        if outcome == "target-unsat" {
            return match beta {
                Some(QueryVerdict::Unsat) => None,
                Some(v) => Some(format!(
                    "target-unsat verdict but β query was {}",
                    v.as_str()
                )),
                None => Some("target-unsat verdict without a β query".to_string()),
            };
        }
        // Every remaining outcome implies β was satisfiable at least once.
        match beta {
            Some(QueryVerdict::Sat) => {}
            Some(v) => {
                return Some(format!(
                    "verdict {outcome:?} but β query was {}",
                    v.as_str()
                ))
            }
            None => return Some(format!("verdict {outcome:?} without a β query")),
        }
        if enforced_steps != *enforced {
            return Some(format!(
                "verdict claims {enforced} enforced condition(s) but the chain records \
                 {enforced_steps} enforcement step(s)"
            ));
        }
        if outcome == "exposed" {
            if witness.is_none() {
                return Some("exposed verdict without a witness input hash".to_string());
            }
            let validate = self.events[pos + 1..].iter().find_map(|e| match e {
                ProvenanceEvent::Query {
                    origin: QueryOrigin::Validate,
                    verdict,
                    ..
                } => Some(*verdict),
                _ => None,
            });
            if let Some(v) = validate {
                if v != QueryVerdict::Sat {
                    return Some(format!(
                        "exposed witness failed constraint re-validation ({})",
                        v.as_str()
                    ));
                }
            }
        }
        if outcome == "prevented:budget"
            && !self
                .events
                .iter()
                .any(|e| matches!(e, ProvenanceEvent::Budget { .. }))
        {
            return Some("prevented:budget verdict without a budget-exhausted event".to_string());
        }
        None
    }

    /// Render the derivation as an indented explanation tree, grouping
    /// enforcement decisions by iteration.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let verdict = self.verdict();
        let headline = verdict.map_or("(no verdict)", |(o, _, _)| o);
        let _ = writeln!(
            out,
            "{}/{}/{} — {}",
            self.app, self.seed, self.site, headline
        );
        let mut iteration = 0u32;
        for (i, event) in self.events.iter().enumerate() {
            // Last top-level line gets the closing connector — the
            // verdict is usually last, but validation queries may
            // legitimately trail it.
            let tee = if i + 1 == self.events.len() {
                "└─"
            } else {
                "├─"
            };
            match event {
                ProvenanceEvent::Extraction {
                    relevant_bytes,
                    total_relevant,
                    phi_len,
                    boundary,
                    resumed,
                } => {
                    let bytes: Vec<String> = relevant_bytes.iter().map(u32::to_string).collect();
                    let _ = writeln!(
                        out,
                        "├─ extraction{}: target depends on bytes {{{}}}, {} relevant total, \
                         φ has {} condition(s), boundary at branch {}",
                        if *resumed {
                            " (resumed from snapshot)"
                        } else {
                            ""
                        },
                        bytes.join(","),
                        total_relevant,
                        phi_len,
                        boundary
                    );
                }
                ProvenanceEvent::Query {
                    origin,
                    fingerprint,
                    verdict,
                    cache_hit,
                } => {
                    let hit = match cache_hit {
                        Some(true) => ", cache hit",
                        Some(false) => ", cache miss",
                        None => "",
                    };
                    let short = &fingerprint[..fingerprint.len().min(12)];
                    let line = format!(
                        "{} query {}… → {}{}",
                        origin.as_str(),
                        short,
                        verdict.as_str(),
                        hit
                    );
                    if iteration == 0 {
                        let _ = writeln!(out, "{tee} {line}");
                    } else {
                        let _ = writeln!(out, "│  ├─ {line}");
                    }
                }
                ProvenanceEvent::Enforce {
                    iteration: it,
                    condition,
                    label,
                    action,
                } => {
                    if *it != iteration {
                        iteration = *it;
                        let _ = writeln!(out, "├─ iteration {iteration}");
                    }
                    let what = match action {
                        EnforceAction::Considered => "considered (violated by candidate)",
                        EnforceAction::Enforced => "ENFORCED → new candidate input",
                        EnforceAction::SkippedUnsat => "skipped permanently (unsat when enforced)",
                    };
                    let _ = writeln!(out, "│  ├─ condition #{condition} (label {label}) {what}");
                }
                ProvenanceEvent::Budget { iteration: it } => {
                    let _ = writeln!(out, "├─ solver budget exhausted at iteration {it}");
                    iteration = 0;
                }
                ProvenanceEvent::Verdict {
                    outcome,
                    enforced,
                    witness,
                } => {
                    let w = witness
                        .as_deref()
                        .map(|w| format!("; witness input {w}"))
                        .unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "{tee} verdict: {outcome} with {enforced} enforced condition(s){w}"
                    );
                    iteration = 0;
                }
            }
        }
        out
    }
}

/// Canonical serialisation of a whole record set: records sorted by
/// `(app, seed, site)`, one canonical JSON document per line. Two
/// campaigns over the same spec produce byte-identical output regardless
/// of worker thread count.
pub fn canonical_record_set(records: &[ProvenanceRecord]) -> String {
    let mut sorted: Vec<&ProvenanceRecord> = records.iter().collect();
    sorted.sort_by(|a, b| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)));
    let mut out = String::new();
    for r in sorted {
        out.push_str(&r.canonical());
        out.push('\n');
    }
    out
}

/// FNV-1a (64-bit) hash of a byte string, rendered as `fnv64:<16 hex>`.
/// Used to tie an exposed site's verdict to its witness input bytes
/// without storing the input in the provenance record.
pub fn fnv64_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv64:{h:016x}")
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exposed_record() -> ProvenanceRecord {
        ProvenanceRecord {
            app: "app-0".to_string(),
            seed: 0,
            site: "b0@7".to_string(),
            events: vec![
                ProvenanceEvent::Extraction {
                    relevant_bytes: vec![0, 1],
                    total_relevant: 2,
                    phi_len: 3,
                    boundary: 5,
                    resumed: false,
                },
                ProvenanceEvent::Query {
                    origin: QueryOrigin::Beta,
                    fingerprint: "00ff".to_string(),
                    verdict: QueryVerdict::Sat,
                    cache_hit: Some(false),
                },
                ProvenanceEvent::Enforce {
                    iteration: 1,
                    condition: 2,
                    label: 9,
                    action: EnforceAction::Considered,
                },
                ProvenanceEvent::Query {
                    origin: QueryOrigin::Enforce,
                    fingerprint: "0abc".to_string(),
                    verdict: QueryVerdict::Sat,
                    cache_hit: Some(true),
                },
                ProvenanceEvent::Enforce {
                    iteration: 1,
                    condition: 2,
                    label: 9,
                    action: EnforceAction::Enforced,
                },
                ProvenanceEvent::Verdict {
                    outcome: "exposed".to_string(),
                    enforced: 1,
                    witness: Some(fnv64_hex(b"AB")),
                },
            ],
        }
    }

    #[test]
    fn canonical_strips_cache_hit_only() {
        let rec = exposed_record();
        let full = rec.to_json();
        let canon = rec.canonical();
        assert!(full.contains("\"cache_hit\":true"));
        assert!(!canon.contains("cache_hit"));
        // Everything else survives.
        assert!(canon.contains("\"origin\":\"beta\""));
        assert!(canon.contains("\"outcome\":\"exposed\""));
        assert!(canon.contains("\"witness\":\"fnv64:"));
    }

    #[test]
    fn chain_check_accepts_complete_exposed_record() {
        assert_eq!(exposed_record().chain_error(), None);
    }

    #[test]
    fn chain_check_rejects_missing_witness() {
        let mut rec = exposed_record();
        let last = rec.events.len() - 1;
        rec.events[last] = ProvenanceEvent::Verdict {
            outcome: "exposed".to_string(),
            enforced: 1,
            witness: None,
        };
        assert!(rec.chain_error().unwrap().contains("witness"));
    }

    #[test]
    fn chain_check_rejects_enforced_count_mismatch() {
        let mut rec = exposed_record();
        let last = rec.events.len() - 1;
        rec.events[last] = ProvenanceEvent::Verdict {
            outcome: "exposed".to_string(),
            enforced: 3,
            witness: Some("fnv64:0".to_string()),
        };
        assert!(rec.chain_error().unwrap().contains("enforcement step"));
    }

    #[test]
    fn chain_check_rejects_truncated_record() {
        let mut rec = exposed_record();
        rec.events.pop();
        assert!(rec.chain_error().unwrap().contains("verdict"));
    }

    #[test]
    fn canonical_set_sorts_by_site_key() {
        let mut a = exposed_record();
        a.site = "z@1".to_string();
        let b = exposed_record();
        let set1 = canonical_record_set(&[a.clone(), b.clone()]);
        let set2 = canonical_record_set(&[b, a]);
        assert_eq!(set1, set2);
        assert!(set1.find("b0@7").unwrap() < set1.find("z@1").unwrap());
    }

    #[test]
    fn explain_renders_iterations_and_verdict() {
        let text = exposed_record().explain();
        assert!(text.contains("app-0/0/b0@7 — exposed"));
        assert!(text.contains("iteration 1"));
        assert!(text.contains("ENFORCED"));
        assert!(text.contains("verdict: exposed"));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64_hex(b""), "fnv64:cbf29ce484222325");
        assert_ne!(fnv64_hex(b"a"), fnv64_hex(b"b"));
    }

    #[test]
    fn wire_enums_roundtrip() {
        for o in [
            QueryOrigin::Beta,
            QueryOrigin::Enforce,
            QueryOrigin::Validate,
            QueryOrigin::Other,
        ] {
            assert_eq!(QueryOrigin::parse(o.as_str()), Some(o));
        }
        for v in [
            QueryVerdict::Sat,
            QueryVerdict::Unsat,
            QueryVerdict::Unknown,
        ] {
            assert_eq!(QueryVerdict::parse(v.as_str()), Some(v));
        }
        for a in [
            EnforceAction::Considered,
            EnforceAction::Enforced,
            EnforceAction::SkippedUnsat,
        ] {
            assert_eq!(EnforceAction::parse(a.as_str()), Some(a));
        }
    }
}
