//! diode-pulse: a bounded multi-subscriber event bus for live campaign
//! telemetry.
//!
//! The engine publishes [`PulseEvent`]s — unit/site progress mirrored
//! from the `CampaignEvent` stream plus periodic [`HeartbeatSample`]s —
//! into a [`PulseBus`]. Each subscriber owns a bounded ring
//! ([`PulseRing`]): publishing is a claim-slot/write/release sequence
//! on atomic sequence numbers (Vyukov-style bounded queue), and a full
//! ring **drops the event and counts the drop** instead of blocking the
//! publisher. A slow subscriber therefore costs the campaign nothing
//! but its own completeness, which it can observe through
//! [`Subscriber::dropped`].
//!
//! Slot payloads sit behind per-slot mutexes, but the sequence protocol
//! guarantees each slot has exactly one owner between claim and
//! release, so those locks are uncontended single-CAS acquisitions via
//! `try_lock` — no publisher or consumer ever waits on one.
//!
//! The module also hosts the two shared-state tables the heartbeat
//! sampler reads: [`WorkerStateTable`] (what each worker is doing right
//! now) and [`SchedGauges`] (queue depth, steal count, jobs retired).
//! Both are written from the scheduler hot path only when telemetry is
//! enabled; with no bus configured the engine never touches them.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// What one worker is doing, as sampled into a heartbeat.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WorkerState {
    /// Waiting for work (empty local deque, nothing stolen).
    #[default]
    Idle,
    /// Running a unit-level job (site identification / warm-up).
    Unit {
        /// Application name.
        app: String,
        /// Seed index within the unit.
        seed: u32,
    },
    /// Analyzing one target site.
    Site {
        /// Application name.
        app: String,
        /// Seed index within the unit.
        seed: u32,
        /// Site label (e.g. `b0@7`).
        site: String,
    },
}

impl WorkerState {
    /// Short token for the wire format: `idle`, `unit`, or `site`.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            WorkerState::Idle => "idle",
            WorkerState::Unit { .. } => "unit",
            WorkerState::Site { .. } => "site",
        }
    }
}

/// One periodic sample of campaign-wide liveness and resource state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeartbeatSample {
    /// Dense heartbeat sequence number, starting at 0.
    pub seq: u64,
    /// Nanoseconds since the campaign started.
    pub t_ns: u64,
    /// Per-worker state, indexed by worker id.
    pub workers: Vec<WorkerState>,
    /// Jobs sitting in the injector + local deques right now.
    pub queued: u64,
    /// Jobs spawned but not yet retired (scheduler `pending`).
    pub pending: u64,
    /// Cumulative successful steals.
    pub steals: u64,
    /// Cumulative jobs retired.
    pub jobs_done: u64,
    /// Solver-cache resident bytes.
    pub cache_bytes: u64,
    /// Solver-cache entry count.
    pub cache_entries: u64,
    /// Snapshot-cache resident bytes.
    pub snapshot_bytes: u64,
    /// Snapshot-cache entry count.
    pub snapshot_entries: u64,
    /// Largest interpreter heap high-water mark seen on any site so far.
    pub interp_peak_heap_bytes: u64,
}

/// One event on the pulse bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PulseEvent {
    /// A unit (app × seed) began site identification.
    UnitStarted {
        /// Application name.
        app: String,
        /// Seed index.
        seed: u32,
    },
    /// Identification finished for a unit.
    SitesIdentified {
        /// Application name.
        app: String,
        /// Seed index.
        seed: u32,
        /// Number of candidate sites found.
        sites: u64,
    },
    /// One site's full analysis completed.
    SiteFinished {
        /// Application name.
        app: String,
        /// Seed index.
        seed: u32,
        /// Site label.
        site: String,
        /// Outcome token (same vocabulary as `SiteOutcome::token`).
        outcome: String,
        /// Wall time the analysis took, in nanoseconds.
        wall_ns: u64,
        /// Solver-cache resident bytes at completion.
        cache_bytes: u64,
        /// Snapshot-cache resident bytes at completion.
        snapshot_bytes: u64,
        /// Interpreter heap high-water mark during this site's runs.
        peak_heap_bytes: u64,
    },
    /// Periodic liveness/resource sample.
    Heartbeat(HeartbeatSample),
    /// The campaign finished.
    Finished {
        /// Total campaign wall time in nanoseconds.
        wall_ns: u64,
        /// Total sites analyzed.
        sites: u64,
        /// Sites with an exposed overflow.
        exposed: u64,
    },
}

impl PulseEvent {
    /// Record-type token used in the telemetry wire format.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            PulseEvent::UnitStarted { .. } => "unit_started",
            PulseEvent::SitesIdentified { .. } => "sites_identified",
            PulseEvent::SiteFinished { .. } => "site_finished",
            PulseEvent::Heartbeat(_) => "heartbeat",
            PulseEvent::Finished { .. } => "finished",
        }
    }
}

/// One slot of a [`PulseRing`]. `seq` carries the Vyukov handshake;
/// the payload mutex is only ever touched by the slot's current owner.
struct Slot {
    seq: AtomicU64,
    value: Mutex<Option<PulseEvent>>,
}

/// A bounded ring buffer with drop-counting, non-blocking publish.
///
/// Multi-producer (any worker plus the sampler thread may publish),
/// single logical consumer (the subscriber), though the protocol is
/// safe for concurrent consumers too.
pub struct PulseRing {
    slots: Box<[Slot]>,
    mask: u64,
    enqueue_pos: AtomicU64,
    dequeue_pos: AtomicU64,
    dropped: AtomicU64,
}

impl PulseRing {
    /// A ring holding at most `capacity` events (rounded up to a power
    /// of two, minimum 2).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> PulseRing {
        let cap = capacity.max(2).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                value: Mutex::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        PulseRing {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publishes `event`; returns `false` (and counts a drop) when the
    /// ring is full. Never blocks.
    pub fn try_push(&self, event: PulseEvent) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot until the seq release below;
                        // try_lock can only see an uncontended mutex.
                        if let Ok(mut value) = slot.value.try_lock() {
                            *value = Some(event);
                        }
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(seen) => pos = seen,
                }
            } else if seq < pos {
                // The slot still holds an unconsumed event from the
                // previous lap: the ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Takes the oldest event, or `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<PulseEvent> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let event = slot.value.try_lock().ok().and_then(|mut v| v.take());
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return event;
                    }
                    Err(seen) => pos = seen,
                }
            } else if seq <= pos {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Events discarded because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A subscriber's receiving end of the bus: a handle on its own ring.
pub struct Subscriber {
    ring: Arc<PulseRing>,
}

impl Subscriber {
    /// The oldest undelivered event, if any. Never blocks.
    pub fn try_recv(&self) -> Option<PulseEvent> {
        self.ring.try_pop()
    }

    /// Every currently buffered event, oldest first.
    pub fn drain(&self) -> Vec<PulseEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.ring.try_pop() {
            out.push(ev);
        }
        out
    }

    /// Events this subscriber lost to backpressure so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// The multi-subscriber fan-out bus.
///
/// `subscribe` registers a fresh ring under a write lock;
/// [`publish`](PulseBus::publish) only ever takes the read side, and
/// registration happens before the campaign starts, so publishing from
/// workers is effectively lock-free.
#[derive(Default)]
pub struct PulseBus {
    rings: RwLock<Vec<Arc<PulseRing>>>,
}

impl std::fmt::Debug for PulseBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PulseBus")
            .field("subscribers", &self.subscriber_count())
            .field("dropped", &self.total_dropped())
            .finish()
    }
}

impl PulseBus {
    /// An empty bus.
    #[must_use]
    pub fn new() -> PulseBus {
        PulseBus::default()
    }

    /// Registers a subscriber with its own ring of `capacity` events.
    pub fn subscribe(&self, capacity: usize) -> Subscriber {
        let ring = Arc::new(PulseRing::with_capacity(capacity));
        self.rings
            .write()
            .expect("pulse bus lock poisoned")
            .push(Arc::clone(&ring));
        Subscriber { ring }
    }

    /// Fans `event` out to every subscriber; returns how many rings
    /// accepted it (the rest counted drops). Never blocks on a full
    /// ring.
    pub fn publish(&self, event: &PulseEvent) -> usize {
        let rings = self.rings.read().expect("pulse bus lock poisoned");
        let mut delivered = 0;
        for ring in rings.iter() {
            if ring.try_push(event.clone()) {
                delivered += 1;
            }
        }
        delivered
    }

    /// Registered subscriber count.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.rings.read().expect("pulse bus lock poisoned").len()
    }

    /// Total events dropped across all subscribers.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.rings
            .read()
            .expect("pulse bus lock poisoned")
            .iter()
            .map(|r| r.dropped())
            .sum()
    }
}

/// Per-worker "what am I doing" table, written by workers and sampled
/// by the heartbeat thread. One uncontended mutex per worker: a worker
/// only writes its own slot, the sampler reads all of them ~20×/s.
pub struct WorkerStateTable {
    slots: Vec<Mutex<WorkerState>>,
}

impl WorkerStateTable {
    /// A table for `workers` workers, all initially idle.
    #[must_use]
    pub fn new(workers: usize) -> WorkerStateTable {
        WorkerStateTable {
            slots: (0..workers)
                .map(|_| Mutex::new(WorkerState::Idle))
                .collect(),
        }
    }

    /// Number of workers tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the table tracks no workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Records worker `index`'s current state. Out-of-range indices are
    /// ignored (can only happen on a misconfigured table).
    pub fn set(&self, index: usize, state: WorkerState) {
        if let Some(slot) = self.slots.get(index) {
            *slot.lock().expect("worker table lock poisoned") = state;
        }
    }

    /// A point-in-time copy of every worker's state.
    #[must_use]
    pub fn snapshot(&self) -> Vec<WorkerState> {
        self.slots
            .iter()
            .map(|s| s.lock().expect("worker table lock poisoned").clone())
            .collect()
    }
}

/// Scheduler-level gauges the heartbeat sampler reads: live queue
/// depth plus cumulative steal/retire counters. All relaxed atomics —
/// advisory telemetry, never a scheduling input.
#[derive(Debug, Default)]
pub struct SchedGauges {
    queued: AtomicI64,
    steals: AtomicU64,
    jobs_done: AtomicU64,
}

impl SchedGauges {
    /// Gauges at zero.
    #[must_use]
    pub fn new() -> SchedGauges {
        SchedGauges::default()
    }

    /// A job entered the injector or a local deque.
    pub fn job_queued(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left a queue to run.
    pub fn job_dequeued(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// A successful steal from a sibling deque.
    pub fn steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished.
    pub fn job_done(&self) {
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs currently queued (clamped at zero: decrements can race
    /// ahead of the matching increment's visibility).
    #[must_use]
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed).max(0) as u64
    }

    /// Cumulative successful steals.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Cumulative jobs retired.
    #[must_use]
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ev(i: u64) -> PulseEvent {
        PulseEvent::SitesIdentified {
            app: "a".into(),
            seed: 0,
            sites: i,
        }
    }

    #[test]
    fn ring_round_trips_in_order() {
        let ring = PulseRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.try_push(ev(i)));
        }
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(ev(i)));
        }
        assert_eq!(ring.try_pop(), None);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let ring = PulseRing::with_capacity(2);
        assert!(ring.try_push(ev(0)));
        assert!(ring.try_push(ev(1)));
        assert!(!ring.try_push(ev(2)));
        assert!(!ring.try_push(ev(3)));
        assert_eq!(ring.dropped(), 2);
        // Draining frees slots again.
        assert_eq!(ring.try_pop(), Some(ev(0)));
        assert!(ring.try_push(ev(4)));
        assert_eq!(ring.try_pop(), Some(ev(1)));
        assert_eq!(ring.try_pop(), Some(ev(4)));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(PulseRing::with_capacity(0).capacity(), 2);
        assert_eq!(PulseRing::with_capacity(3).capacity(), 4);
        assert_eq!(PulseRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn bus_fans_out_to_every_subscriber() {
        let bus = PulseBus::new();
        let a = bus.subscribe(8);
        let b = bus.subscribe(8);
        assert_eq!(bus.publish(&ev(7)), 2);
        assert_eq!(a.try_recv(), Some(ev(7)));
        assert_eq!(b.drain(), vec![ev(7)]);
        assert_eq!(bus.subscriber_count(), 2);
        assert_eq!(bus.total_dropped(), 0);
    }

    #[test]
    fn slow_subscriber_drops_without_blocking_publisher() {
        let bus = PulseBus::new();
        let fast = bus.subscribe(1024);
        let slow = bus.subscribe(2); // never drained
        for i in 0..100 {
            bus.publish(&ev(i));
        }
        assert_eq!(fast.drain().len(), 100);
        assert_eq!(fast.dropped(), 0);
        assert_eq!(slow.dropped(), 98);
        assert_eq!(slow.drain().len(), 2);
    }

    #[test]
    fn concurrent_publishers_lose_nothing_in_a_big_ring() {
        let bus = Arc::new(PulseBus::new());
        let sub = bus.subscribe(4096);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let bus = Arc::clone(&bus);
                thread::spawn(move || {
                    for i in 0..200 {
                        bus.publish(&ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let got = sub.drain();
        assert_eq!(got.len(), 800);
        assert_eq!(sub.dropped(), 0);
        // Per-publisher order is preserved.
        for t in 0..4u64 {
            let mine: Vec<u64> = got
                .iter()
                .filter_map(|e| match e {
                    PulseEvent::SitesIdentified { sites, .. }
                        if sites / 1000 == t && *sites >= t * 1000 =>
                    {
                        Some(*sites)
                    }
                    _ => None,
                })
                .collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "publisher {t} order");
        }
    }

    #[test]
    fn worker_table_snapshot_reflects_sets() {
        let table = WorkerStateTable::new(3);
        table.set(
            1,
            WorkerState::Unit {
                app: "x".into(),
                seed: 2,
            },
        );
        table.set(
            2,
            WorkerState::Site {
                app: "y".into(),
                seed: 0,
                site: "b0@3".into(),
            },
        );
        let snap = table.snapshot();
        assert_eq!(snap[0], WorkerState::Idle);
        assert_eq!(snap[1].token(), "unit");
        assert_eq!(snap[2].token(), "site");
        table.set(99, WorkerState::Idle); // out of range: ignored
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn sched_gauges_clamp_and_count() {
        let g = SchedGauges::new();
        g.job_queued();
        g.job_queued();
        g.job_dequeued();
        assert_eq!(g.queued(), 1);
        g.job_dequeued();
        g.job_dequeued(); // racing decrement: clamped, not wrapped
        assert_eq!(g.queued(), 0);
        g.steal();
        g.job_done();
        assert_eq!((g.steals(), g.jobs_done()), (1, 1));
    }
}
