//! Versioned flat-JSONL wire format for pulse telemetry.
//!
//! A telemetry stream is one flat JSON object per line, in the same
//! zero-dependency codec the trace format uses:
//!
//! ```text
//! {"type":"pulse","v":1,"threads":4}
//! {"type":"unit_started","app":"forged-003","seed":0}
//! {"type":"heartbeat","seq":0,"t_ns":51000000,"workers":2,"queued":3,...}
//! {"type":"worker","hb":0,"worker":0,"state":"site","app":"forged-003","seed":0,"site":"b0@7"}
//! {"type":"worker","hb":0,"worker":1,"state":"idle"}
//! {"type":"site_finished","app":"forged-003","seed":0,"site":"b0@7","outcome":"exposed",...}
//! {"type":"finished","wall_ns":812345678,"sites":40,"exposed":14}
//! ```
//!
//! Because the codec only supports flat objects, a heartbeat's
//! per-worker states serialise as separate `worker` lines referencing
//! the heartbeat's `seq`; [`TelemetryLog::from_jsonl`] reassembles
//! them. Events stream incrementally — a live writer appends
//! [`pulse_event_lines`] as the subscriber drains — and the reader
//! tolerates a truncated tail only insofar as every present line must
//! still parse.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::pulse::{HeartbeatSample, PulseEvent, Subscriber, WorkerState};
use crate::sink::{parse_flat_object, push_json_str, FlatValue};

/// Version stamped into (and required from) the telemetry header line.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// The header line opening every telemetry stream.
#[must_use]
pub fn telemetry_header(threads: u32) -> String {
    format!("{{\"type\":\"pulse\",\"v\":{TELEMETRY_SCHEMA_VERSION},\"threads\":{threads}}}\n")
}

fn push_unit_fields(out: &mut String, app: &str, seed: u32) {
    out.push_str(",\"app\":");
    push_json_str(out, app);
    let _ = write!(out, ",\"seed\":{seed}");
}

/// Serialises one event to its line (or lines, for heartbeats), each
/// newline-terminated.
#[must_use]
pub fn pulse_event_lines(event: &PulseEvent) -> String {
    let mut out = String::new();
    match event {
        PulseEvent::UnitStarted { app, seed } => {
            out.push_str("{\"type\":\"unit_started\"");
            push_unit_fields(&mut out, app, *seed);
            out.push_str("}\n");
        }
        PulseEvent::SitesIdentified { app, seed, sites } => {
            out.push_str("{\"type\":\"sites_identified\"");
            push_unit_fields(&mut out, app, *seed);
            let _ = write!(out, ",\"sites\":{sites}}}");
            out.push('\n');
        }
        PulseEvent::SiteFinished {
            app,
            seed,
            site,
            outcome,
            wall_ns,
            cache_bytes,
            snapshot_bytes,
            peak_heap_bytes,
        } => {
            out.push_str("{\"type\":\"site_finished\"");
            push_unit_fields(&mut out, app, *seed);
            out.push_str(",\"site\":");
            push_json_str(&mut out, site);
            out.push_str(",\"outcome\":");
            push_json_str(&mut out, outcome);
            let _ = write!(
                out,
                ",\"wall_ns\":{wall_ns},\"cache_bytes\":{cache_bytes},\
                 \"snapshot_bytes\":{snapshot_bytes},\"peak_heap_bytes\":{peak_heap_bytes}}}"
            );
            out.push('\n');
        }
        PulseEvent::Heartbeat(hb) => {
            let _ = write!(
                out,
                "{{\"type\":\"heartbeat\",\"seq\":{},\"t_ns\":{},\"workers\":{},\
                 \"queued\":{},\"pending\":{},\"steals\":{},\"jobs_done\":{},\
                 \"cache_bytes\":{},\"cache_entries\":{},\"snapshot_bytes\":{},\
                 \"snapshot_entries\":{},\"interp_peak_heap_bytes\":{}}}",
                hb.seq,
                hb.t_ns,
                hb.workers.len(),
                hb.queued,
                hb.pending,
                hb.steals,
                hb.jobs_done,
                hb.cache_bytes,
                hb.cache_entries,
                hb.snapshot_bytes,
                hb.snapshot_entries,
                hb.interp_peak_heap_bytes,
            );
            out.push('\n');
            for (i, state) in hb.workers.iter().enumerate() {
                let _ = write!(
                    out,
                    "{{\"type\":\"worker\",\"hb\":{},\"worker\":{i}",
                    hb.seq
                );
                out.push_str(",\"state\":");
                push_json_str(&mut out, state.token());
                match state {
                    WorkerState::Idle => {}
                    WorkerState::Unit { app, seed } => push_unit_fields(&mut out, app, *seed),
                    WorkerState::Site { app, seed, site } => {
                        push_unit_fields(&mut out, app, *seed);
                        out.push_str(",\"site\":");
                        push_json_str(&mut out, site);
                    }
                }
                out.push_str("}\n");
            }
        }
        PulseEvent::Finished {
            wall_ns,
            sites,
            exposed,
        } => {
            let _ = writeln!(
                out,
                "{{\"type\":\"finished\",\"wall_ns\":{wall_ns},\"sites\":{sites},\
                 \"exposed\":{exposed}}}"
            );
        }
    }
    out
}

/// An incremental [`Subscriber`] → wire-format forwarder: the fan-out
/// half of per-job telemetry streaming. Construct one per consumer
/// (file writer, network client, ...) around its own bus subscription,
/// then call [`drain`](TelemetryStream::drain) whenever the consumer
/// can take more bytes — the first drain is prefixed with the header
/// line, and [`finished`](TelemetryStream::finished) flips once the
/// campaign's terminal `finished` record has been emitted. Slow
/// consumers inherit the bus invariant: a full ring counts drops
/// ([`dropped`](TelemetryStream::dropped)) instead of slowing anyone.
pub struct TelemetryStream {
    subscriber: Subscriber,
    threads: u32,
    header_pending: bool,
    finished: bool,
}

impl TelemetryStream {
    /// A stream over `subscriber` for a campaign running `threads`
    /// workers (stamped into the header line).
    #[must_use]
    pub fn new(subscriber: Subscriber, threads: u32) -> TelemetryStream {
        TelemetryStream {
            subscriber,
            threads,
            header_pending: true,
            finished: false,
        }
    }

    /// Every currently buffered event as newline-terminated wire lines
    /// (header first on the initial call). Empty when nothing is
    /// pending. Never blocks.
    pub fn drain(&mut self) -> String {
        let mut out = String::new();
        if self.header_pending {
            out.push_str(&telemetry_header(self.threads));
            self.header_pending = false;
        }
        while let Some(event) = self.subscriber.try_recv() {
            if matches!(event, PulseEvent::Finished { .. }) {
                self.finished = true;
            }
            out.push_str(&pulse_event_lines(&event));
        }
        out
    }

    /// True once the campaign's terminal `finished` event has been
    /// drained — no further lines will ever appear.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Events this stream's subscriber lost to backpressure.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.subscriber.dropped()
    }
}

/// A fully parsed telemetry stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryLog {
    /// Worker-thread count the campaign ran with.
    pub threads: u32,
    /// Every event, in stream order (heartbeats reassembled).
    pub events: Vec<PulseEvent>,
}

impl TelemetryLog {
    /// Serialises header + every event back to the wire format.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = telemetry_header(self.threads);
        for event in &self.events {
            out.push_str(&pulse_event_lines(event));
        }
        out
    }

    /// Parses a telemetry stream, reassembling heartbeat worker lines.
    pub fn from_jsonl(text: &str) -> Result<TelemetryLog, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let Some((_, header)) = lines.next() else {
            return Err("telemetry: empty input (missing header line)".into());
        };
        let head = parse_flat_object(header).map_err(|e| format!("telemetry line 1: {e}"))?;
        if head.get("type").and_then(FlatValue::as_str) != Some("pulse") {
            return Err("telemetry: first line must be the header {\"type\":\"pulse\",...}".into());
        }
        match head.get("v").and_then(FlatValue::as_u64) {
            Some(TELEMETRY_SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "telemetry: unsupported schema version {v} \
                     (expected {TELEMETRY_SCHEMA_VERSION})"
                ))
            }
            None => return Err("telemetry: header missing integer field \"v\"".into()),
        }
        let threads = head.get("threads").and_then(FlatValue::as_u64).unwrap_or(0) as u32;
        let mut log = TelemetryLog {
            threads,
            events: Vec::new(),
        };
        // A heartbeat under assembly: its declared worker count and the
        // sample collecting `worker` lines.
        let mut pending: Option<(u64, HeartbeatSample)> = None;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let obj =
                parse_flat_object(line).map_err(|e| format!("telemetry line {lineno}: {e}"))?;
            let kind = obj
                .get("type")
                .and_then(FlatValue::as_str)
                .ok_or_else(|| format!("telemetry line {lineno}: missing \"type\""))?;
            if kind != "worker" {
                if let Some((_, hb)) = pending.take() {
                    log.events.push(PulseEvent::Heartbeat(hb));
                }
            }
            match kind {
                "unit_started" => log.events.push(PulseEvent::UnitStarted {
                    app: req_str(&obj, "app", lineno)?,
                    seed: req_u64(&obj, "seed", lineno)? as u32,
                }),
                "sites_identified" => log.events.push(PulseEvent::SitesIdentified {
                    app: req_str(&obj, "app", lineno)?,
                    seed: req_u64(&obj, "seed", lineno)? as u32,
                    sites: req_u64(&obj, "sites", lineno)?,
                }),
                "site_finished" => log.events.push(PulseEvent::SiteFinished {
                    app: req_str(&obj, "app", lineno)?,
                    seed: req_u64(&obj, "seed", lineno)? as u32,
                    site: req_str(&obj, "site", lineno)?,
                    outcome: req_str(&obj, "outcome", lineno)?,
                    wall_ns: req_u64(&obj, "wall_ns", lineno)?,
                    cache_bytes: req_u64(&obj, "cache_bytes", lineno)?,
                    snapshot_bytes: req_u64(&obj, "snapshot_bytes", lineno)?,
                    peak_heap_bytes: req_u64(&obj, "peak_heap_bytes", lineno)?,
                }),
                "heartbeat" => {
                    let workers = req_u64(&obj, "workers", lineno)?;
                    let sample = HeartbeatSample {
                        seq: req_u64(&obj, "seq", lineno)?,
                        t_ns: req_u64(&obj, "t_ns", lineno)?,
                        workers: vec![WorkerState::Idle; workers as usize],
                        queued: req_u64(&obj, "queued", lineno)?,
                        pending: req_u64(&obj, "pending", lineno)?,
                        steals: req_u64(&obj, "steals", lineno)?,
                        jobs_done: req_u64(&obj, "jobs_done", lineno)?,
                        cache_bytes: req_u64(&obj, "cache_bytes", lineno)?,
                        cache_entries: req_u64(&obj, "cache_entries", lineno)?,
                        snapshot_bytes: req_u64(&obj, "snapshot_bytes", lineno)?,
                        snapshot_entries: req_u64(&obj, "snapshot_entries", lineno)?,
                        interp_peak_heap_bytes: req_u64(&obj, "interp_peak_heap_bytes", lineno)?,
                    };
                    pending = Some((workers, sample));
                }
                "worker" => {
                    let Some((_, hb)) = pending.as_mut() else {
                        return Err(format!(
                            "telemetry line {lineno}: worker record outside a heartbeat"
                        ));
                    };
                    let hb_seq = req_u64(&obj, "hb", lineno)?;
                    if hb_seq != hb.seq {
                        return Err(format!(
                            "telemetry line {lineno}: worker references heartbeat {hb_seq} \
                             but heartbeat {} is open",
                            hb.seq
                        ));
                    }
                    let index = req_u64(&obj, "worker", lineno)? as usize;
                    if index >= hb.workers.len() {
                        return Err(format!(
                            "telemetry line {lineno}: worker index {index} out of range \
                             (heartbeat declares {})",
                            hb.workers.len()
                        ));
                    }
                    let state = match req_str(&obj, "state", lineno)?.as_str() {
                        "idle" => WorkerState::Idle,
                        "unit" => WorkerState::Unit {
                            app: req_str(&obj, "app", lineno)?,
                            seed: req_u64(&obj, "seed", lineno)? as u32,
                        },
                        "site" => WorkerState::Site {
                            app: req_str(&obj, "app", lineno)?,
                            seed: req_u64(&obj, "seed", lineno)? as u32,
                            site: req_str(&obj, "site", lineno)?,
                        },
                        other => {
                            return Err(format!(
                                "telemetry line {lineno}: unknown worker state {other:?}"
                            ))
                        }
                    };
                    hb.workers[index] = state;
                }
                "finished" => log.events.push(PulseEvent::Finished {
                    wall_ns: req_u64(&obj, "wall_ns", lineno)?,
                    sites: req_u64(&obj, "sites", lineno)?,
                    exposed: req_u64(&obj, "exposed", lineno)?,
                }),
                other => {
                    return Err(format!(
                        "telemetry line {lineno}: unknown record type {other:?}"
                    ))
                }
            }
        }
        if let Some((_, hb)) = pending.take() {
            log.events.push(PulseEvent::Heartbeat(hb));
        }
        Ok(log)
    }
}

fn req_str(obj: &BTreeMap<String, FlatValue>, key: &str, lineno: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(FlatValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("telemetry line {lineno}: missing string field {key:?}"))
}

fn req_u64(obj: &BTreeMap<String, FlatValue>, key: &str, lineno: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(FlatValue::as_u64)
        .ok_or_else(|| format!("telemetry line {lineno}: missing integer field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TelemetryLog {
        TelemetryLog {
            threads: 2,
            events: vec![
                PulseEvent::UnitStarted {
                    app: "forged-001".into(),
                    seed: 0,
                },
                PulseEvent::SitesIdentified {
                    app: "forged-001".into(),
                    seed: 0,
                    sites: 3,
                },
                PulseEvent::Heartbeat(HeartbeatSample {
                    seq: 0,
                    t_ns: 50_000_000,
                    workers: vec![
                        WorkerState::Site {
                            app: "forged-001".into(),
                            seed: 0,
                            site: "b0@7".into(),
                        },
                        WorkerState::Idle,
                    ],
                    queued: 2,
                    pending: 3,
                    steals: 1,
                    jobs_done: 4,
                    cache_bytes: 512,
                    cache_entries: 8,
                    snapshot_bytes: 4096,
                    snapshot_entries: 3,
                    interp_peak_heap_bytes: 1024,
                }),
                PulseEvent::SiteFinished {
                    app: "forged-001".into(),
                    seed: 0,
                    site: "b0@7".into(),
                    outcome: "exposed".into(),
                    wall_ns: 9_000_000,
                    cache_bytes: 512,
                    snapshot_bytes: 4096,
                    peak_heap_bytes: 1024,
                },
                PulseEvent::Heartbeat(HeartbeatSample {
                    seq: 1,
                    t_ns: 100_000_000,
                    workers: vec![
                        WorkerState::Unit {
                            app: "forged-002 \"q\"".into(),
                            seed: 1,
                        },
                        WorkerState::Idle,
                    ],
                    ..HeartbeatSample::default()
                }),
                PulseEvent::Finished {
                    wall_ns: 200_000_000,
                    sites: 3,
                    exposed: 1,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let log = sample_log();
        let text = log.to_jsonl();
        let back = TelemetryLog::from_jsonl(&text).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn heartbeat_at_end_of_stream_is_flushed() {
        let log = TelemetryLog {
            threads: 1,
            events: vec![PulseEvent::Heartbeat(HeartbeatSample {
                seq: 0,
                workers: vec![WorkerState::Idle],
                ..HeartbeatSample::default()
            })],
        };
        let back = TelemetryLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn stream_forwards_incrementally_and_flags_finished() {
        let bus = crate::pulse::PulseBus::new();
        let mut stream = TelemetryStream::new(bus.subscribe(64), 2);
        // Nothing published yet: first drain is just the header.
        assert_eq!(stream.drain(), telemetry_header(2));
        assert_eq!(stream.drain(), "");
        let started = PulseEvent::UnitStarted {
            app: "forged-001".into(),
            seed: 0,
        };
        bus.publish(&started);
        assert_eq!(stream.drain(), pulse_event_lines(&started));
        assert!(!stream.finished());
        let done = PulseEvent::Finished {
            wall_ns: 1,
            sites: 2,
            exposed: 1,
        };
        bus.publish(&done);
        assert_eq!(stream.drain(), pulse_event_lines(&done));
        assert!(stream.finished());
        assert_eq!(stream.dropped(), 0);
        // The concatenation of all drains is a parseable stream.
        let full = format!(
            "{}{}{}",
            telemetry_header(2),
            pulse_event_lines(&started),
            pulse_event_lines(&done)
        );
        let log = TelemetryLog::from_jsonl(&full).unwrap();
        assert_eq!(log.events, vec![started, done]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(TelemetryLog::from_jsonl("").unwrap_err().contains("empty"));
        assert!(TelemetryLog::from_jsonl("{\"type\":\"pulse\",\"v\":9}\n")
            .unwrap_err()
            .contains("unsupported schema version"));
        let orphan_worker = "{\"type\":\"pulse\",\"v\":1,\"threads\":1}\n\
             {\"type\":\"worker\",\"hb\":0,\"worker\":0,\"state\":\"idle\"}\n";
        assert!(TelemetryLog::from_jsonl(orphan_worker)
            .unwrap_err()
            .contains("outside a heartbeat"));
        let bad_index = "{\"type\":\"pulse\",\"v\":1,\"threads\":1}\n\
             {\"type\":\"heartbeat\",\"seq\":0,\"t_ns\":0,\"workers\":1,\"queued\":0,\
              \"pending\":0,\"steals\":0,\"jobs_done\":0,\"cache_bytes\":0,\"cache_entries\":0,\
              \"snapshot_bytes\":0,\"snapshot_entries\":0,\"interp_peak_heap_bytes\":0}\n\
             {\"type\":\"worker\",\"hb\":0,\"worker\":5,\"state\":\"idle\"}\n";
        assert!(TelemetryLog::from_jsonl(bad_index)
            .unwrap_err()
            .contains("out of range"));
    }
}
