//! # diode-obs — structured tracing and metrics for the DIODE pipeline
//!
//! A zero-dependency observability layer attributing campaign time to
//! the paper's pipeline phases (identify → extract → solve → enforce →
//! validate, plus snapshot warm/resume and scheduler queue wait).
//!
//! The model: the campaign driver creates one [`Recorder`] per run and
//! installs a [`job_scope`] on the worker thread for each job. Inside a
//! scope, [`span`] guards time individual phases and [`count`] /
//! [`observe_ns`] accumulate metrics — all into a thread-local buffer,
//! so recording takes no locks while a job runs. Buffers flush into the
//! recorder when the scope drops, and [`Recorder::trace`] merges them
//! deterministically: span identity is `(app, seed, site, phase, seq,
//! parent)` with a dense per-job sequence number, so the merged span set
//! is identical across thread counts (timestamps aside).
//!
//! Traces serialise to a versioned JSONL format ([`Trace::to_jsonl`],
//! round-trip tested) through [`TraceSink`] implementations, and fold
//! into per-phase/per-site breakdowns ([`PhaseBreakdown`],
//! [`ProfileReport`]) or collapsed stacks ([`collapsed_stacks`]) for
//! flamegraph tooling.
//!
//! ```
//! use std::sync::Arc;
//! use diode_obs::{job_scope, span, Phase, PhaseBreakdown, Recorder};
//!
//! let recorder = Arc::new(Recorder::new());
//! {
//!     let _scope = job_scope(Some(&recorder), "demo", 0, Some("buf@4"));
//!     let _enforce = span(Phase::Enforce);
//!     let _solve = span(Phase::Solve); // nested under enforce
//! }
//! let trace = recorder.trace();
//! assert_eq!(trace.spans.len(), 2);
//! let breakdown = PhaseBreakdown::from_trace(&trace);
//! assert!(breakdown.phase(Phase::Enforce).is_some());
//! ```
//!
//! When instrumentation is off (`Recorder::disabled()` or no recorder at
//! all), `job_scope` installs nothing and every `span`/`count` call is a
//! thread-local read and a branch — cheap enough to leave in hot paths.

#![warn(missing_docs)]

mod audit;
mod flight;
mod gauge;
mod metrics;
mod ops;
mod profile;
mod pulse;
mod sink;
mod span;
mod telemetry;
mod watchdog;

pub use audit::{
    canonical_record_set, fnv64_hex, EnforceAction, ProvenanceEvent, ProvenanceRecord, QueryOrigin,
    QueryVerdict, AUDIT_SCHEMA_VERSION,
};
pub use flight::{FlightDump, FlightRecorder, FLIGHT_SCHEMA_VERSION};
pub use gauge::ByteGauge;
pub use metrics::{Hist, HistSummary};
pub use ops::{
    parse_prometheus, Counter, Gauge, Histogram, MetricKey, MetricSample, MetricValue,
    MetricsRegistry, MetricsSnapshot, PromSample, METRICS_SCHEMA_VERSION,
};
pub use profile::{
    collapsed_stacks, PhaseBreakdown, PhaseDelta, PhaseRow, ProfileDiff, ProfileReport, SiteDelta,
    SiteRow,
};
pub use pulse::{
    HeartbeatSample, PulseBus, PulseEvent, PulseRing, SchedGauges, Subscriber, WorkerState,
    WorkerStateTable,
};
pub use sink::{JsonlFileSink, NullSink, RingSink, TraceError, TraceSink, TRACE_SCHEMA_VERSION};
pub use span::{
    audit_active, audit_event, count, job_scope, observe_ns, span, JobScope, Phase, Recorder, Span,
    SpanGuard, Trace,
};
pub use telemetry::{
    pulse_event_lines, telemetry_header, TelemetryLog, TelemetryStream, TELEMETRY_SCHEMA_VERSION,
};
pub use watchdog::{
    anomalies_from_jsonl, anomalies_to_jsonl, AnomalyKind, AnomalyReport, Watchdog, WatchdogConfig,
    ANOMALY_SCHEMA_VERSION,
};
